"""F7 — Figure 7 "Personal knowledge graph construction on device".

Paper claims (§5): multi-source person records consolidate into unified
entities; the pipeline is incremental (pause/resume costs nothing);
blocking is memory-bounded with disk spill; models compress for on-device
deployment.  Rows report linking quality, per-profile build cost,
budget-vs-residency, and the compression size/quality frontier.
"""

import numpy as np
import pytest

from benchmarks.conftest import record_result
from repro.ondevice.blocking import MemoryBoundedBlocker
from repro.ondevice.compression import sweep_compression
from repro.ondevice.fusion import evaluate_clusters
from repro.ondevice.incremental import IncrementalPipeline
from repro.ondevice.sources import (
    PersonaWorldConfig,
    generate_device_dataset,
    generate_personas,
)
from repro.ondevice.sync import kg_signature


@pytest.fixture(scope="module")
def device_records():
    config = PersonaWorldConfig(seed=21, num_personas=60, namesake_pairs=4)
    personas = generate_personas(config)
    dataset = generate_device_dataset("user", personas, config)
    return dataset.all_records()


@pytest.mark.parametrize("profile,step_budget", [("watch", 64), ("phone", 512), ("laptop", 4096)])
def test_construction_by_device_profile(benchmark, device_records, profile, step_budget):
    result_holder = {}

    def build():
        pipeline = IncrementalPipeline(device_records)
        result_holder["result"] = pipeline.run_to_completion(step_budget)
        result_holder["steps"] = pipeline.total_units

    benchmark(build)
    quality = evaluate_clusters(result_holder["result"].clusters)
    row = {
        "profile": profile,
        "step_budget": step_budget,
        "records": len(device_records),
        "precision": round(quality.precision, 3),
        "recall": round(quality.recall, 3),
        "f1": round(quality.f1, 3),
        "clusters": quality.num_clusters,
        "true_persons": quality.num_true_persons,
    }
    benchmark.extra_info.update(row)
    record_result("F7-construction", row)


def test_pause_resume_overhead(benchmark, device_records):
    """Checkpoint+restore at every step must cost little and change nothing."""
    reference = kg_signature(
        IncrementalPipeline(device_records).run_to_completion(100_000)
    )

    def interrupted_build():
        pipeline = IncrementalPipeline(device_records)
        while not pipeline.is_done:
            pipeline = IncrementalPipeline.from_checkpoint(pipeline.checkpoint())
            pipeline.step(256)
        return pipeline.result()

    result = benchmark.pedantic(interrupted_build, rounds=1, iterations=1)
    assert kg_signature(result) == reference
    record_result(
        "F7-pause-resume",
        {
            "interrupted_s": round(benchmark.stats["mean"], 4),
            "identical_output": True,
        },
    )


@pytest.mark.parametrize("budget", [25, 100, 100_000])
def test_blocking_memory_budget(benchmark, device_records, budget, tmp_path):
    def block():
        blocker = MemoryBoundedBlocker(
            memory_budget_keys=budget, spill_dir=tmp_path
        )
        blocker.candidate_pairs(device_records)
        return blocker.stats

    stats = benchmark.pedantic(block, rounds=1, iterations=1)
    row = {
        "budget_keys": budget,
        "peak_resident_keys": stats.peak_resident_keys,
        "spilled_blocks": stats.spilled_blocks,
        "pairs": stats.pairs,
    }
    benchmark.extra_info.update(row)
    record_result("F7-blocking", row)


def test_compression_frontier(benchmark, bench_trained):
    """§5 model compression: fp16/int8 quantization + distilled widths."""
    _keys, matrix = bench_trained.trained.all_entity_vectors()
    matrix = np.asarray(matrix)[:300]

    reports_holder = {}

    def sweep():
        reports_holder["reports"] = sweep_compression(
            matrix, distill_dims=(16, 8), seed=1
        )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    for report in reports_holder["reports"]:
        record_result(
            "F7-compression",
            {
                "mode": report.mode,
                "dim": report.dim,
                "kilobytes": round(report.nbytes / 1024, 1),
                "knn_overlap_at_5": round(report.overlap_at_5, 3),
            },
        )
