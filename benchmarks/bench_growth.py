"""F-growth — incremental delta publishing vs full snapshot re-saves.

The live-growth story (§5): the construction tier streams generations by
writing small delta bundles, not by re-serializing the world.  This
benchmark pins the three costs that make that viable:

* **delta_publish** vs **full_resave** — publishing a generation of ~20
  changed facts must cost far less than re-saving the full bundle (the
  sublinearity gate: per-generation cost tracks the delta, not the KG);
* **overlay_read** — adjacency reads through the delta overlay, with the
  overhead versus a plain mmap'd snapshot;
* **generation_swap** — how long ``adopt_generation`` blocks while the
  serving layer hot-swaps onto a freshly published generation.
"""

import time

import pytest

from benchmarks.conftest import SCALE, check_floor, record_result
from repro.common import ids
from repro.kg.deltas import GenerationPublisher, read_chain
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.persistence import load_snapshot, save_snapshot
from repro.kg.triple import LiteralType, entity_fact, literal_fact
from repro.serving.requests import NeighborhoodRequest
from repro.serving.service import ServingService

RELATED = ids.predicate_id("related_to")
NOTE = ids.predicate_id("note")
GENERATIONS = 6
FACTS_PER_GENERATION = 20
READ_QUERIES = 2000


@pytest.fixture(scope="module")
def growth_kg():
    """A private mutable world (the session ``bench_kg`` is read-only)."""
    return generate_kg(SyntheticKGConfig(seed=7, scale=SCALE))


def _mutate(store, round_no: int) -> list[tuple[str, str, str]]:
    entity_ids = store.entity_ids()
    keys = []
    for i in range(FACTS_PER_GENERATION // 2):
        a = entity_ids[(round_no * 31 + i * 7) % len(entity_ids)]
        b = entity_ids[(round_no * 17 + i * 13 + 1) % len(entity_ids)]
        c = entity_ids[(round_no * 11 + i * 3 + 2) % len(entity_ids)]
        facts = [
            entity_fact(a, RELATED, b, confidence=0.9, sources=("bench",),
                        updated_at=float(round_no)),
            literal_fact(c, NOTE, f"note {round_no}/{i}", LiteralType.STRING,
                         confidence=0.8, sources=("bench",), updated_at=float(round_no)),
        ]
        for fact in facts:
            store.add(fact)
            keys.append(fact.key)
    return keys


def test_delta_publish_vs_full_resave(benchmark, growth_kg, tmp_path_factory):
    store = growth_kg.store
    bundle = tmp_path_factory.mktemp("growth-bundle")
    # compact_every above GENERATIONS: measure pure delta publishes.
    publisher = GenerationPublisher(
        store, bundle, compact_every=GENERATIONS + 2, embeddings=False
    )

    publish_times = []
    for round_no in range(GENERATIONS):
        publisher.record(keys=_mutate(store, round_no))
        start = time.perf_counter()
        info = publisher.publish()
        publish_times.append(time.perf_counter() - start)
        assert info is not None

    resave_dir = tmp_path_factory.mktemp("full-resave")
    start = time.perf_counter()
    save_snapshot(store, resave_dir, embeddings=False)
    full_resave = time.perf_counter() - start
    benchmark(lambda: save_snapshot(store, resave_dir, embeddings=False))

    delta_ms = min(publish_times) * 1000
    full_ms = full_resave * 1000
    stats = store.stats()
    record_result(
        "F-growth",
        {
            "op": "delta_publish",
            "new_ms": round(delta_ms, 3),
            "generations": GENERATIONS,
            "changed_per_gen": FACTS_PER_GENERATION,
            "facts": stats.num_facts,
        },
    )
    record_result(
        "F-growth",
        {
            "op": "full_resave",
            "new_ms": round(full_ms, 3),
            "facts": stats.num_facts,
            "delta_speedup": round(full_ms / delta_ms, 1),
        },
    )
    # The sublinearity gate: a generation of ~20 changed facts must
    # publish well under a full re-serialization of the world.
    check_floor(
        delta_ms < full_ms,
        f"delta publish ({delta_ms:.1f}ms) not cheaper than full re-save "
        f"({full_ms:.1f}ms)",
    )


def test_overlay_read_overhead_and_swap_gap(benchmark, growth_kg, tmp_path_factory):
    store = growth_kg.store
    bundle = tmp_path_factory.mktemp("overlay-bundle")
    publisher = GenerationPublisher(
        store, bundle, compact_every=GENERATIONS + 2, embeddings=False
    )
    for round_no in range(3):
        publisher.record(keys=_mutate(store, 100 + round_no))
        assert publisher.publish() is not None

    plain_dir = tmp_path_factory.mktemp("plain-bundle")
    save_snapshot(store, plain_dir, embeddings=False)

    # The chain loader collapses the delta overlay into one CSR at load
    # time, so per-query overhead vs a plain snapshot should be ~zero —
    # this row pins that the merge cost doesn't leak into the hot path.
    overlay = load_snapshot(bundle).adjacency
    plain = load_snapshot(plain_dir).adjacency
    assert overlay is not None and plain is not None
    probes = [
        store.entity_ids()[(i * 37) % len(store.entity_ids())]
        for i in range(READ_QUERIES)
    ]

    def read_all(adjacency):
        total = 0
        for node in probes:
            total += len(adjacency.neighbors(node))
        return total

    def best_of(fn, repeats=3):
        best = float("inf")
        for _ in range(repeats):
            start = time.perf_counter()
            fn()
            best = min(best, time.perf_counter() - start)
        return best

    assert read_all(overlay) == read_all(plain)
    plain_best = best_of(lambda: read_all(plain))
    overlay_best = best_of(lambda: read_all(overlay))
    benchmark(lambda: read_all(overlay))

    mean_query_us = overlay_best / READ_QUERIES * 1e6
    overhead_pct = (overlay_best / plain_best - 1.0) * 100
    record_result(
        "F-growth",
        {
            "op": "overlay_read",
            "mean_query_us": round(mean_query_us, 3),
            "overhead_pct": round(overhead_pct, 1),
            "chain_length": read_chain(bundle)["next_seq"] - 1,
            "queries": READ_QUERIES,
        },
    )

    # Swap gap: how long adopt_generation blocks the serving layer.
    with ServingService(bundle, mode="inline", num_shards=2) as service:
        probe = NeighborhoodRequest(entities=(store.entity_ids()[0],), hops=1)
        assert service.serve(probe).ok
        publisher.record(keys=_mutate(store, 200))
        assert publisher.publish() is not None
        start = time.perf_counter()
        service.adopt_generation(bundle)
        swap_ms = (time.perf_counter() - start) * 1000
        response = service.serve(probe)
        assert response.ok and response.store_version == store.version
    record_result(
        "F-growth",
        {"op": "generation_swap", "new_ms": round(swap_ms, 3), "workers": 2},
    )
