"""F2-rank — Figure 2 "Fact Ranking".

Paper claim: embeddings rank multi-valued facts by importance ("LeBron:
Basketball Player > TV Actor > Screenwriter").  We measure precision@1 and
NDCG against generator ground truth, ablate the blend features, and time
one ``rank`` call.
"""

import pytest

from benchmarks.conftest import record_result
from repro.common import ids
from repro.embeddings.inference import BatchInference
from repro.services.fact_ranking import (
    FactRanker,
    FactRankerConfig,
    evaluate_fact_ranking,
)

OCCUPATION = ids.predicate_id("occupation")

ABLATIONS = {
    "full-blend": FactRankerConfig(),
    "model-only": FactRankerConfig(
        weight_agreement=0.0, weight_popularity=0.0, weight_confidence=0.0
    ),
    "agreement-only": FactRankerConfig(
        weight_model=0.0, weight_popularity=0.0, weight_confidence=0.0
    ),
    "no-signals": FactRankerConfig(
        weight_model=0.0, weight_agreement=0.0,
        weight_popularity=0.0, weight_confidence=0.0,
    ),
}


@pytest.mark.parametrize("name", list(ABLATIONS))
def test_fact_ranking_quality(benchmark, bench_kg, bench_trained, name):
    ranker = FactRanker(
        bench_kg.store, BatchInference(bench_trained.trained), ABLATIONS[name]
    )
    report = evaluate_fact_ranking(
        ranker, OCCUPATION, bench_kg.truth.occupation_order
    )
    subjects = [
        s for s, order in bench_kg.truth.occupation_order.items() if len(order) >= 2
    ][:50]

    def rank_batch():
        for subject in subjects:
            ranker.rank(subject, OCCUPATION)

    benchmark(rank_batch)
    benchmark.extra_info["precision_at_1"] = report.precision_at_1
    benchmark.extra_info["ndcg"] = report.ndcg
    record_result(
        "F2-rank",
        {
            "config": name,
            "precision_at_1": round(report.precision_at_1, 3),
            "ndcg": round(report.ndcg, 3),
            "subjects": report.num_subjects,
        },
    )
