"""F7-enrich — §5 global knowledge enrichment: coverage vs. cost vs. privacy.

Paper claims: three enrichment paths trade coverage against transfer cost
and privacy — the static asset reveals nothing, piggybacking costs almost
nothing extra, private retrieval is "expensive … for high-value use
cases".  Rows sweep the static-asset size and PIR budget and report what
each path covered, at what byte cost, revealing which entities.
"""

import pytest

from benchmarks.conftest import record_result
from repro.common.rng import substream
from repro.kg.store import TripleStore
from repro.ondevice.enrichment import (
    EnrichmentPlanner,
    EnrichmentPlannerConfig,
    GlobalKnowledgeServer,
    dp_count_query,
)


@pytest.fixture(scope="module")
def needed_entities(bench_kg):
    """Entities the user 'needs' globally: popularity-biased sample."""
    rng = substream(99, "needed")
    records = sorted(bench_kg.store.entities(), key=lambda r: (-r.popularity, r.entity))
    head = [r.entity for r in records[:150]]
    tail = [r.entity for r in records[150:]]
    # Tiny smoke-scale worlds may not reach past the head; the draws (and
    # therefore the scale=1.0 sample) are unchanged when the tail exists.
    sampled = [tail[int(i)] for i in rng.integers(0, len(tail), 20)] if tail else []
    chosen = head[:40] + sampled
    return chosen


CONFIGS = [
    ("small-asset", EnrichmentPlannerConfig(static_asset_top_k=50, pir_budget_bytes=0)),
    ("large-asset", EnrichmentPlannerConfig(static_asset_top_k=400, pir_budget_bytes=0)),
    ("asset+piggyback+pir", EnrichmentPlannerConfig(static_asset_top_k=100, pir_budget_bytes=3_000_000)),
]


@pytest.mark.parametrize("name,config", CONFIGS)
def test_enrichment_paths(benchmark, bench_kg, needed_entities, name, config):
    server = GlobalKnowledgeServer(bench_kg.store)
    interaction = set(needed_entities[10:25])

    def enrich():
        planner = EnrichmentPlanner(server, config)
        return planner.enrich(
            needed_entities, interaction_entities=interaction,
            device_store=TripleStore("device"),
        )

    report = benchmark.pedantic(enrich, rounds=1, iterations=1)
    row = {
        "config": name,
        "needed": report.needed,
        "coverage": round(report.coverage, 3),
        "covered_static": report.covered_static,
        "covered_piggyback": report.covered_piggyback,
        "covered_pir": report.covered_pir,
        "kb_static": round(report.bytes_static / 1024, 1),
        "kb_piggyback": round(report.bytes_piggyback / 1024, 1),
        "kb_pir": round(report.bytes_pir / 1024, 1),
        "entities_revealed": len(report.revealed_entities),
    }
    benchmark.extra_info.update(row)
    record_result("F7-enrich", row)


def test_dp_query_noise_scale(benchmark):
    """Utility/privacy trade-off of the DP aggregate-count endpoint."""
    def run():
        rows = []
        for epsilon in (0.1, 0.5, 1.0, 5.0):
            errors = [
                abs(dp_count_query(1000, epsilon, seed=s) - 1000) for s in range(200)
            ]
            rows.append((epsilon, sum(errors) / len(errors)))
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    for epsilon, mean_error in rows:
        record_result(
            "F7-dp", {"epsilon": epsilon, "mean_abs_error": round(mean_error, 2)}
        )
