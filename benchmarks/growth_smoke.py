#!/usr/bin/env python
"""CI smoke: live growth through the HTTP gateway with zero dropped requests.

Builds a small deployed world with held-out facts, boots the asyncio HTTP
front door over a delta-chain bundle, then streams ``GROWTH_SMOKE_GENERATIONS``
ODKE extraction rounds through a :class:`GrowthDriver` — each published
generation is hot-swapped into the live service while a client loop hammers
``POST /v1/query`` and polls ``GET /healthz`` the whole time.  The smoke
fails unless:

* **zero** requests fail across every generation swap;
* the ``store_version`` observed on ``/healthz`` only ever advances, and
  ends at the publisher's tip;
* the final generation's answers are byte-identical to a service booted
  from a from-scratch full snapshot of the same store.

Run directly (CI does): ``PYTHONPATH=src python benchmarks/growth_smoke.py``
"""

from __future__ import annotations

import asyncio
import dataclasses
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.annotation.pipeline import make_pipeline
from repro.common import ids
from repro.kg.deltas import GenerationPublisher
from repro.kg.generator import SyntheticKGConfig, generate_kg, hold_out_facts
from repro.kg.persistence import save_snapshot
from repro.kg.triple import entity_fact
from repro.odke.gaps import ExtractionTarget
from repro.odke.live import GrowthDriver
from repro.odke.pipeline import ODKEConfig, ODKEPipeline
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import decode_response, encode_request, encode_response
from repro.serving.requests import (
    AnnotateRequest,
    NeighborhoodRequest,
    RelatedRequest,
    WalkRequest,
)
from repro.serving.service import ServingService
from repro.web.corpus import WebCorpusConfig, generate_corpus
from repro.web.search import BM25SearchEngine

SCALE = float(os.environ.get("GROWTH_SMOKE_SCALE", "0.3"))
GENERATIONS = int(os.environ.get("GROWTH_SMOKE_GENERATIONS", "4"))

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")
RELATED = ids.predicate_id("related_to")


async def http_get(host: str, port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split(b" ")[1])
    return status, payload


async def http_post(host: str, port: int, path: str, body: bytes) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: smoke\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split(b" ")[1])
    return status, payload


def build_world():
    """Deployed store with gaps, its ODKE pipeline, and extraction targets."""
    kg = generate_kg(SyntheticKGConfig(seed=19, scale=SCALE))
    deployed, held_out = hold_out_facts(kg, fraction=0.3, seed=13)
    corpus = generate_corpus(
        kg,
        WebCorpusConfig(
            seed=11,
            num_profile_pages=max(8, round(80 * SCALE)),
            num_news_pages=max(8, round(120 * SCALE)),
            num_blog_pages=max(4, round(60 * SCALE)),
            num_list_pages=max(2, round(12 * SCALE)),
            num_distractor_pages=max(2, round(16 * SCALE)),
        ),
    )
    pipeline = ODKEPipeline(
        deployed,
        kg.ontology,
        BM25SearchEngine(corpus),
        make_pipeline(deployed, tier="full"),
        config=ODKEConfig(use_trained_model=False),
        now=kg.now,
    )
    targets = sorted(
        (
            ExtractionTarget(entity=fact.subject, predicate=fact.predicate, priority=1.0)
            for fact in held_out
            if fact.predicate in (DOB, POB)
        ),
        key=lambda t: (t.entity, t.predicate),
    )
    return deployed, pipeline, targets


def probe_requests(store):
    """Adjacency/annotation probes (the bundle carries no embedding layer)."""
    entities = sorted(store.entity_ids())[:6]
    names = [store.entity(e).name for e in entities[:3]]
    return [
        WalkRequest(entities=tuple(entities[:4]), seed=7),
        NeighborhoodRequest(entities=tuple(entities[:3]), hops=2),
        RelatedRequest(entities=tuple(entities[:2]), k=5),
        AnnotateRequest(texts=(f"{names[0]} met {names[1]} and {names[2]}.",)),
    ]


def _jsonable(obj):
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return dataclasses.asdict(obj)
    try:
        return list(obj)
    except TypeError:
        return repr(obj)


def canon(payload) -> bytes:
    """Canonical bytes of a payload: wire-decoded and in-process answers
    (typed dataclasses, tuples) must collapse to the same JSON."""
    return json.dumps(payload, sort_keys=True, default=_jsonable).encode("utf-8")


async def smoke(bundle: Path, fresh_bundle: Path) -> list[str]:
    failures: list[str] = []
    deployed, pipeline, targets = build_world()
    publisher = GenerationPublisher(deployed, bundle, embeddings=False)
    service = ServingService(bundle, mode="inline", num_shards=2)
    gateway = AsyncGateway(service, max_concurrency=4, max_pending=64)
    server = GatewayHTTPServer(gateway)
    host, port = await server.start()
    print(
        f"gateway up on http://{host}:{port} "
        f"(store_version={service.store_version}, scale={SCALE})"
    )

    query = encode_request(NeighborhoodRequest(entities=(sorted(deployed.entity_ids())[0],), hops=1))
    versions: list[int] = []
    requests_ok = [0]
    stop = asyncio.Event()

    async def client_loop():
        while not stop.is_set():
            status, body = await http_post(host, port, "/v1/query", query)
            response = decode_response(body)
            if status != 200 or not response.ok:
                failures.append(
                    f"query failed mid-growth: http={status} "
                    f"error={response.error}"
                )
            else:
                requests_ok[0] += 1
            hstatus, hbody = await http_get(host, port, "/healthz")
            if hstatus != 200:
                failures.append(f"/healthz went {hstatus} mid-growth")
            else:
                versions.append(int(json.loads(hbody)["store_version"]))
            await asyncio.sleep(0)

    def adopt(info):
        service.adopt_generation(bundle)
        print(f"  gen seq={info.seq} store_version={info.store_version} adopted")

    driver = GrowthDriver(pipeline, publisher, on_generation=adopt)
    loop = asyncio.get_running_loop()
    clients = [asyncio.create_task(client_loop()) for _ in range(3)]

    def one_round(round_no: int) -> None:
        chunk = targets[round_no * 10 : round_no * 10 + 10]
        step = driver.step(chunk)
        if not step.published:
            # Smoke-scale extraction can come up dry on a chunk; the
            # generation still has to advance so the swap path is
            # exercised — grow one synthetic edge and flush.
            entity_ids = sorted(deployed.entity_ids())
            fact = entity_fact(
                entity_ids[0], RELATED, entity_ids[1 + round_no],
                confidence=0.9, sources=("growth-smoke",), updated_at=float(round_no),
            )
            deployed.add(fact)
            publisher.record(keys=[fact.key])
            assert driver.flush() is not None

    try:
        for round_no in range(GENERATIONS):
            await loop.run_in_executor(None, one_round, round_no)
        # Let the clients observe the final generation before stopping.
        while versions and versions[-1] != publisher.tip_version and not failures:
            await asyncio.sleep(0.01)
    finally:
        stop.set()
        await asyncio.gather(*clients, return_exceptions=True)

    print(
        f"  {requests_ok[0]} queries + {len(versions)} health polls answered "
        f"across {GENERATIONS} generation swaps"
    )
    if requests_ok[0] == 0:
        failures.append("client loop never completed a successful query")
    if any(b > a for a, b in zip(versions[1:], versions)):
        failures.append(f"store_version regressed mid-growth: {versions}")
    if versions and versions[-1] != publisher.tip_version:
        failures.append(
            f"final observed version {versions[-1]} != tip {publisher.tip_version}"
        )
    if len(set(versions)) < 2:
        failures.append("client never observed a generation advance")
    if not failures:
        print(f"  ok  store_version advanced {versions[0]} -> {versions[-1]}, zero drops")

    # Final answers must be byte-identical to a from-scratch full rebuild.
    probes = probe_requests(deployed)
    gateway_answers = []
    for request in probes:
        status, body = await http_post(host, port, "/v1/query", encode_request(request))
        response = decode_response(body)
        if status != 200 or not response.ok:
            failures.append(f"final probe {type(request).__name__} failed: {response.error}")
            gateway_answers.append(None)
            continue
        gateway_answers.append((response.store_version, canon(response.payload)))

    await server.stop()
    gateway.close()
    service.close()

    save_snapshot(deployed, fresh_bundle, embeddings=False)
    with ServingService(fresh_bundle, mode="inline", num_shards=2) as fresh:
        for request, chained in zip(probes, gateway_answers):
            if chained is None:
                continue
            # Push the rebuild's answer through the same wire round-trip
            # the gateway applied (annotation links drop server-side
            # candidate lists at the boundary) so both sides compare in
            # identical form.
            response = decode_response(encode_response(fresh.serve(request)))
            name = type(request).__name__
            if not response.ok:
                failures.append(f"rebuild probe {name} failed: {response.error}")
            elif (response.store_version, canon(response.payload)) != chained:
                failures.append(f"{name}: delta-chain answer != full-rebuild answer")
            else:
                print(f"  ok  {name:<22} byte-identical to full rebuild")
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="growth-smoke-") as tmp:
        failures = asyncio.run(
            smoke(Path(tmp) / "bundle", Path(tmp) / "fresh-bundle")
        )
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\ngrowth smoke: {GENERATIONS} generations streamed with zero dropped "
        "requests; final answers byte-identical to a full rebuild"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
