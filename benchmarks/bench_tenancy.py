"""F-tenant — multi-tenant overlay serving costs.

The tenancy subsystem multiplexes thousands of tiny personal KGs over one
shared CSR (§5's assistant scenario at serving shape).  Three costs make
that viable, each pinned by a row here:

* **tenant_read_overhead** — a resident tenant's uncached query vs the
  same query tenantless; the overlay splice must stay within
  ``overhead_budget`` (1.3x, gated absolutely by check_regressions.py);
* **cold_attach** — time-to-first-answer for a tenant that is on disk but
  not resident (load bundle → fuse records → collapse overlay), plus the
  resident per-tenant memory footprint;
* **tenant_publish** — one durable tenant write via the per-tenant
  delta-chain publisher: the ~ms path every upsert/sync/delete rides.
"""

import time

import pytest

from benchmarks.conftest import SCALE, check_floor, record_result
from repro.kg.adjacency import build_csr
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.persistence import save_snapshot
from repro.serving.requests import NeighborhoodRequest, PersonalRecord
from repro.serving.service import ServingService
from repro.serving.tenancy import TenantRegistry

TENANTS = 16
RECORDS_PER_TENANT = 6
READ_QUERIES = 300
PUBLISH_ROUNDS = 8


@pytest.fixture(scope="module")
def tenant_world():
    kg = generate_kg(SyntheticKGConfig(seed=7, scale=SCALE))
    return kg, sorted(kg.store.entity_ids())


def _records(tenant_no: int, entities: list[str]) -> list[PersonalRecord]:
    return [
        PersonalRecord(
            record_id=f"c{tenant_no:03d}-{i}",
            source="contacts",
            fields=(
                ("first_name", f"Person{tenant_no:02d}x{i}"),
                ("last_name", "Bench"),
                ("linked_entity", entities[(tenant_no * 13 + i * 7) % len(entities)]),
                ("phone", f"+1-555-{tenant_no:02d}{i:02d}"),
            ),
            sequence=1,
        )
        for i in range(RECORDS_PER_TENANT)
    ]


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_tenant_read_overhead(benchmark, tenant_world, tmp_path_factory):
    kg, entities = tenant_world
    bundle = tmp_path_factory.mktemp("tenant-bundle")
    save_snapshot(kg.store, bundle, embeddings=False)
    with ServingService(
        bundle,
        mode="inline",
        num_shards=2,
        tenants_dir=tmp_path_factory.mktemp("tenants"),
    ) as service:
        tenant = "bench-tenant"
        service._tenants.upsert(tenant, _records(0, entities))
        # Distinct single-entity probes: every serve() is a fresh compute
        # (no cache hits on either side), over entities both the shared
        # graph and the overlay dictionary contain.
        probes = [
            NeighborhoodRequest(
                entities=(entities[(i * 37) % len(entities)],), hops=1,
            )
            for i in range(READ_QUERIES)
        ]
        # Warm the overlay once so the row measures steady-state resident
        # reads, not the first collapse (cold_attach pins that).
        assert service.serve(probes[0], tenant=tenant).ok
        assert service.serve(probes[0]).ok

        # The cache clears *inside* every timed pass: each repeat is a
        # fresh compute end to end, so the row really measures the
        # overlay splice and not QueryCache probes.
        def run_tenantless():
            service._cache.clear()
            for probe in probes:
                assert service.serve(probe).ok

        def run_tenant():
            service._cache.clear()
            for probe in probes:
                assert service.serve(probe, tenant=tenant).ok

        tenantless_best = _best_of(run_tenantless)
        tenant_best = _best_of(run_tenant)

        # Steady-state cache hits (the common production read): warm both
        # keyspaces once, then every timed probe must answer cached.
        service._cache.clear()
        for probe in probes:
            assert service.serve(probe).ok
            assert service.serve(probe, tenant=tenant).ok

        def hits(fn_probe):
            for probe in probes:
                response = fn_probe(probe)
                assert response.ok and response.cached

        cached_tenantless = _best_of(lambda: hits(service.serve))
        cached_tenant = _best_of(
            lambda: hits(lambda p: service.serve(p, tenant=tenant))
        )
        benchmark(lambda: service.serve(probes[0], tenant=tenant))

        state = service._tenants.get(tenant)
        per_tenant_kb = state.memory_bytes() / 1024.0
        overhead = tenant_best / tenantless_best
        row = {
            "op": "tenant_read_overhead",
            "mean_query_us": round(tenant_best / READ_QUERIES * 1e6, 3),
            "tenantless_query_us": round(
                tenantless_best / READ_QUERIES * 1e6, 3
            ),
            "overhead_vs_tenantless": round(overhead, 3),
            "cached_query_us": round(cached_tenant / READ_QUERIES * 1e6, 3),
            "cached_overhead": round(cached_tenant / cached_tenantless, 3),
            "per_tenant_kb": round(per_tenant_kb, 1),
            "queries": READ_QUERIES,
        }
        if SCALE >= 1.0:
            # The absolute gate (check_regressions.py budget_violations):
            # resident-tenant reads within 1.3x of tenantless.  Smoke
            # scales say nothing about the 1.0-scale promise.
            row["overhead_budget"] = 1.3
        record_result("F-tenant", row)
        check_floor(
            overhead <= 1.3,
            f"tenant read overhead {overhead:.2f}x exceeds the 1.3x budget",
        )


def test_cold_attach_and_memory(benchmark, tenant_world, tmp_path_factory):
    kg, entities = tenant_world
    tenants_dir = tmp_path_factory.mktemp("tenants-cold")
    base = build_csr(kg.store)
    registry = TenantRegistry(tenants_dir, base=base, max_resident=TENANTS)
    probe = NeighborhoodRequest(
        entities=("entity:personal/person-0000",), hops=1
    )
    for n in range(TENANTS):
        registry.upsert(f"cold-{n:02d}", _records(n, entities))
        assert registry.execute_read(f"cold-{n:02d}", probe)
    registry.close()

    # Every tenant is durable on disk and nothing is resident: attach one
    # at a time and measure time-to-first-answer (bundle load + record
    # parse + fuse + overlay collapse).
    fresh = TenantRegistry(tenants_dir, base=base, max_resident=TENANTS)
    attach_times = []
    for n in range(TENANTS):
        start = time.perf_counter()
        assert fresh.execute_read(f"cold-{n:02d}", probe)
        attach_times.append(time.perf_counter() - start)
    cold_ms = min(attach_times) * 1000
    memory_kb = [
        fresh.get(f"cold-{n:02d}").memory_bytes() / 1024.0 for n in range(TENANTS)
    ]

    def attach_once():
        fresh.evict("cold-00")
        return fresh.execute_read("cold-00", probe)

    benchmark(attach_once)
    record_result(
        "F-tenant",
        {
            "op": "cold_attach",
            "cold_start_ms": round(cold_ms, 3),
            "mean_cold_start_ms": round(
                sum(attach_times) / len(attach_times) * 1000, 3
            ),
            "per_tenant_kb": round(sum(memory_kb) / len(memory_kb), 1),
            "tenants": TENANTS,
            "records_per_tenant": RECORDS_PER_TENANT,
        },
    )
    fresh.close()


def test_tenant_publish_rides_the_delta_path(benchmark, tenant_world, tmp_path_factory):
    kg, entities = tenant_world
    registry = TenantRegistry(
        tmp_path_factory.mktemp("tenants-pub"),
        base=build_csr(kg.store),
        compact_every=PUBLISH_ROUNDS + 2,  # pure delta publishes
    )
    tenant = "writer"
    registry.upsert(tenant, _records(0, entities))
    publish_times = []
    for round_no in range(PUBLISH_ROUNDS):
        record = PersonalRecord(
            record_id=f"extra-{round_no}",
            source="contacts",
            fields=(
                ("first_name", f"Extra{round_no}"),
                ("last_name", "Bench"),
            ),
            sequence=1,
        )
        start = time.perf_counter()
        registry.upsert(tenant, [record])
        publish_times.append(time.perf_counter() - start)
    publish_ms = min(publish_times) * 1000
    benchmark(
        lambda: registry.upsert(
            tenant,
            [
                PersonalRecord(
                    record_id="bench-extra",
                    source="contacts",
                    fields=(("first_name", "Bench"), ("last_name", "Extra")),
                    sequence=1,
                )
            ],
        )
    )
    record_result(
        "F-tenant",
        {
            "op": "tenant_publish",
            "new_ms": round(publish_ms, 3),
            "rounds": PUBLISH_ROUNDS,
            "records_per_write": 1,
        },
    )
    # The whole point of per-tenant delta chains: a tenant write is a
    # small append, never a world re-serialization.
    check_floor(
        publish_ms < 100.0,
        f"tenant publish took {publish_ms:.1f}ms — not a ~ms delta append",
    )
    registry.close()
