"""F7-sync — §5 cross-device sync and computation offloading.

Paper claims: per-source sync preferences still yield consistent KGs on
every device for the synced sources; expensive construction can be
offloaded from weak devices to powerful ones "and syncing the result".
Rows report convergence rounds, bytes moved, consistency checks and the
offload traffic.
"""

import pytest

from benchmarks.conftest import record_result
from repro.ondevice.device import Device, DeviceProfile
from repro.ondevice.records import CALENDAR, CONTACTS, MESSAGES
from repro.ondevice.sources import (
    PersonaWorldConfig,
    generate_device_dataset,
    generate_personas,
)
from repro.ondevice.sync import SyncCoordinator, kg_signature, offload_construction


def _fleet(num_personas=40, seed=17):
    config = PersonaWorldConfig(seed=seed, num_personas=num_personas)
    personas = generate_personas(config)
    data = generate_device_dataset("user", personas, config)
    phone = Device(
        "phone", DeviceProfile.named("phone"),
        records={CONTACTS: data.records[CONTACTS], MESSAGES: data.records[MESSAGES]},
    )
    laptop = Device(
        "laptop", DeviceProfile.named("laptop"),
        records={CONTACTS: [], CALENDAR: data.records[CALENDAR]},
    )
    watch = Device(
        "watch", DeviceProfile.named("watch"),
        records={MESSAGES: list(data.records[MESSAGES][:40])},
    )
    return phone, laptop, watch


@pytest.mark.parametrize("opt_out", [None, MESSAGES])
def test_sync_convergence(benchmark, opt_out):
    def run_sync():
        phone, laptop, watch = _fleet()
        if opt_out:
            laptop.sync_preferences[opt_out] = False
        coordinator = SyncCoordinator([phone, laptop, watch])
        reports = coordinator.sync_until_stable()
        return phone, laptop, watch, coordinator, reports

    phone, laptop, watch, coordinator, reports = benchmark.pedantic(
        run_sync, rounds=1, iterations=1
    )
    total_bytes = sum(r.bytes_moved for r in reports)
    row = {
        "opt_out_source": opt_out or "none",
        "rounds_to_converge": len(reports),
        "bytes_moved": total_bytes,
        "contacts_consistent": coordinator.consistency_check(CONTACTS),
        "calendar_consistent": coordinator.consistency_check(CALENDAR),
        "laptop_has_messages": bool(laptop.records.get(MESSAGES)),
    }
    benchmark.extra_info.update(row)
    record_result("F7-sync", row)


def test_synced_devices_build_identical_kgs(benchmark):
    def run():
        phone, laptop, _watch = _fleet()
        phone.sync_preferences[CALENDAR] = True
        laptop.sync_preferences[MESSAGES] = True
        SyncCoordinator([phone, laptop]).sync_until_stable()
        return phone.build_kg(), laptop.build_kg()

    phone_kg, laptop_kg = benchmark.pedantic(run, rounds=1, iterations=1)
    identical = kg_signature(phone_kg) == kg_signature(laptop_kg)
    assert identical
    record_result(
        "F7-sync-consistency",
        {"devices": 2, "identical_kg": identical, "people": len(phone_kg.people)},
    )


def test_offload_weak_device(benchmark):
    def run():
        _phone, laptop, watch = _fleet()
        return offload_construction(watch, laptop)

    result, bytes_moved = benchmark.pedantic(run, rounds=1, iterations=1)
    record_result(
        "F7-offload",
        {
            "people_built": len(result.people),
            "offload_bytes": bytes_moved,
            "watch_can_build_locally": False,
        },
    )
