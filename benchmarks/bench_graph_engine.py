"""F-graph — graph engine traversal hot paths over the CSR snapshot.

The serving layer leans on "the scalable graph processing capabilities of
our graph engine to pre-compute graph traversals" (§2).  This benchmark
pins the dictionary-encoded CSR refactor: random walks, co-neighbor counts
and k-hop neighborhoods are timed against the seed's set-based
implementations (reproduced below verbatim), with byte-identical outputs
asserted — same walks per seed, same count dicts.

Acceptance: walks and co-neighbor counts >= 10x faster at scale=1.0.
"""

import time

import pytest

from benchmarks.conftest import check_floor, record_result
from repro.common.rng import substream
from repro.kg.graph_engine import GraphEngine

WALK_ENTITIES = 200
CO_ENTITIES = 100
HOOD_ENTITIES = 100


def legacy_random_walks(store, entities, walk_length, walks_per_entity, seed):
    """Seed implementation: per-step ``sorted(set)`` neighbor rebuild."""
    rng = substream(seed, "random-walks")
    walks = []
    for entity in entities:
        for _ in range(walks_per_entity):
            walk = [entity]
            current = entity
            for _ in range(walk_length - 1):
                neighbors = sorted(store.neighbors(current))
                if not neighbors:
                    break
                current = neighbors[int(rng.integers(len(neighbors)))]
                walk.append(current)
            walks.append(walk)
    return walks


def legacy_co_neighbor_counts(store, entity):
    """Seed implementation: nested set scans per neighbor."""
    counts = {}
    for neighbor in store.neighbors(entity):
        for second in store.neighbors(neighbor):
            if second != entity:
                counts[second] = counts.get(second, 0) + 1
    return counts


def legacy_neighborhood(store, entity, hops):
    """Seed implementation: frontier sets over ``store.neighbors``."""
    frontier = {entity}
    visited = {entity}
    for _ in range(hops):
        next_frontier = set()
        for node in frontier:
            for neighbor in store.neighbors(node):
                if neighbor not in visited:
                    visited.add(neighbor)
                    next_frontier.add(neighbor)
        frontier = next_frontier
        if not frontier:
            break
    visited.discard(entity)
    return visited


def min_time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def engine(bench_kg):
    engine = GraphEngine(bench_kg.store)
    snapshot = engine.snapshot()  # warm the CSR + row caches once
    snapshot.second_hop_string_rows()
    return engine


@pytest.fixture(scope="module")
def walk_seeds(bench_kg):
    return sorted(bench_kg.store.entity_ids())


def test_random_walks_speedup(benchmark, bench_kg, engine, walk_seeds):
    entities = walk_seeds[:WALK_ENTITIES]

    def new_walks():
        return engine.random_walks(entities, walk_length=8, walks_per_entity=4, seed=3)

    legacy_time, legacy_result = min_time(
        lambda: legacy_random_walks(bench_kg.store, entities, 8, 4, 3)
    )
    new_time, new_result = min_time(new_walks, repeats=5)
    assert new_result == legacy_result, "walks must stay byte-identical per seed"

    benchmark(new_walks)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F-graph",
        {
            "op": "random_walks",
            "entities": len(entities),
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": new_result == legacy_result,
        },
    )
    check_floor(speedup >= 10.0, f"speedup {speedup:.1f} < 10x")


def test_co_neighbor_counts_speedup(benchmark, bench_kg, engine, walk_seeds):
    entities = walk_seeds[:CO_ENTITIES]

    def new_counts():
        return {e: engine.co_neighbor_counts(e) for e in entities}

    legacy_time, legacy_result = min_time(
        lambda: {e: legacy_co_neighbor_counts(bench_kg.store, e) for e in entities}
    )
    new_time, new_result = min_time(new_counts, repeats=5)
    assert {e: dict(c) for e, c in new_result.items()} == legacy_result

    benchmark(new_counts)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F-graph",
        {
            "op": "co_neighbor_counts",
            "entities": len(entities),
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": True,
        },
    )
    check_floor(speedup >= 10.0, f"speedup {speedup:.1f} < 10x")


def test_k_hop_neighborhood_speedup(benchmark, bench_kg, engine, walk_seeds):
    entities = walk_seeds[:HOOD_ENTITIES]

    def new_hoods():
        return {e: engine.neighborhood(e, 2) for e in entities}

    legacy_time, legacy_result = min_time(
        lambda: {e: legacy_neighborhood(bench_kg.store, e, 2) for e in entities}
    )
    new_time, new_result = min_time(new_hoods, repeats=5)
    assert new_result == legacy_result

    benchmark(new_hoods)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F-graph",
        {
            "op": "neighborhood_2hop",
            "entities": len(entities),
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": True,
        },
    )
    # No 10x bar here: 2-hop BFS was never the dominant cost; just must win.
    check_floor(speedup > 1.0, f"speedup {speedup:.1f} <= 1x")


def test_snapshot_rebuild_cost(benchmark, bench_kg):
    """Snapshot (re)build is the amortised cost the caches pay per version."""
    from repro.kg.adjacency import build_csr

    def rebuild():
        snapshot = build_csr(bench_kg.store)
        snapshot.second_hop_string_rows()
        return snapshot

    snapshot = benchmark(rebuild)
    benchmark.extra_info["nodes"] = snapshot.num_nodes
    benchmark.extra_info["edges"] = snapshot.num_edges
    record_result(
        "F-graph",
        {
            "op": "snapshot_build",
            "nodes": snapshot.num_nodes,
            "edges": snapshot.num_edges,
        },
    )
