"""F-snapshot — zero-copy snapshot persistence vs full cold-start rebuild.

The paper's serving story (§4) assumes immutable graph snapshots that
workers load near-instantly and share read-only.  This benchmark pins the
snapshot subsystem: *cold start to first query* — restore a KG bundle,
stand up the graph engine + full-tier annotation pipeline, run the first
random-walk batch and annotate a document sample — timed for

* **rebuild**: replay the JSONL logical store, rebuild the CSR adjacency,
  re-encode every entity context vector, rebuild the alias table (what
  cold start cost before this subsystem existed), vs
* **mmap**: ``load_snapshot`` — entity descriptors replay, fact log stays
  lazy, every physical layer is memory-mapped/adopted.

Outputs must be byte-identical (same walks per seed, same annotation
spans/scores/candidates); acceptance is >= 5x at scale=1.0.
"""

import time
from pathlib import Path

import pytest

from benchmarks.conftest import check_floor, record_result
from repro.annotation.pipeline import make_pipeline
from repro.kg.graph_engine import GraphEngine
from repro.kg.persistence import load_snapshot, load_store, save_snapshot

WALK_ENTITIES = 200
WALK_LENGTH = 8
WALKS_PER_ENTITY = 4
WALK_SEED = 3
ANNOTATE_DOCS = 12


def min_time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def bundle_dir(bench_kg, tmp_path_factory) -> Path:
    """One persisted bundle of the benchmark world."""
    directory = tmp_path_factory.mktemp("kg-bundle")
    save_snapshot(bench_kg.store, directory)
    return directory


@pytest.fixture(scope="module")
def query_texts(bench_kg) -> list[str]:
    """Documents whose mentions resolve to real KG entities."""
    names = [
        bench_kg.store.entity(entity).name
        for entity in sorted(bench_kg.store.entity_ids())[: 3 * ANNOTATE_DOCS + 2]
    ]
    return [
        f"{names[3 * i]} met {names[3 * i + 1]} and discussed {names[3 * i + 2]}."
        for i in range(min(ANNOTATE_DOCS, (len(names) - 2) // 3))
    ]


def _first_queries(store, engine, pipeline, texts):
    seeds = sorted(store.entity_ids())[:WALK_ENTITIES]
    walks = engine.random_walks(
        seeds, walk_length=WALK_LENGTH, walks_per_entity=WALKS_PER_ENTITY, seed=WALK_SEED
    )
    links = [
        (
            link.mention.start,
            link.mention.end,
            link.mention.surface,
            link.entity,
            link.score,
            tuple(
                (c.entity, c.score, c.prior, c.name_similarity)
                for c in link.candidates
            ),
        )
        for text in texts
        for link in pipeline.annotate(text)
    ]
    return walks, links


def cold_start_rebuild(directory, texts):
    """The pre-snapshot cold start: replay JSONL, rebuild every layer."""
    store = load_store(directory)
    engine = GraphEngine(store)
    pipeline = make_pipeline(store, tier="full")
    return _first_queries(store, engine, pipeline, texts)


def cold_start_mmap(directory, texts):
    """Snapshot cold start: mmap + adopt, lazy fact log."""
    snap = load_snapshot(directory)
    engine = snap.engine()
    pipeline = snap.annotation_pipeline(tier="full")
    return _first_queries(snap.store, engine, pipeline, texts)


def test_cold_start_speedup(benchmark, bench_kg, bundle_dir, query_texts):
    rebuild_time, rebuild_result = min_time(
        lambda: cold_start_rebuild(bundle_dir, query_texts)
    )
    mmap_time, mmap_result = min_time(lambda: cold_start_mmap(bundle_dir, query_texts))

    # Parity is unconditional: a snapshot that changes results is corrupt.
    assert mmap_result[0] == rebuild_result[0], "walks must stay byte-identical"
    assert mmap_result[1] == rebuild_result[1], (
        "annotation spans/scores must stay byte-identical"
    )

    benchmark(lambda: cold_start_mmap(bundle_dir, query_texts))
    speedup = rebuild_time / mmap_time
    benchmark.extra_info["speedup_vs_rebuild"] = speedup
    stats = bench_kg.store.stats()
    record_result(
        "F-snapshot",
        {
            "op": "cold_start_first_query",
            "entities": stats.num_entities,
            "facts": stats.num_facts,
            "links": len(rebuild_result[1]),
            "rebuild_ms": round(rebuild_time * 1000, 3),
            "new_ms": round(mmap_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": True,
        },
    )
    check_floor(speedup >= 5.0, f"cold start speedup {speedup:.1f} < 5x")


def test_physical_layer_load_vs_build(benchmark, bench_kg, bundle_dir):
    """The physical layers alone: mmap load vs in-Python rebuild."""
    from repro.annotation.alias_table import AliasTable
    from repro.annotation.context_encoder import EntityContextIndex
    from repro.kg.adjacency import build_csr

    store = bench_kg.store

    def build_layers():
        snapshot = build_csr(store)
        index = EntityContextIndex(store)
        index.build()
        table = AliasTable(store)
        return snapshot, index, table

    def load_layers():
        snap = load_snapshot(bundle_dir)
        assert snap.adjacency is not None and snap.context is not None
        return snap

    build_time, _ = min_time(build_layers)
    load_time, _ = min_time(load_layers)

    benchmark(load_layers)
    speedup = build_time / load_time
    benchmark.extra_info["speedup_vs_build"] = speedup
    bundle_bytes = sum(p.stat().st_size for p in bundle_dir.rglob("*") if p.is_file())
    record_result(
        "F-snapshot",
        {
            "op": "physical_layers",
            "build_ms": round(build_time * 1000, 3),
            "new_ms": round(load_time * 1000, 3),
            "speedup": round(speedup, 1),
            "bundle_kb": round(bundle_bytes / 1024, 1),
        },
    )
    check_floor(speedup >= 2.0, f"layer load speedup {speedup:.1f} < 2x")
