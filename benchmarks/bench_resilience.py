"""F-resilience — what fault tolerance costs when nothing is failing.

The resilience layer (retry loops, circuit breakers, shard-result
validation, degradation bookkeeping) sits on the hot path of every
request, so its fault-free overhead must be provably negligible.  Both
arms run in one process on the same bundle and the same query stream:

* **bare** — ``ServingService(resilient=False)``: plain futures, no
  retries, no breakers consulted per shard;
* **resilient** — the default dispatch with the full supervision stack.

The floor: resilient throughput within 5% of bare.  Parity is
unconditional — both arms must answer byte-identically.

The second row pins *recovery*: SIGKILL a subprocess worker and measure
the wall-clock from the kill to the next successful (and byte-identical)
answer — respawn + bundle re-map + retry, the metric the ROADMAP's
"recovery-to-healthy bounded" item asks for.  A chaos row records
throughput under injected crashes (rate 0.2) for trend tracking.
"""

import os
import signal
import time

import pytest

from benchmarks.conftest import check_floor, record_result
from repro.kg.persistence import save_snapshot
from repro.serving.faults import SITE_WORKER_EXECUTE, FaultPlan, FaultSpec, armed
from repro.serving.requests import NeighborhoodRequest, WalkRequest
from repro.serving.resilience import RetryPolicy
from repro.serving.service import ServingService

WALK_QUERY_ENTITIES = 8
WALK_QUERIES = 60
OVERHEAD_BUDGET = 1.05  # resilient dispatch may cost at most 5% fault-free
RECOVERY_BUDGET_MS = 5000.0


@pytest.fixture(scope="module")
def bundle_dir(bench_kg, tmp_path_factory):
    directory = tmp_path_factory.mktemp("resilience-bundle")
    save_snapshot(bench_kg.store, directory)
    return directory


@pytest.fixture(scope="module")
def walk_requests(bench_kg):
    entities = sorted(bench_kg.store.entity_ids())
    return [
        WalkRequest(
            entities=tuple(
                entities[(index * WALK_QUERY_ENTITIES + offset) % len(entities)]
                for offset in range(WALK_QUERY_ENTITIES)
            ),
            seed=17,
        )
        for index in range(WALK_QUERIES)
    ]


def test_fault_free_overhead(benchmark, bundle_dir, walk_requests):
    """Queries/s with the resilience stack on vs off, no faults armed.

    The arms are interleaved *per query* in alternating order (one bare
    serve, one resilient serve of the same request, flipping who goes
    first), taking each query's minimum over the repeats and summing per
    arm.  Coarser protocols — back-to-back blocks, or even block-level
    pairs — confound the comparison with whole-process drift (frequency
    scaling, allocator growth, CPU steal) that dwarfs the few-percent
    effect being measured; the per-query min filters those bursts out of
    both arms symmetrically.
    """
    with ServingService(
        bundle_dir, mode="inline", num_shards=4, resilient=False
    ) as bare, ServingService(bundle_dir, mode="inline", num_shards=4) as resilient:
        reference = [bare.serve(request).payload for request in walk_requests]
        warm = [resilient.serve(request).payload for request in walk_requests]
        # Parity is unconditional: the supervision path must not change
        # a single byte of any fault-free answer.
        assert warm == reference

        best = {
            "bare": [float("inf")] * WALK_QUERIES,
            "resilient": [float("inf")] * WALK_QUERIES,
        }
        for repeat in range(6):
            bare._cache.clear()
            resilient._cache.clear()
            for index, request in enumerate(walk_requests):
                arms = [("bare", bare), ("resilient", resilient)]
                if (repeat + index) % 2:
                    arms.reverse()
                for label, service in arms:
                    start = time.perf_counter()
                    payload = service.serve(request).payload
                    elapsed = time.perf_counter() - start
                    assert payload == reference[index]
                    best[label][index] = min(best[label][index], elapsed)

    bare_time = sum(best["bare"])
    resilient_time = sum(best["resilient"])
    overhead = resilient_time / bare_time
    bare_qps = WALK_QUERIES / bare_time
    resilient_qps = WALK_QUERIES / resilient_time
    benchmark.extra_info["bare_qps"] = bare_qps
    benchmark.extra_info["resilient_qps"] = resilient_qps
    benchmark.extra_info["overhead"] = overhead
    benchmark(lambda: None)
    record_result(
        "F-resilience",
        {
            "op": "walk_queries",
            "mode": "bare",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(bare_qps, 1),
        },
    )
    record_result(
        "F-resilience",
        {
            "op": "walk_queries",
            "mode": "resilient",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(resilient_qps, 1),
            "overhead_vs_bare": round(overhead, 3),
        },
    )
    check_floor(
        overhead <= OVERHEAD_BUDGET,
        f"resilient dispatch {overhead:.3f}x slower than bare "
        f"(> {OVERHEAD_BUDGET:.2f}x budget)",
    )


def test_recovery_after_worker_kill(benchmark, bundle_dir, bench_kg):
    """Wall-clock from SIGKILL of a subprocess worker to a healthy answer."""
    entities = tuple(sorted(bench_kg.store.entity_ids())[:WALK_QUERY_ENTITIES])
    request = NeighborhoodRequest(entities=entities, hops=1)
    with ServingService(
        bundle_dir, mode="process", num_workers=2, num_shards=4, cache_capacity=1
    ) as service:
        before = service.serve(request)
        assert before.ok
        # Kill the whole fleet and wait until the children are gone: a
        # single casualty can race the executor's death detection and be
        # absorbed by the survivor with no respawn, which would measure
        # nothing.  The wait is part of the recovery being timed.
        processes = service._pool._executor._pool._processes
        started = time.perf_counter()
        for pid in list(processes):
            os.kill(pid, signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while any(process.is_alive() for process in processes.values()):
            assert time.monotonic() < deadline, "killed child did not exit"
            time.sleep(0.005)
        service._cache.clear()
        after = service.serve(request)
        recovery_ms = (time.perf_counter() - started) * 1000.0
        assert after.ok
        assert after.payload == before.payload
        stats = service.stats()
        assert stats["pool.executor_respawns"] >= 1.0

    benchmark.extra_info["recovery_ms"] = recovery_ms
    benchmark(lambda: None)
    record_result(
        "F-resilience",
        {
            "op": "worker_kill_recovery",
            "mode": "process",
            "workers": 2,
            "recovery_ms": round(recovery_ms, 1),
        },
    )
    check_floor(
        recovery_ms <= RECOVERY_BUDGET_MS,
        f"worker-kill recovery took {recovery_ms:.0f}ms "
        f"(> {RECOVERY_BUDGET_MS:.0f}ms budget)",
    )


def test_chaos_throughput(benchmark, bundle_dir, walk_requests):
    """Queries/s with crashes injected at rate 0.2 — completion stays 100%."""
    with ServingService(bundle_dir, mode="inline", num_shards=4) as healthy:
        reference = [healthy.serve(request).payload for request in walk_requests]

    plan = FaultPlan(
        (FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=0.2),), seed=29
    )
    # At rate 0.2 a 4-crash streak on one shard (0.16% per sub-request)
    # is expected every few hundred sub-requests, so the default 4-attempt
    # budget is too shallow for a 100%-completion bar; deepen it and keep
    # backoffs short so sleeps don't dominate the throughput number.
    chaos_policy = RetryPolicy(
        max_attempts=8, backoff_base_s=0.001, backoff_max_s=0.01
    )
    with armed(plan):
        with ServingService(
            bundle_dir,
            mode="inline",
            num_shards=4,
            cache_capacity=1,
            retry_policy=chaos_policy,
        ) as service:
            started = time.perf_counter()
            responses = [service.serve(request) for request in walk_requests]
            elapsed = time.perf_counter() - started
            stats = service.stats()

    completed = sum(1 for response in responses if response.ok)
    assert completed == len(walk_requests), (
        f"only {completed}/{len(walk_requests)} completed under chaos"
    )
    assert [response.payload for response in responses] == reference
    assert plan.injections() > 0, "chaos run injected nothing"
    chaos_qps = WALK_QUERIES / elapsed
    benchmark.extra_info["chaos_qps"] = chaos_qps
    benchmark.extra_info["injections"] = float(plan.injections())
    benchmark.extra_info["retries"] = stats.get("counter.pool.retries", 0.0)
    benchmark(lambda: None)
    record_result(
        "F-resilience",
        {
            "op": "walk_queries",
            "mode": "chaos_crash_0.2",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(chaos_qps, 1),
            "injections": float(plan.injections()),
            "completion": 1.0,
        },
    )
