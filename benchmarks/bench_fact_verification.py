"""F2-verify — Figure 2 "Fact Verification".

Paper claim: embedding scores separate true facts from corrupted ones, so
the platform can "reason about the correctness … of facts at scale".  We
calibrate on validation data, report held-out accuracy/AUC, and time batch
verification throughput.
"""

from benchmarks.conftest import record_result
from repro.services.fact_verification import FactVerifier, evaluate_verifier


def test_fact_verification_quality(benchmark, bench_trained):
    verifier = FactVerifier(bench_trained.trained)
    _train, valid, _test = bench_trained.dataset.split(seed=1)
    calibration = verifier.calibrate(valid)
    report = evaluate_verifier(verifier, bench_trained.test_triples)

    dataset = bench_trained.dataset
    candidates = [dataset.decode(*map(int, row)) for row in dataset.triples[:500]]

    def verify_batch():
        verifier.verify_batch(candidates)

    benchmark(verify_batch)
    benchmark.extra_info["test_accuracy"] = report.accuracy
    benchmark.extra_info["test_auc"] = report.auc
    record_result(
        "F2-verify",
        {
            "calibration_auc": round(calibration.auc, 3),
            "test_accuracy": round(report.accuracy, 3),
            "test_auc": round(report.auc, 3),
            "candidates": report.num_candidates,
            "verified_per_call": len(candidates),
        },
    )
