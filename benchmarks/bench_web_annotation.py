"""F4 — Figure 4 "Web-scale Semantic Annotations".

Paper claims (§3.1-3.2): the service must handle *scale* (throughput),
*rate of change* (incremental processing of changed pages only) and
*price/performance* (quality tiers; cached entity embeddings).  Rows
report docs/sec and F1 per tier, the incremental-vs-full cost ratio under
churn, and the cache effect.
"""

import pytest

from benchmarks.conftest import record_result
from repro.annotation.evaluation import evaluate_annotations
from repro.annotation.web_annotator import WebAnnotator
from repro.web.crawl import evolve


@pytest.mark.parametrize("tier", ["full", "lite"])
def test_annotation_tier_price_performance(
    benchmark, bench_kg, bench_corpus, bench_annotation_full, bench_annotation_lite, tier
):
    pipeline = bench_annotation_full if tier == "full" else bench_annotation_lite
    docs = bench_corpus.documents[:300]

    def annotate_all():
        annotator = WebAnnotator(pipeline)
        for doc in docs:
            annotator.store.put(pipeline.annotate_document(doc))
        return annotator

    annotator = benchmark.pedantic(annotate_all, rounds=1, iterations=1)
    predictions = {
        doc_id: annotated.links
        for doc_id, annotated in annotator.store.documents.items()
    }
    quality = evaluate_annotations(
        predictions, docs, bench_kg.truth.ambiguous_names
    )
    docs_per_s = len(docs) / benchmark.stats["mean"]
    row = {
        "tier": tier,
        "docs_per_s": int(docs_per_s),
        "f1": round(quality.f1, 3),
        "disambiguation": round(quality.disambiguation_accuracy, 3),
    }
    benchmark.extra_info.update(row)
    record_result("F4-tiers", row)


@pytest.mark.parametrize("change_fraction", [0.05, 0.2, 0.5])
def test_incremental_vs_full_reannotation(
    benchmark, bench_kg, bench_corpus, bench_annotation_full, change_fraction
):
    annotator = WebAnnotator(bench_annotation_full)
    annotator.annotate_corpus(bench_corpus)
    evolved, delta = evolve(
        bench_corpus, bench_kg, change_fraction=change_fraction,
        new_fraction=0.0, seed=int(change_fraction * 100),
    )

    def incremental_run():
        annotator_copy = WebAnnotator(bench_annotation_full)
        annotator_copy._state = dict(annotator._state)
        return annotator_copy.annotate_corpus(evolved)

    report = benchmark.pedantic(incremental_run, rounds=1, iterations=1)
    row = {
        "change_fraction": change_fraction,
        "docs_total": report.docs_seen,
        "docs_processed": report.docs_processed,
        "docs_skipped": report.docs_skipped_unchanged,
        "work_ratio": round(report.docs_processed / max(report.docs_seen, 1), 3),
    }
    benchmark.extra_info.update(row)
    record_result("F4-incremental", row)


def test_cached_entity_embeddings(benchmark, bench_kg):
    """§3.2: precomputing + caching entity context embeddings means query
    time only embeds the query.  Compare annotate latency with a prebuilt
    cache vs. computing entity vectors on the fly (cold cache each call)."""
    from repro.annotation.context_encoder import EntityContextIndex
    from repro.annotation.pipeline import make_pipeline

    warm_index = EntityContextIndex(bench_kg.store)
    warm_index.build()
    warm = make_pipeline(bench_kg.store, tier="full", context_index=warm_index)

    texts = [
        f"News about {record.name} and the championship game"
        for record in list(bench_kg.store.entities())[:50]
    ]

    def annotate_warm():
        for text in texts:
            warm.annotate(text)

    benchmark(annotate_warm)

    # Cold path: fresh (empty-cache) index per call batch.
    import time

    cold_index = EntityContextIndex(bench_kg.store)
    cold = make_pipeline(bench_kg.store, tier="full", context_index=cold_index)
    cold_index.clear()  # truly cold: rows and the KV mirror both forgotten
    start = time.perf_counter()
    for text in texts:
        cold.annotate(text)
    cold_elapsed = time.perf_counter() - start

    warm_elapsed = benchmark.stats["mean"]
    record_result(
        "F4-cache",
        {
            "warm_cache_s_per_50_texts": round(warm_elapsed, 4),
            "cold_cache_s_per_50_texts": round(cold_elapsed, 4),
            "speedup": round(cold_elapsed / max(warm_elapsed, 1e-9), 2),
        },
    )
