"""F3-inf — Figure 3 inference path: the embedding service's k-NN.

Paper claim (§1): the embedding service "allows similarity calculations as
well as efficient k-nearest-neighbour retrieval".  We sweep the IVF index's
``nprobe`` against the exact index, reporting the latency/recall frontier.
"""

import pytest

from benchmarks.conftest import record_result
from repro.vector.index import ExactIndex, IVFIndex, recall_at_k

CONFIGS = [
    ("exact", None),
    ("ivf-nprobe1", 1),
    ("ivf-nprobe2", 2),
    ("ivf-nprobe4", 4),
    ("ivf-nprobe8", 8),
]


@pytest.mark.parametrize("name,nprobe", CONFIGS)
def test_knn_latency_recall(benchmark, bench_trained, name, nprobe):
    keys, matrix = bench_trained.trained.all_entity_vectors()
    exact = ExactIndex()
    exact.add(keys, matrix)
    if nprobe is None:
        index = exact
        recall = 1.0
    else:
        index = IVFIndex(nlist=16, nprobe=nprobe, seed=2)
        index.add(keys, matrix)
        index.train()
        recall = recall_at_k(index, exact, matrix[:50], k=10)

    queries = matrix[:100]

    def knn_batch():
        for query in queries:
            index.search(query, k=10)

    benchmark(knn_batch)
    per_query_us = benchmark.stats["mean"] / len(queries) * 1e6
    benchmark.extra_info["recall_at_10"] = recall
    record_result(
        "F3-inf",
        {
            "index": name,
            "recall_at_10": round(float(recall), 3),
            "mean_query_us": round(per_query_us, 1),
            "num_vectors": len(keys),
        },
    )


def test_batch_inference_throughput(benchmark, bench_trained):
    """Batch scoring throughput (the 'batch multi-GPU inference' stand-in)."""
    from repro.embeddings.inference import BatchInference

    dataset = bench_trained.dataset
    inference = BatchInference(bench_trained.trained, batch_size=4096)
    candidates = [
        dataset.decode(*map(int, row)) for row in dataset.triples[:2000]
    ]

    benchmark(lambda: inference.score_triples(candidates))
    per_sec = len(candidates) / benchmark.stats["mean"]
    record_result(
        "F3-inf-batch",
        {"candidates": len(candidates), "scored_per_s": int(per_sec)},
    )
