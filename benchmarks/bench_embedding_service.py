"""F3-inf / F-embed — embedding service inference and cold-start paths.

Paper claim (§1): the embedding service "allows similarity calculations as
well as efficient k-nearest-neighbour retrieval".  We sweep the IVF index's
``nprobe`` against the exact index, reporting the latency/recall frontier
(F3-inf), and benchmark the persisted embedding bundle layer (F-embed):
replica cold start via mmap adoption vs in-process training, and ANN vs
exact k-NN throughput under a recall@10 floor.
"""

import time

import numpy as np
import pytest

from benchmarks.conftest import check_floor, record_result
from repro.embeddings.persistence import adopt_embedding_suite, load_embedding_layer
from repro.embeddings.suite import ADOPTED, EmbeddingSuiteConfig, build_embedding_suite
from repro.kg.persistence import EMBEDDINGS_DIR, save_snapshot
from repro.vector.index import ExactIndex, IVFIndex, recall_at_k

CONFIGS = [
    ("exact", None),
    ("ivf-nprobe1", 1),
    ("ivf-nprobe2", 2),
    ("ivf-nprobe4", 4),
    ("ivf-nprobe8", 8),
]


@pytest.mark.parametrize("name,nprobe", CONFIGS)
def test_knn_latency_recall(benchmark, bench_trained, name, nprobe):
    keys, matrix = bench_trained.trained.all_entity_vectors()
    exact = ExactIndex()
    exact.add(keys, matrix)
    if nprobe is None:
        index = exact
        recall = 1.0
    else:
        index = IVFIndex(nlist=16, nprobe=nprobe, seed=2)
        index.add(keys, matrix)
        index.train()
        recall = recall_at_k(index, exact, matrix[:50], k=10)

    queries = matrix[:100]

    def knn_batch():
        for query in queries:
            index.search(query, k=10)

    benchmark(knn_batch)
    per_query_us = benchmark.stats["mean"] / len(queries) * 1e6
    benchmark.extra_info["recall_at_10"] = recall
    record_result(
        "F3-inf",
        {
            "index": name,
            "recall_at_10": round(float(recall), 3),
            "mean_query_us": round(per_query_us, 1),
            "num_vectors": len(keys),
        },
    )


def test_batch_inference_throughput(benchmark, bench_trained):
    """Batch scoring throughput (the 'batch multi-GPU inference' stand-in)."""
    from repro.embeddings.inference import BatchInference

    dataset = bench_trained.dataset
    inference = BatchInference(bench_trained.trained, batch_size=4096)
    candidates = [
        dataset.decode(*map(int, row)) for row in dataset.triples[:2000]
    ]

    benchmark(lambda: inference.score_triples(candidates))
    per_sec = len(candidates) / benchmark.stats["mean"]
    record_result(
        "F3-inf-batch",
        {"candidates": len(candidates), "scored_per_s": int(per_sec)},
    )


# -- F-embed: the persisted embedding bundle layer ---------------------------


@pytest.fixture(scope="module")
def embed_bundle(bench_kg, tmp_path_factory):
    """A snapshot bundle with the embedding layer persisted at save time."""
    config = EmbeddingSuiteConfig()
    directory = tmp_path_factory.mktemp("embed-bundle")
    save_snapshot(bench_kg.store, directory, embedding_config=config)
    return directory, config


def _time_ms(fn, repeats: int = 1) -> tuple[float, object]:
    """Median wall-clock ms over ``repeats`` runs, plus the last result."""
    samples, result = [], None
    for _ in range(repeats):
        started = time.perf_counter()
        result = fn()
        samples.append((time.perf_counter() - started) * 1e3)
    return sorted(samples)[len(samples) // 2], result


def test_cold_start_adopt_vs_train(bench_kg, embed_bundle):
    """Replica cold start: mmap-adopting the persisted layer vs retraining.

    The layer turns the embedding-family cold start from a training run
    into an mmap + array-slicing exercise; the floor is a 5x speedup.
    """
    directory, config = embed_bundle
    train_ms, trained_suite = _time_ms(
        lambda: build_embedding_suite(bench_kg.store, config)
    )

    def adopt():
        layer = load_embedding_layer(directory / EMBEDDINGS_DIR)
        return adopt_embedding_suite(bench_kg.store, layer, config)

    adopt_ms, adopted_suite = _time_ms(adopt, repeats=5)
    assert adopted_suite is not None and adopted_suite.source == ADOPTED

    # Parity guard (not a floor): the adopted suite must answer exactly
    # like the freshly trained one — same bundle, same recipe, same bytes.
    entities = adopted_suite.trained.dataset.entities[:20]
    assert [
        [(h.key, h.score) for h in hits]
        for hits in adopted_suite.embedding_service.knn_many(entities, k=10)
    ] == [
        [(h.key, h.score) for h in hits]
        for hits in trained_suite.embedding_service.knn_many(entities, k=10)
    ]

    speedup = train_ms / adopt_ms if adopt_ms > 0 else float("inf")
    record_result(
        "F-embed",
        {"op": "cold_start", "mode": "train", "cold_start_ms": round(train_ms, 2)},
    )
    record_result(
        "F-embed",
        {
            "op": "cold_start",
            "mode": "adopt",
            "cold_start_ms": round(adopt_ms, 2),
            "speedup_vs_train": round(speedup, 1),
        },
    )
    check_floor(
        speedup >= 5.0,
        f"mmap adoption must be >=5x faster than training, got {speedup:.1f}x",
    )


def test_serving_knn_ann_vs_exact(bench_kg, embed_bundle):
    """ANN k-NN over the persisted layer vs exact scan, with a recall floor."""
    directory, config = embed_bundle
    layer = load_embedding_layer(directory / EMBEDDINGS_DIR)
    suite = adopt_embedding_suite(bench_kg.store, layer, config)
    assert suite is not None

    keys, matrix = suite.trained.all_entity_vectors()
    exact = ExactIndex()
    exact.add(keys, matrix)
    ann = suite.embedding_service.index
    queries = matrix[: min(100, len(keys))]

    recall = recall_at_k(ann, exact, queries, k=10)
    check_floor(
        recall >= 0.9,
        f"adopted IVF recall@10 must be >=0.9 at default nprobe, got {recall:.3f}",
    )

    for name, index in (("exact", exact), (f"ivf-nprobe{ann.nprobe}-adopted", ann)):
        index.search_many(queries, k=10)  # warm-up: page in the mmapped rows
        best = min(
            _time_ms(lambda: index.search_many(queries, k=10))[0] for _ in range(5)
        )
        per_query_us = best / len(queries) * 1e3
        record_result(
            "F-embed",
            {
                "op": "knn_serve",
                "index": name,
                "mean_query_us": round(per_query_us, 1),
                "recall_at_10": 1.0 if index is exact else round(float(recall), 3),
                "num_vectors": len(keys),
            },
        )


@pytest.mark.parametrize("quantization", [None, "int8"])
def test_ann_sublinear_at_scale(quantization):
    """IVF beats the exact scan once the vector count outgrows the KG.

    A clustered synthetic world (64 centers, 20k vectors) stands in for a
    production-sized entity space; the probe visits ~nprobe/nlist of the
    rows, so ANN throughput must scale sublinearly vs the exact scan.
    """
    rng = np.random.default_rng(5)
    num_vectors, dim = 20_000, 32
    centers = rng.standard_normal((64, dim)) * 3.0
    assignment = rng.integers(0, 64, size=num_vectors)
    matrix = centers[assignment] + rng.standard_normal((num_vectors, dim)) * 0.4
    keys = [f"v{i}" for i in range(num_vectors)]

    exact = ExactIndex()
    exact.add(keys, matrix)
    ann = IVFIndex(nlist=128, nprobe=8, seed=3, quantization=quantization)
    ann.add(keys, matrix)
    ann.train()

    queries = matrix[:100]
    recall = recall_at_k(ann, exact, queries, k=10)
    timings = {}
    for name, index in (("exact", exact), ("ann", ann)):
        index.search_many(queries, k=10)  # warm-up: page in rows/postings
        best = min(
            _time_ms(lambda: index.search_many(queries, k=10))[0] for _ in range(5)
        )
        timings[name] = best / len(queries) * 1e3

    speedup = timings["exact"] / timings["ann"]
    label = "ivf-int8-20k" if quantization else "ivf-fp32-20k"
    record_result(
        "F-embed",
        {
            "op": "knn_scale",
            "index": label,
            "mean_query_us": round(timings["ann"], 1),
            "exact_query_us": round(timings["exact"], 1),
            "speedup_vs_exact": round(speedup, 1),
            "recall_at_10": round(float(recall), 3),
            "num_vectors": num_vectors,
        },
    )
    check_floor(recall >= 0.9, f"recall@10 {recall:.3f} below 0.9 at 20k vectors")
    # int8's two-stage scan (int8 shortlist + exact re-rank) trades some
    # of the fp32 speedup for 4x smaller resident rows, so it gets a
    # gentler floor.
    floor = 2.0 if quantization is None else 1.3
    check_floor(
        speedup >= floor,
        f"ANN ({label}) must be >={floor}x faster than exact at 20k vectors, "
        f"got {speedup:.1f}x",
    )
