"""F2-link — Figure 2 "Entity Linking" / §3 contextual disambiguation.

Paper claim: "lexical similarity-based features alone cannot disambiguate"
namesakes — "Michael Jordan stats" vs "Michael Jordan students" need
contextual reranking.  We measure disambiguation accuracy on ambiguous
gold mentions for the full tier, the lite (prior+name) tier, and a
reranker-feature ablation; and time annotation of single texts.
"""

import pytest

from benchmarks.conftest import record_result
from repro.annotation.evaluation import evaluate_annotations
from repro.annotation.pipeline import AnnotationPipelineConfig, make_pipeline
from repro.annotation.reranker import RerankerConfig
from repro.common.text import normalize_name


def _ambiguous_docs(bench_kg, bench_corpus):
    keys = {normalize_name(n) for n in bench_kg.truth.ambiguous_names}
    return [
        d for d in bench_corpus
        if any(normalize_name(m.surface) in keys for m in d.gold_mentions)
    ]


CONFIGS = {
    "full-context": dict(tier="full"),
    "lite-prior-name": dict(tier="lite"),
    "prior-only": dict(
        tier="lite",
        config=AnnotationPipelineConfig(
            tier="lite",
            reranker=RerankerConfig(
                use_context=False, use_coherence=False,
                weight_name=0.0, weight_context=0.0,
            ),
        ),
    ),
}


@pytest.mark.parametrize("name", list(CONFIGS))
def test_entity_linking_disambiguation(benchmark, bench_kg, bench_corpus, name):
    pipeline = make_pipeline(bench_kg.store, **CONFIGS[name])
    docs = _ambiguous_docs(bench_kg, bench_corpus)
    assert docs

    predictions = {d.doc_id: pipeline.annotate_document(d).links for d in docs}
    report = evaluate_annotations(predictions, docs, bench_kg.truth.ambiguous_names)

    sample = [d.full_text for d in docs[:25]]

    def annotate_batch():
        for text in sample:
            pipeline.annotate(text)

    benchmark(annotate_batch)
    benchmark.extra_info["disambiguation_accuracy"] = report.disambiguation_accuracy
    benchmark.extra_info["f1"] = report.f1
    record_result(
        "F2-link",
        {
            "config": name,
            "disambiguation_accuracy": round(report.disambiguation_accuracy, 3),
            "f1": round(report.f1, 3),
            "ambiguous_mentions": report.num_ambiguous_gold,
        },
    )
