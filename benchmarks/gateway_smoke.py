#!/usr/bin/env python
"""CI smoke: boot the HTTP gateway and drive one request of every type.

Builds a small synthetic world (``GATEWAY_SMOKE_SCALE``, default 0.05),
persists it as a snapshot bundle — embedding layer included, so boot
exercises mmap adoption rather than training — boots the asyncio HTTP
front door on an ephemeral port and issues one wire request per protocol
type — walks,
neighborhoods, related entities, annotation, fact ranking, verification,
similarity and k-NN — plus a malformed-JSON and a wrong-schema-version
probe.  Every answer must be a well-formed response envelope: ``ok`` with
a payload for the real requests, a structured error (never a traceback)
for the probes.  Exits non-zero on any violation.

Run directly (CI does): ``PYTHONPATH=src python benchmarks/gateway_smoke.py``
"""

from __future__ import annotations

import asyncio
import json
import os
import re
import sys
import tempfile
from pathlib import Path

from repro.embeddings.suite import ADOPTED
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.persistence import save_snapshot
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import decode_response, encode_request
from repro.serving.requests import (
    AnnotateRequest,
    FactRankRequest,
    KnnRequest,
    NeighborhoodRequest,
    RelatedRequest,
    SimilarityRequest,
    VerifyRequest,
    WalkRequest,
)
from repro.serving.service import ServingService

SCALE = float(os.environ.get("GATEWAY_SMOKE_SCALE", "0.05"))


async def http_post(host: str, port: int, path: str, body: bytes) -> tuple[str, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: smoke\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode("latin-1"), payload


async def http_get(host: str, port: int, path: str) -> tuple[str, str, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    lines = head.split(b"\r\n")
    return lines[0].decode("latin-1"), head.decode("latin-1"), payload


# Every Prometheus series the serving stack promises after one request of
# each type has been answered (README "Observability" catalogues these).
EXPECTED_METRIC_SERIES = (
    "kg_gateway_requests_total",
    "kg_serve_requests_total",
    "kg_serve_requests_by_type_total",
    "kg_serve_responses_by_status_total",
    "kg_pool_requests_total",
    "kg_pool_requests_by_type_total",
    "kg_serve_latency_seconds_bucket",
    "kg_serve_latency_seconds_sum",
    "kg_serve_latency_seconds_count",
    "kg_serve_store_version",
    "kg_serve_cache_entries",
    "kg_serve_workers",
    "kg_breaker_state",
)

SAMPLE_LINE = re.compile(
    r'^[a-zA-Z_][a-zA-Z0-9_]*'          # metric name
    r'(\{[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"'  # first label
    r'(,[a-zA-Z_][a-zA-Z0-9_]*="[^"]*")*\})?'  # more labels
    r" [0-9.eE+-]+$"                    # value
)


def check_metrics_text(text: str, request_names: list[str]) -> list[str]:
    """Parse a /metrics body; returns failure strings (empty = healthy)."""
    failures: list[str] = []
    seen: set[str] = set()
    for line in text.splitlines():
        if not line:
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            if len(parts) != 4 or parts[3] not in (
                "counter", "gauge", "summary", "histogram"
            ):
                failures.append(f"/metrics: malformed TYPE line {line!r}")
            continue
        if line.startswith("#"):
            failures.append(f"/metrics: unexpected comment line {line!r}")
            continue
        if SAMPLE_LINE.match(line.replace("+Inf", "999")) is None:
            failures.append(f"/metrics: unparseable sample line {line!r}")
            continue
        seen.add(line.split("{")[0].split(" ")[0])
    for series in EXPECTED_METRIC_SERIES:
        if series not in seen:
            failures.append(f"/metrics: expected series {series} missing")
    for name in request_names:
        wanted = f'kg_serve_requests_by_type_total{{type="{name}"}}'
        if not any(line.startswith(wanted) for line in text.splitlines()):
            failures.append(f"/metrics: no per-type sample for {name}")
    return failures


def build_requests(service: ServingService) -> list:
    """One servable request per wire type, derived from the live bundle."""
    state = service._pool.local_state
    entities = sorted(state.snapshot.store.entity_ids())[:8]
    names = [state.snapshot.store.entity(e).name for e in entities[:3]]
    suite = state.embedding_suite()  # adopts the persisted embedding layer
    dataset = suite.trained.dataset
    triples = [dataset.decode(*map(int, row)) for row in dataset.triples[:3]]
    return [
        WalkRequest(entities=tuple(entities[:4]), seed=7),
        NeighborhoodRequest(entities=tuple(entities[:3]), hops=2),
        RelatedRequest(entities=tuple(entities[:2]), k=5),
        AnnotateRequest(texts=(f"{names[0]} met {names[1]} and {names[2]}.",)),
        FactRankRequest(entities=(triples[0][0],), predicate=dataset.relations[0]),
        VerifyRequest(candidates=tuple(triples)),
        SimilarityRequest(pairs=((dataset.entities[0], dataset.entities[1]),)),
        KnnRequest(entities=(dataset.entities[0],), k=3),
    ]


async def smoke(service: ServingService) -> list[str]:
    failures: list[str] = []
    gateway = AsyncGateway(service, max_concurrency=2, max_pending=16)
    server = GatewayHTTPServer(gateway)
    host, port = await server.start()
    print(f"gateway up on http://{host}:{port} (store_version={service.store_version})")
    try:
        # The bundle carries a persisted embedding layer; the worker must
        # mmap-adopt it, never retrain at boot.
        suite = service._pool.local_state.embedding_suite()
        if suite.source != ADOPTED:
            failures.append(
                f"embedding suite was {suite.source!r}, expected adoption "
                "from the persisted layer"
            )
        else:
            print("  ok  embedding layer adopted (no boot-time training)")
        for request in build_requests(service):
            name = type(request).__name__
            status, body = await http_post(
                host, port, "/v1/query", encode_request(request)
            )
            try:
                response = decode_response(body)
            except Exception as exc:
                failures.append(f"{name}: un-decodable envelope ({exc})")
                continue
            if status != "HTTP/1.1 200 OK" or not response.ok:
                failures.append(f"{name}: {status}, error={response.error}")
                continue
            if response.payload is None or "total_ms" not in response.timings:
                failures.append(f"{name}: envelope missing payload/timings")
                continue
            print(f"  ok  {name:<22} total_ms={response.timings['total_ms']:.2f}")

        # After all eight types answered, the /metrics scrape must be
        # parseable Prometheus text carrying every promised series.
        request_names = [type(r).__name__ for r in build_requests(service)]
        status, head, body = await http_get(host, port, "/metrics")
        if status != "HTTP/1.1 200 OK":
            failures.append(f"/metrics: {status}")
        elif "text/plain" not in head:
            failures.append(f"/metrics: wrong content type in {head!r}")
        else:
            metric_failures = check_metrics_text(body.decode("utf-8"), request_names)
            failures.extend(metric_failures)
            if not metric_failures:
                sample_count = sum(
                    1
                    for line in body.decode("utf-8").splitlines()
                    if line and not line.startswith("#")
                )
                print(f"  ok  /metrics               {sample_count} samples, "
                      f"all expected series present")

        for label, payload, want_code in (
            ("malformed JSON", b"{nope", "bad_request"),
            (
                "wrong schema version",
                json.dumps(
                    {"protocol": 99, "type": "walk", "body": {"entities": []}}
                ).encode(),
                "unsupported_version",
            ),
        ):
            status, body = await http_post(host, port, "/v1/query", payload)
            envelope = json.loads(body)
            if b"Traceback" in body:
                failures.append(f"{label}: traceback leaked across the wire")
            elif envelope.get("status") != "error" or (
                envelope.get("error", {}).get("code") != want_code
            ):
                failures.append(f"{label}: expected {want_code} envelope, got {envelope}")
            else:
                print(f"  ok  {label:<22} rejected with {want_code}")
    finally:
        await server.stop()
        gateway.close()
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="gateway-smoke-") as tmp:
        bundle = Path(tmp) / "bundle"
        kg = generate_kg(SyntheticKGConfig(seed=7, scale=SCALE))
        save_snapshot(kg.store, bundle)
        with ServingService(bundle, mode="inline", num_shards=4) as service:
            failures = asyncio.run(smoke(service))
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("\ngateway smoke: all request types answered with well-formed envelopes")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
