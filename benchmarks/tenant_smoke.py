#!/usr/bin/env python
"""CI smoke: ~50 tenant overlays behind the HTTP gateway, zero leaks.

Boots the asyncio HTTP front door over a delta-chain bundle with
multi-tenant serving enabled, onboards ``TENANT_SMOKE_TENANTS`` tenants
through ``POST /v1/query`` (upserts + device sync rounds), then runs
client loops that interleave tenant-scoped reads, shared reads and
health polls while the main thread publishes shared generations and
hot-swaps them into the live service.  Every tenant carries a **canary**:
a personal record linking its fused person to one shared entity that no
other tenant links.  The smoke fails unless:

* **zero** requests fail across onboarding, syncs, reads and both
  generation swaps;
* no tenant ever observes another tenant's canary link (and the shared
  graph never grows a personal person node) — checked continuously by
  the client loops and again by a full sweep at the end;
* ``store_version`` on ``/healthz`` only ever advances, and tenant
  answers survive the swaps (append-only shared ids keep overlays valid).

The tenant count deliberately exceeds the service's resident-tenant LRU
capacity (32), so the run also exercises evict/cold-attach under load.

Run directly (CI does): ``PYTHONPATH=src python benchmarks/tenant_smoke.py``
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
from pathlib import Path

from repro.common import ids
from repro.kg.deltas import GenerationPublisher
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.triple import entity_fact
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import decode_response, encode_request
from repro.serving.requests import (
    NeighborhoodRequest,
    PersonalRecord,
    TenantSyncRequest,
    TenantUpsertRequest,
)
from repro.serving.service import ServingService

SCALE = float(os.environ.get("TENANT_SMOKE_SCALE", "0.2"))
TENANTS = int(os.environ.get("TENANT_SMOKE_TENANTS", "50"))
SWAPS = int(os.environ.get("TENANT_SMOKE_SWAPS", "2"))

RELATED = ids.predicate_id("related_to")
PERSON = ids.entity_id("personal/person-0000")


async def http_get(host: str, port: int, path: str) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split(b" ")[1])
    return status, payload


async def http_post(host: str, port: int, path: str, body: bytes) -> tuple[int, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(
        (
            f"POST {path} HTTP/1.1\r\nHost: smoke\r\n"
            f"Content-Length: {len(body)}\r\n\r\n"
        ).encode()
        + body
    )
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    status = int(head.split(b"\r\n")[0].split(b" ")[1])
    return status, payload


def tenant_id(n: int) -> str:
    return f"assistant-{n:03d}"


def canary_record(n: int, link: str) -> PersonalRecord:
    return PersonalRecord(
        record_id=f"canary-{n:03d}",
        source="contacts",
        fields=(
            ("first_name", f"Canary{n:03d}"),
            ("last_name", "Holder"),
            ("linked_entity", link),
            ("phone", f"+1-555-0{n:03d}"),
        ),
        sequence=1,
    )


async def query(host, port, request, tenant=None):
    body = encode_request(request, tenant=tenant)
    status, payload = await http_post(host, port, "/v1/query", body)
    return status, decode_response(payload)


async def smoke(bundle: Path, tenants_dir: Path) -> list[str]:
    failures: list[str] = []
    kg = generate_kg(SyntheticKGConfig(seed=29, scale=SCALE))
    store = kg.store
    publisher = GenerationPublisher(store, bundle, embeddings=False)
    service = ServingService(
        bundle, mode="inline", num_shards=2, tenants_dir=tenants_dir
    )
    gateway = AsyncGateway(service, max_concurrency=4, max_pending=64)
    server = GatewayHTTPServer(gateway)
    host, port = await server.start()

    entities = sorted(store.entity_ids())
    if len(entities) < TENANTS:
        raise SystemExit(
            f"world too small: {len(entities)} entities < {TENANTS} tenants"
        )
    # One distinct shared link target per tenant: seeing someone else's
    # target inside your person's neighborhood is an isolation leak.
    links = {n: entities[n] for n in range(TENANTS)}
    print(
        f"gateway up on http://{host}:{port} "
        f"(store_version={service.store_version}, tenants={TENANTS}, "
        f"scale={SCALE})"
    )

    # -- onboard every tenant through the wire ---------------------------
    for n in range(TENANTS):
        request = TenantUpsertRequest(records=(canary_record(n, links[n]),))
        status, response = await query(host, port, request, tenant=tenant_id(n))
        if status != 200 or not response.ok:
            failures.append(f"onboard {tenant_id(n)} failed: {response.error}")
        elif response.payload.get("applied") != 1:
            failures.append(f"onboard {tenant_id(n)} applied nothing")

    # -- one device sync round for every 5th tenant ----------------------
    syncs_ok = 0
    for n in range(0, TENANTS, 5):
        device_record = PersonalRecord(
            record_id=f"device-{n:03d}",
            source="calendar",
            fields=(("first_name", f"Meeting{n:03d}"), ("last_name", "Sync")),
            sequence=2,
        )
        request = TenantSyncRequest(records=(device_record,), epsilon=1.0)
        status, response = await query(host, port, request, tenant=tenant_id(n))
        if status != 200 or not response.ok:
            failures.append(f"sync {tenant_id(n)} failed: {response.error}")
            continue
        payload = response.payload
        if "dp_record_count" not in payload:
            failures.append(f"sync {tenant_id(n)} payload lacks dp_record_count")
        else:
            syncs_ok += 1
    print(f"  {TENANTS} tenants onboarded, {syncs_ok} device syncs answered")

    hood = NeighborhoodRequest(entities=(PERSON,), hops=1)
    foreign = {n: {links[m] for m in links if m != n} for n in range(TENANTS)}
    reads_ok = [0]
    versions: list[int] = []
    stop = asyncio.Event()

    async def check_tenant(n: int) -> None:
        status, response = await query(host, port, hood, tenant=tenant_id(n))
        if status != 200 or not response.ok:
            failures.append(f"read {tenant_id(n)} failed: {response.error}")
            return
        nodes = set(response.payload[0])
        if links[n] not in nodes:
            failures.append(f"{tenant_id(n)} lost its own canary link")
        leaked = nodes & foreign[n]
        if leaked:
            failures.append(f"{tenant_id(n)} sees foreign canaries: {sorted(leaked)}")
        reads_ok[0] += 1

    async def client_loop(offset: int) -> None:
        n = offset
        while not stop.is_set():
            await check_tenant(n % TENANTS)
            # The shared graph must never see a tenant's fused person.
            status, response = await query(host, port, hood)
            if status != 200 or not response.ok:
                failures.append(f"shared read failed: {response.error}")
            elif set(response.payload[0]):
                failures.append("shared graph grew a personal person node")
            hstatus, hbody = await http_get(host, port, "/healthz")
            if hstatus != 200:
                failures.append(f"/healthz went {hstatus} mid-swap")
            else:
                versions.append(int(json.loads(hbody)["store_version"]))
            n += 7  # co-prime stride: loops sweep different tenants
            await asyncio.sleep(0)

    def swap_generation(round_no: int) -> int:
        fact = entity_fact(
            entities[0], RELATED, entities[TENANTS + round_no],
            confidence=0.9, sources=("tenant-smoke",), updated_at=float(round_no),
        )
        store.add(fact)
        publisher.record(keys=[fact.key])
        info = publisher.publish()
        publisher.join_compaction()
        service.adopt_generation(bundle)
        print(f"  gen seq={info.seq} store_version={info.store_version} adopted")
        return info.store_version

    loop = asyncio.get_running_loop()
    clients = [asyncio.create_task(client_loop(i * 17)) for i in range(3)]
    try:
        for round_no in range(SWAPS):
            await loop.run_in_executor(None, swap_generation, round_no)
            await asyncio.sleep(0.05)  # let clients hammer the new generation
    finally:
        stop.set()
        await asyncio.gather(*clients, return_exceptions=True)

    print(
        f"  {reads_ok[0]} tenant reads + {len(versions)} health polls "
        f"answered across {SWAPS} generation swaps"
    )
    if reads_ok[0] == 0:
        failures.append("client loops never completed a tenant read")
    if any(b < a for a, b in zip(versions, versions[1:])):
        failures.append(f"store_version regressed mid-swap: {versions}")
    if len(set(versions)) < 2:
        failures.append("clients never observed a generation advance")

    # -- final canary sweep: all tenants, post-swap ----------------------
    for n in range(TENANTS):
        await check_tenant(n)
    if not failures:
        print(f"  ok  {TENANTS}-tenant canary sweep clean after {SWAPS} swaps")

    await server.stop()
    gateway.close()
    service.close()
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="tenant-smoke-") as tmp:
        failures = asyncio.run(
            smoke(Path(tmp) / "bundle", Path(tmp) / "tenants")
        )
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures[:20]:
            print(f"  - {failure}", file=sys.stderr)
        if len(failures) > 20:
            print(f"  ... and {len(failures) - 20} more", file=sys.stderr)
        return 1
    print(
        f"\ntenant smoke: {TENANTS} tenants served across {SWAPS} live "
        "generation swaps with zero failed requests and zero leaks"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
