"""F2-rel — Figure 2 "Related Entities".

Paper claim (§2): for the related-entities task, *specialized* embeddings
from graph-engine pre-computed traversals beat reusing the generic KG
embeddings.  We compare precision/recall@10 of the two backends against
generator ground truth and time a ``related`` call.
"""

import pytest

from benchmarks.conftest import record_result
from repro.services.related_entities import (
    EmbeddingRelatedEntities,
    TraversalRelatedEntities,
    evaluate_related,
)
from repro.vector.service import EmbeddingService


@pytest.fixture(scope="module")
def backends(bench_kg, bench_trained):
    generic = EmbeddingRelatedEntities(
        EmbeddingService(bench_trained.trained), bench_kg.store
    )
    specialized = TraversalRelatedEntities(
        bench_kg.store, dim=32, walk_length=8, walks_per_entity=8, seed=3
    )
    return {"generic-kge": generic, "traversal-specialized": specialized}


@pytest.mark.parametrize("name", ["generic-kge", "traversal-specialized"])
def test_related_entities_quality(benchmark, bench_kg, backends, name):
    backend = backends[name]
    at_5 = evaluate_related(backend, bench_kg.truth.related, k=5, max_seeds=100)
    at_10 = evaluate_related(backend, bench_kg.truth.related, k=10, max_seeds=100)
    seeds = sorted(bench_kg.truth.related)[:50]

    def related_batch():
        for seed in seeds:
            backend.related(seed, k=10)

    benchmark(related_batch)
    benchmark.extra_info["recall_at_10"] = at_10.recall_at_k
    record_result(
        "F2-rel",
        {
            "backend": name,
            "precision_at_5": round(at_5.precision_at_k, 3),
            "recall_at_5": round(at_5.recall_at_k, 3),
            "precision_at_10": round(at_10.precision_at_k, 3),
            "recall_at_10": round(at_10.recall_at_k, 3),
            "seeds": at_10.num_seeds,
        },
    )
