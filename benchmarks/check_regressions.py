#!/usr/bin/env python
"""Guard the benchmark trajectory: fail on >2x slowdown vs the baseline.

``results.jsonl`` is an append-only log of benchmark rows; the *last*
committed row per stage is the performance baseline this repo promises.
This script compares a fresh run's rows against that baseline and exits
non-zero when any previously benchmarked stage slowed down by more than
``--threshold`` (default 2x).

Usage:

* ``python benchmarks/check_regressions.py``
  Self-check the committed baseline (parses every row, verifies each
  timed stage has a usable metric, compares the baseline to itself —
  always exits 0 on a healthy file).  This is the CI invocation: it
  guards the file's integrity without needing a full-scale bench run.

* ``python benchmarks/check_regressions.py --fresh /tmp/fresh.jsonl``
  Compare a fresh run (``BENCH_RESULTS=/tmp/fresh.jsonl python -m pytest
  benchmarks``) against the committed baseline.  Stages missing from the
  baseline are new and pass by definition; a baseline stage *missing from
  the fresh run* fails the check — a silently deleted benchmark is a
  coverage regression, not a pass (``--allow-missing`` overrides when a
  stage was intentionally retired).

When a speedup legitimately shifts a baseline (a faster implementation
lands), re-run the benchmarks at scale=1.0 so fresh rows are appended to
``results.jsonl`` and commit the file — the newest row per stage becomes
the new baseline.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

DEFAULT_BASELINE = Path(__file__).parent / "results.jsonl"

# Fields that discriminate stages within one experiment, in precedence
# order (a row may carry several; all present ones join the key).  The
# serving rows (F-serving) discriminate on fleet shape: workers / mode /
# batched — a 4-worker throughput row must never be compared against the
# single-process seed row.
STAGE_FIELDS = (
    "op",
    "index",
    "tier",
    "config",
    "backend",
    "model",
    "change_fraction",
    "workers",
    "mode",
    "batched",
)

# Timing metrics, with their direction.  The first one present in a row
# is the stage's canonical metric; rows with none are quality-only and
# not regression-checked here.  Higher-is-better throughput rows (docs/s,
# queries/s) gate exactly like latency rows: a >threshold *drop* fails.
LOWER_IS_BETTER = (
    "new_ms",
    "mean_query_us",
    "cold_start_ms",
    "cold_cache_s_per_50_texts",
    "recovery_ms",
)
HIGHER_IS_BETTER = ("docs_per_s", "scored_per_s", "triples_per_s", "qps", "queries_per_s")


def budget_violations(rows: list[dict]) -> list[str]:
    """Rows carrying an ``overhead_budget`` promise an *absolute* bound.

    Unlike the relative baseline comparison, these bounds re-apply to
    every run of this script — committed baseline and fresh runs alike.
    A row whose ``overhead_vs_*`` field exceeds its own budget fails the
    check (the F-obs armed row gates tracing overhead ≤5% this way).
    """
    violations: list[str] = []
    for row in rows:
        budget = row.get("overhead_budget")
        if budget is None:
            continue
        overheads = {
            key: float(value)
            for key, value in row.items()
            if key.startswith("overhead_vs_")
        }
        if not overheads:
            violations.append(
                f"{' / '.join(stage_key(row))}: overhead_budget={budget} "
                "but no overhead_vs_* field to check"
            )
            continue
        for key, value in sorted(overheads.items()):
            if value > float(budget):
                violations.append(
                    f"{' / '.join(stage_key(row))}: {key}={value:g} "
                    f"exceeds budget {float(budget):g}"
                )
    return violations


def load_rows(path: Path) -> list[dict]:
    rows = []
    for line_no, line in enumerate(path.read_text(encoding="utf-8").splitlines(), 1):
        line = line.strip()
        if not line:
            continue
        try:
            rows.append(json.loads(line))
        except json.JSONDecodeError as exc:
            raise SystemExit(f"{path}:{line_no}: corrupt results row: {exc}")
    return rows


def stage_key(row: dict) -> tuple:
    parts = [row.get("experiment", "?")]
    for field in STAGE_FIELDS:
        if field in row:
            parts.append(f"{field}={row[field]}")
    return tuple(parts)


def metric_of(row: dict) -> tuple[str, float, bool] | None:
    """(name, value, lower_is_better) of a row's timing metric, if any."""
    for name in LOWER_IS_BETTER:
        if name in row:
            return name, float(row[name]), True
    for name in HIGHER_IS_BETTER:
        if name in row:
            return name, float(row[name]), False
    return None


def latest_metrics(rows: list[dict]) -> dict[tuple, tuple[str, float, bool]]:
    """Last-seen timed metric per stage (later rows override earlier)."""
    latest: dict[tuple, tuple[str, float, bool]] = {}
    for row in rows:
        metric = metric_of(row)
        if metric is not None:
            latest[stage_key(row)] = metric
    return latest


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline",
        type=Path,
        default=DEFAULT_BASELINE,
        help="committed results log (default: benchmarks/results.jsonl)",
    )
    parser.add_argument(
        "--fresh",
        type=Path,
        default=None,
        help="fresh run's results log; omitted = self-check the baseline",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="slowdown factor that fails the check (default: 2.0)",
    )
    parser.add_argument(
        "--allow-missing",
        action="store_true",
        help="tolerate baseline stages absent from the fresh run "
        "(use when a benchmark was intentionally retired)",
    )
    args = parser.parse_args(argv)

    if not args.baseline.exists():
        print(f"baseline not found: {args.baseline}", file=sys.stderr)
        return 1
    baseline_rows = load_rows(args.baseline)
    budget_failures = budget_violations(baseline_rows)
    if args.fresh is not None:
        budget_failures += budget_violations(load_rows(args.fresh))
    baseline = latest_metrics(baseline_rows)
    if not baseline:
        print(f"no timed stages found in {args.baseline}", file=sys.stderr)
        return 1
    fresh = baseline if args.fresh is None else latest_metrics(load_rows(args.fresh))

    regressions: list[str] = []
    compared = 0
    for key, (name, fresh_value, lower_better) in sorted(fresh.items()):
        base = baseline.get(key)
        if base is None:
            continue  # new stage: no baseline yet
        base_name, base_value, _ = base
        if base_name != name or base_value <= 0 or fresh_value <= 0:
            continue
        compared += 1
        slowdown = (
            fresh_value / base_value if lower_better else base_value / fresh_value
        )
        marker = "REGRESSION" if slowdown > args.threshold else "ok"
        print(
            f"{marker:>10}  {' / '.join(key):<60} {name}: "
            f"{base_value:g} -> {fresh_value:g}  ({slowdown:.2f}x)"
        )
        if slowdown > args.threshold:
            regressions.append(" / ".join(key))

    missing = (
        sorted(key for key in baseline if key not in fresh)
        if args.fresh is not None
        else []
    )
    for key in missing:
        marker = "missing" if args.allow_missing else "MISSING"
        print(f"{marker:>10}  {' / '.join(key):<60} (no fresh row)")

    print(
        f"\n{compared} stage(s) compared against {args.baseline}"
        + ("" if args.fresh is None else f" (fresh: {args.fresh})")
    )
    if missing and not args.allow_missing:
        print(
            f"{len(missing)} baseline stage(s) disappeared from the fresh run "
            "(pass --allow-missing if intentionally retired):",
            file=sys.stderr,
        )
        for key in missing:
            print(f"  - {' / '.join(key)}", file=sys.stderr)
        return 1
    if regressions:
        print(
            f"{len(regressions)} stage(s) slower than {args.threshold}x baseline:",
            file=sys.stderr,
        )
        for key in regressions:
            print(f"  - {key}", file=sys.stderr)
        return 1
    if budget_failures:
        print(
            f"{len(budget_failures)} row(s) exceed their overhead budget:",
            file=sys.stderr,
        )
        for failure in budget_failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print("no regressions beyond threshold; all overhead budgets honoured")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
