"""F4-hotpath — the vectorized web-annotation serving path, vs the seed.

§3.1–3.2 make annotation throughput the headline serving requirement.
This benchmark pins the trie/columnar/one-matmul refactor the way
``bench_graph_engine.py`` pins the CSR one: the seed implementations are
reproduced verbatim below and timed against the shipped path on the
benchmark corpus, with outputs compared pair by pair.

Parity: mention lists, candidate orders, priors and name similarities are
byte-identical.  Context/coherence scores agree to float64 rounding (the
one matmul reduces in a different order than per-pair BLAS ``ddot``); the
``identical`` field asserts the emitted structure — spans, entities,
candidate order — plus a ≤1e-9 score agreement.

Rows and acceptance at scale=1.0:

* ``mention_detection``      — trie walk vs per-window scan, >= 5x;
* ``candidate_scoring``      — the seed's query-scoring stage (two SHA
  digests per window token + one ``np.dot`` per pair) vs batch encode +
  one-matmul rerank, >= 5x;
* ``rerank_coherence``       — coherence as one matmul vs per-pair
  ``service.similarity``, >= 5x;
* ``rerank_context``         — the matmul *alone* vs per-pair dots.  Both
  sides share the Python cost of materialising scored ``Candidate`` lists
  (arithmetic, writeback, sort), which bounds this isolated op around
  2x — reported honestly, asserted >= 1.5x;
* ``context_encode``         — memoised batch hashing vs per-token SHA.
"""

import copy
import time

import numpy as np
import pytest

from benchmarks.conftest import check_floor, record_result
from repro.annotation.mention import Mention
from repro.annotation.mention_detection import MentionDetectorConfig
from repro.annotation.pipeline import make_pipeline
from repro.common.rng import stable_hash
from repro.common.text import tokenize_with_offsets
from repro.vector.service import EmbeddingService
from repro.vector.similarity import normalize_rows

DETECT_DOCS = 300
RERANK_DOCS = 300
SCORE_TOL = 1e-9


# -- seed implementations, reproduced verbatim ------------------------------


def legacy_detect(alias_table, config, text):
    """Seed detector: per-window slicing + normalise-per-``contains``."""
    tokens = tokenize_with_offsets(text)
    max_ngram = min(config.max_ngram, alias_table.max_key_tokens())
    mentions = []
    i = 0
    while i < len(tokens):
        matched = False
        for n in range(min(max_ngram, len(tokens) - i), 0, -1):
            window = tokens[i : i + n]
            surface = text[window[0][1] : window[-1][2]]
            if len(surface) < config.min_surface_chars:
                continue
            if config.require_capitalized and not any(
                tok[0][:1].isupper() for tok in window
            ):
                continue
            if alias_table.contains(surface):
                mentions.append(
                    Mention(start=window[0][1], end=window[-1][2], surface=surface)
                )
                i += n
                matched = True
                break
        if not matched:
            i += 1
    return mentions


def legacy_context_similarity(index, query_vector, entity):
    """Seed ``EntityContextIndex.similarity``: KV get + one ``np.dot``."""
    cached = index.cache.get(entity)
    vector = cached if cached is not None else index.vector(entity)
    return float(np.dot(query_vector, vector))


def legacy_coherence(service, entity, document_entities):
    if not service.has_entity(entity):
        return 0.0
    similarities = [
        service.similarity(entity, other)
        for other in document_entities
        if other != entity and service.has_entity(other)
    ]
    return float(np.mean(similarities)) if similarities else 0.0


def legacy_rerank(reranker, candidates, query_vector=None, document_entities=None):
    """Seed reranker: one ``np.dot`` + dict lookup per candidate."""
    cfg = reranker.config
    for candidate in candidates:
        if cfg.use_context and query_vector is not None:
            candidate.context_similarity = legacy_context_similarity(
                reranker.context_index, query_vector, candidate.entity
            )
        if (
            cfg.use_coherence
            and reranker.embedding_service is not None
            and document_entities
        ):
            candidate.coherence = legacy_coherence(
                reranker.embedding_service, candidate.entity, document_entities
            )
        candidate.score = (
            cfg.weight_prior * candidate.prior
            + cfg.weight_name * candidate.name_similarity
            + cfg.weight_context * candidate.context_similarity
            + cfg.weight_coherence * candidate.coherence
        )
    candidates.sort(key=lambda c: (-c.score, c.entity))
    return candidates


def legacy_encode_tokens(dim, tokens):
    """Seed encoder: two SHA digests per token occurrence, no memo."""
    vector = np.zeros(dim, dtype=np.float64)
    for token in tokens:
        slot = stable_hash(token, dim)
        sign = 1.0 if stable_hash("sign:" + token, 2) else -1.0
        vector[slot] += sign
    return normalize_rows(vector[None, :])[0]


def min_time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def candidates_match(new_lists, old_lists):
    """Entity order identical; discrete features bitwise; scores to tol."""
    if len(new_lists) != len(old_lists):
        return False
    for new, old in zip(new_lists, old_lists):
        if [c.entity for c in new] != [c.entity for c in old]:
            return False
        for got, want in zip(new, old):
            if got.prior != want.prior or got.name_similarity != want.name_similarity:
                return False
            if abs(got.score - want.score) > SCORE_TOL:
                return False
    return True


@pytest.fixture(scope="module")
def pipeline(bench_kg):
    return make_pipeline(bench_kg.store, tier="full")


@pytest.fixture(scope="module")
def texts(bench_corpus):
    return [doc.full_text for doc in bench_corpus.documents[:DETECT_DOCS]]


def test_mention_detection_speedup(benchmark, pipeline, texts):
    detector = pipeline.detector
    table = pipeline.alias_table
    config = detector.config or MentionDetectorConfig()

    def new_detect_all():
        return [detector.detect(text) for text in texts]

    new_detect_all()  # warm the token/gap memos once, like a serving process
    legacy_time, legacy_result = min_time(
        lambda: [legacy_detect(table, config, text) for text in texts]
    )
    new_time, new_result = min_time(new_detect_all, repeats=5)
    assert new_result == legacy_result, "mentions must stay byte-identical"

    benchmark(new_detect_all)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F4-hotpath",
        {
            "op": "mention_detection",
            "docs": len(texts),
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": new_result == legacy_result,
        },
    )
    check_floor(speedup >= 5.0, f"speedup {speedup:.1f} < 5x")


@pytest.fixture(scope="module")
def rerank_workload(pipeline, bench_corpus):
    """Per-document (candidate lists, query matrix) pairs, precomputed."""
    workload = []
    for doc in bench_corpus.documents[:RERANK_DOCS]:
        text = doc.full_text
        mentions = pipeline.detector.detect(text)
        pairs = [
            (mention, candidates)
            for mention in mentions
            if (candidates := pipeline.candidate_generator.generate(mention))
        ]
        if not pairs:
            continue
        query_matrix = pipeline.encoder.encode_batch(
            [pipeline._window_tokens(text, mention) for mention, _ in pairs]
        )
        workload.append(([candidates for _, candidates in pairs], query_matrix))
    return workload


def test_rerank_speedup(benchmark, pipeline, rerank_workload):
    reranker = pipeline.reranker
    legacy_side = copy.deepcopy(rerank_workload)
    new_side = copy.deepcopy(rerank_workload)

    def legacy_all():
        for candidate_lists, query_matrix in legacy_side:
            for row, candidates in enumerate(candidate_lists):
                legacy_rerank(reranker, candidates, query_vector=query_matrix[row])
        return legacy_side

    def new_all():
        for candidate_lists, query_matrix in new_side:
            reranker.rerank_batch(candidate_lists, query_matrix=query_matrix)
        return new_side

    legacy_time, _ = min_time(legacy_all)
    new_time, _ = min_time(new_all, repeats=5)
    pairs = sum(
        len(candidates)
        for candidate_lists, _ in rerank_workload
        for candidates in candidate_lists
    )
    identical = all(
        candidates_match(new_lists, old_lists)
        for (new_lists, _), (old_lists, _) in zip(new_side, legacy_side)
    )
    assert identical

    benchmark(new_all)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F4-hotpath",
        {
            "op": "rerank_context",
            "pairs": pairs,
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": identical,
        },
    )
    check_floor(speedup >= 1.5, f"speedup {speedup:.1f} < 1.5x")


def test_candidate_scoring_speedup(benchmark, pipeline, bench_corpus):
    """The seed's whole query-scoring stage: hash every mention window
    (two SHA digests per token occurrence) and score every pair with one
    ``np.dot`` + KV lookup — vs one batch encode + one-matmul rerank."""
    reranker = pipeline.reranker
    encoder = pipeline.encoder
    workload = []
    for doc in bench_corpus.documents[:RERANK_DOCS]:
        text = doc.full_text
        mentions = pipeline.detector.detect(text)
        pairs = [
            (mention, candidates)
            for mention in mentions
            if (candidates := pipeline.candidate_generator.generate(mention))
        ]
        if not pairs:
            continue
        window_lists = [
            pipeline._window_tokens(text, mention) for mention, _ in pairs
        ]
        workload.append(([candidates for _, candidates in pairs], window_lists))
    legacy_side = copy.deepcopy(workload)
    new_side = copy.deepcopy(workload)

    def legacy_all():
        for candidate_lists, window_lists in legacy_side:
            for candidates, tokens in zip(candidate_lists, window_lists):
                query_vector = legacy_encode_tokens(encoder.dim, tokens)
                legacy_rerank(reranker, candidates, query_vector=query_vector)
        return legacy_side

    def new_all():
        for candidate_lists, window_lists in new_side:
            reranker.rerank_batch(
                candidate_lists, query_matrix=encoder.encode_batch(window_lists)
            )
        return new_side

    new_all()  # warm the token memo once, like a serving process
    legacy_time, _ = min_time(legacy_all)
    new_time, _ = min_time(new_all, repeats=5)
    identical = all(
        candidates_match(new_lists, old_lists)
        for (new_lists, _), (old_lists, _) in zip(new_side, legacy_side)
    )
    assert identical

    benchmark(new_all)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F4-hotpath",
        {
            "op": "candidate_scoring",
            "docs": len(workload),
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": identical,
        },
    )
    check_floor(speedup >= 5.0, f"speedup {speedup:.1f} < 5x")


def test_rerank_coherence_speedup(benchmark, bench_kg, bench_trained, rerank_workload):
    """The coherence feature: one matmul against the embedding-service
    vectors instead of per-pair ``service.similarity`` calls."""
    service = EmbeddingService(bench_trained.trained)
    pipeline = make_pipeline(bench_kg.store, tier="full", embedding_service=service)
    reranker = pipeline.reranker
    assert reranker.config.use_coherence

    workload = []
    for candidate_lists, query_matrix in rerank_workload[:100]:
        document_entities = [candidates[0].entity for candidates in candidate_lists]
        if len(document_entities) > 1:
            workload.append((candidate_lists, query_matrix, document_entities))
    legacy_side = copy.deepcopy(workload)
    new_side = copy.deepcopy(workload)

    def legacy_all():
        for candidate_lists, query_matrix, document_entities in legacy_side:
            for row, candidates in enumerate(candidate_lists):
                legacy_rerank(
                    reranker,
                    candidates,
                    query_vector=query_matrix[row],
                    document_entities=document_entities,
                )
        return legacy_side

    def new_all():
        for candidate_lists, query_matrix, document_entities in new_side:
            reranker.rerank_batch(
                candidate_lists,
                query_matrix=query_matrix,
                document_entities=document_entities,
            )
        return new_side

    legacy_time, _ = min_time(legacy_all)
    new_time, _ = min_time(new_all, repeats=5)
    identical = all(
        candidates_match(new_lists, old_lists)
        for (new_lists, _, _), (old_lists, _, _) in zip(new_side, legacy_side)
    )
    assert identical

    benchmark(new_all)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F4-hotpath",
        {
            "op": "rerank_coherence",
            "docs": len(workload),
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": identical,
        },
    )
    check_floor(speedup >= 5.0, f"speedup {speedup:.1f} < 5x")


def test_context_encode_speedup(benchmark, pipeline, texts):
    """Query-side encoding: memoised token features + one batch per doc."""
    encoder = pipeline.encoder
    window_lists = []
    for text in texts:
        mentions = pipeline.detector.detect(text)
        if mentions:
            window_lists.append(
                [pipeline._window_tokens(text, mention) for mention in mentions]
            )

    def new_encode_all():
        return [encoder.encode_batch(token_lists) for token_lists in window_lists]

    new_encode_all()  # warm the token memo once
    legacy_time, legacy_result = min_time(
        lambda: [
            np.stack([legacy_encode_tokens(encoder.dim, tokens) for tokens in token_lists])
            for token_lists in window_lists
        ]
    )
    new_time, new_result = min_time(new_encode_all, repeats=5)
    identical = all(
        np.array_equal(new_mat, legacy_mat)
        for new_mat, legacy_mat in zip(new_result, legacy_result)
    )
    assert identical, "hashed query vectors must stay byte-identical"

    benchmark(new_encode_all)
    speedup = legacy_time / new_time
    benchmark.extra_info["speedup_vs_seed"] = speedup
    record_result(
        "F4-hotpath",
        {
            "op": "context_encode",
            "docs": len(window_lists),
            "legacy_ms": round(legacy_time * 1000, 3),
            "new_ms": round(new_time * 1000, 3),
            "speedup": round(speedup, 1),
            "identical": identical,
        },
    )
    check_floor(speedup > 1.0, f"speedup {speedup:.1f} <= 1x")
