"""F-serving — the sharded, batched serving layer over one snapshot bundle.

The paper's §4–5 serving story: immutable snapshots served by a worker
fleet, with request batching and caching navigating the price/performance
curve.  Three axes are pinned here:

* **worker scaling** — aggregate annotation throughput (docs/s) of the
  single-process seed path (per-document ``pipeline.annotate``) vs a
  1-worker and an N-worker process pool behind the serving facade.  The
  ≥3x multi-worker floor only *can* hold on a multi-core host, so it
  gates on ``os.cpu_count()`` — on smaller machines the rows still
  record, the floor is reported informationally.
* **cross-document micro-batching** — per-document ``annotate`` vs
  ``annotate_batch`` over micro-batches, same process (≥1.3x).
* **query serving** — walk queries/s through the full facade
  (router → shards → pool → merge), cold vs query-cache hits.

Parity is unconditional at every scale: spans/entities through any pool
configuration must byte-match the seed path, and walks through the router
must byte-match the single-worker facade.
"""

import os
import time
from pathlib import Path

import pytest

from benchmarks.conftest import check_floor, record_result
from repro.kg.persistence import load_snapshot, save_snapshot
from repro.serving.service import ServingService

# Worker count for the fleet rows; the CI smoke job sets BENCH_WORKERS=2
# to stay within runner cores.  The >=3x fleet floor only makes sense for
# a >=4-worker pool on a host with at least that many cores — a 2-worker
# pool physically tops out around 2x, so gating on cpu_count alone would
# demand the impossible on small machines.
WORKERS = int(os.environ.get("BENCH_WORKERS", "4"))
FLEET_FLOOR_APPLIES = WORKERS >= 4 and (os.cpu_count() or 1) >= WORKERS

ANNOTATE_DOCS = 200
BATCH_DOCS = 16
WALK_QUERY_ENTITIES = 8
WALK_QUERIES = 60


def min_time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


def links_signature(per_doc_links):
    return [
        [
            (link.mention.start, link.mention.end, link.mention.surface, link.entity)
            for link in links
        ]
        for links in per_doc_links
    ]


@pytest.fixture(scope="module")
def bundle_dir(bench_kg, tmp_path_factory) -> Path:
    directory = tmp_path_factory.mktemp("serving-bundle")
    save_snapshot(bench_kg.store, directory)
    return directory


@pytest.fixture(scope="module")
def corpus_texts(bench_corpus) -> list[str]:
    texts = [doc.full_text for doc in bench_corpus]
    return texts[: min(ANNOTATE_DOCS, len(texts))]


@pytest.fixture(scope="module")
def seed_signature(bundle_dir, corpus_texts):
    """The single-process, per-document reference output (the seed path)."""
    pipeline = load_snapshot(bundle_dir).annotation_pipeline(tier="full")
    return links_signature([pipeline.annotate(text) for text in corpus_texts])


def test_annotation_throughput_worker_scaling(
    benchmark, bench_kg, bundle_dir, corpus_texts, seed_signature
):
    """Docs/s: seed path vs 1-worker vs N-worker pool (batched both)."""
    # Seed path: one process, one document at a time — what serving
    # looked like before this subsystem.
    seed_pipeline = load_snapshot(bundle_dir).annotation_pipeline(tier="full")
    seed_pipeline.annotate(corpus_texts[0])  # warm
    seed_time, _ = min_time(
        lambda: [seed_pipeline.annotate(text) for text in corpus_texts], repeats=2
    )
    seed_docs_per_s = len(corpus_texts) / seed_time

    def fleet_docs_per_s(num_workers: int):
        with ServingService(
            bundle_dir,
            mode="process",
            num_workers=num_workers,
            batch_max_docs=BATCH_DOCS,
        ) as svc:
            svc.annotate_many(corpus_texts)  # spawn + warm every child

            def run():
                svc._cache.clear()  # measure compute, not the result cache
                return svc.annotate_many(corpus_texts)

            elapsed, result = min_time(run, repeats=2)
        return len(corpus_texts) / elapsed, links_signature(result)

    single_docs_per_s, single_signature = fleet_docs_per_s(1)
    fleet_docs, fleet_sig = fleet_docs_per_s(WORKERS)

    # Parity is unconditional: spans/entities through any pool shape must
    # byte-match the per-document seed path.
    assert single_signature == seed_signature
    assert fleet_sig == seed_signature

    speedup_fleet = fleet_docs / seed_docs_per_s
    benchmark.extra_info["docs_per_s_seed"] = seed_docs_per_s
    benchmark.extra_info["docs_per_s_fleet"] = fleet_docs
    benchmark(lambda: None)
    record_result(
        "F-serving",
        {
            "op": "annotation_throughput",
            "workers": 0,
            "batched": False,
            "docs": len(corpus_texts),
            "docs_per_s": round(seed_docs_per_s, 1),
        },
    )
    record_result(
        "F-serving",
        {
            "op": "annotation_throughput",
            "workers": 1,
            "batched": True,
            "docs": len(corpus_texts),
            "docs_per_s": round(single_docs_per_s, 1),
            "speedup_vs_seed": round(single_docs_per_s / seed_docs_per_s, 2),
        },
    )
    record_result(
        "F-serving",
        {
            "op": "annotation_throughput",
            "workers": WORKERS,
            "batched": True,
            "docs": len(corpus_texts),
            "docs_per_s": round(fleet_docs, 1),
            "speedup_vs_seed": round(speedup_fleet, 2),
            "cpus": os.cpu_count(),
        },
    )
    if FLEET_FLOOR_APPLIES:
        check_floor(
            speedup_fleet >= 3.0,
            f"{WORKERS}-worker fleet speedup {speedup_fleet:.2f} < 3x vs seed path",
        )
    else:
        print(
            f"\n[F-serving] {WORKERS} worker(s) on {os.cpu_count()} CPU(s): "
            f"the >=3x fleet floor needs a >=4-worker pool on >=4 cores "
            f"(measured {speedup_fleet:.2f}x)"
        )


def test_cross_document_batching(benchmark, bundle_dir, corpus_texts, seed_signature):
    """Docs/s: per-document calls vs cross-document micro-batches, one process."""
    pipeline = load_snapshot(bundle_dir).annotation_pipeline(tier="full")
    batch_pipeline = load_snapshot(bundle_dir).annotation_pipeline(tier="full")
    pipeline.annotate(corpus_texts[0])
    batch_pipeline.annotate(corpus_texts[0])

    per_doc_time, per_doc = min_time(
        lambda: [pipeline.annotate(text) for text in corpus_texts], repeats=2
    )
    chunks = [
        corpus_texts[start : start + BATCH_DOCS]
        for start in range(0, len(corpus_texts), BATCH_DOCS)
    ]
    batched_time, batched = min_time(
        lambda: [
            links
            for chunk in chunks
            for links in batch_pipeline.annotate_batch(chunk)
        ],
        repeats=2,
    )

    assert links_signature(per_doc) == seed_signature
    assert links_signature(batched) == seed_signature

    per_doc_rate = len(corpus_texts) / per_doc_time
    batched_rate = len(corpus_texts) / batched_time
    speedup = batched_rate / per_doc_rate
    benchmark.extra_info["batching_speedup"] = speedup
    benchmark(lambda: None)
    record_result(
        "F-serving",
        {
            "op": "cross_doc_batching",
            "workers": 1,
            "batched": True,
            "batch_docs": BATCH_DOCS,
            "docs": len(corpus_texts),
            "docs_per_s": round(batched_rate, 1),
            "speedup_vs_per_doc": round(speedup, 2),
        },
    )
    check_floor(
        speedup >= 1.3,
        f"cross-document batching speedup {speedup:.2f} < 1.3x",
    )


def test_walk_query_serving(benchmark, bench_kg, bundle_dir):
    """Walk queries/s through the full facade, plus the cache-hit path."""
    entities = sorted(bench_kg.store.entity_ids())
    queries = [
        tuple(
            entities[(index * WALK_QUERY_ENTITIES + offset) % len(entities)]
            for offset in range(WALK_QUERY_ENTITIES)
        )
        for index in range(WALK_QUERIES)
    ]

    with ServingService(bundle_dir, mode="inline", num_shards=WORKERS) as svc:
        reference = [svc.random_walks(query, seed=17) for query in queries]

        def cold_run():
            svc._cache.clear()
            return [svc.random_walks(query, seed=17) for query in queries]

        cold_time, cold_results = min_time(cold_run, repeats=3)
        assert cold_results == reference

        # Hot path: every request answered from the versioned cache.
        def hot_run():
            return [svc.random_walks(query, seed=17) for query in queries]

        hot_run()
        hot_time, hot_results = min_time(hot_run, repeats=3)
        assert hot_results == reference
        hit_rate = svc.stats()["serve.cache_hit_rate"]

    # Router invariance: a sharded fleet answers byte-identically.
    with ServingService(
        bundle_dir, mode="process", num_workers=max(2, WORKERS // 2), num_shards=WORKERS
    ) as fleet:
        fleet_results = [fleet.random_walks(query, seed=17) for query in queries[:10]]
    assert fleet_results == reference[:10]

    cold_qps = WALK_QUERIES / cold_time
    hot_qps = WALK_QUERIES / hot_time
    benchmark.extra_info["cold_qps"] = cold_qps
    benchmark.extra_info["hot_qps"] = hot_qps
    benchmark(lambda: None)
    record_result(
        "F-serving",
        {
            "op": "walk_queries",
            "mode": "cold",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(cold_qps, 1),
        },
    )
    record_result(
        "F-serving",
        {
            "op": "walk_queries",
            "mode": "cached",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(hot_qps, 1),
            "cache_hit_rate": round(hit_rate, 3),
        },
    )
    check_floor(hot_qps >= 2.0 * cold_qps, f"cache hit path {hot_qps / cold_qps:.1f}x < 2x cold")
