"""Shared benchmark fixtures: one full-scale world, trained once per session.

Benchmarks mirror the experiment index in DESIGN.md §4.  Quality numbers are
attached to each benchmark's ``extra_info`` (visible in pytest-benchmark
output) and also appended to ``benchmarks/results.jsonl`` so EXPERIMENTS.md
can quote them.
"""

from __future__ import annotations

import json
import os
import warnings
from pathlib import Path

import pytest

from repro.annotation.pipeline import make_pipeline
from repro.common import ids
from repro.embeddings.pipeline import EmbeddingPipelineConfig, run_embedding_pipeline
from repro.embeddings.trainer import TrainConfig
from repro.kg.generator import SyntheticKGConfig, generate_kg, hold_out_facts
from repro.kg.views import embedding_training_view
from repro.web.corpus import WebCorpusConfig, generate_corpus
from repro.web.search import BM25SearchEngine

# CI smoke knobs: BENCH_SCALE shrinks the synthetic world (and corpus)
# proportionally; BENCH_SMOKE=1 downgrades speed/quality floor assertions
# to warnings (a 0.05-scale world says nothing about scale-1.0 speedups —
# the smoke run only guards imports and API contracts); BENCH_RESULTS
# redirects the row log so smoke runs never pollute the committed
# baseline in results.jsonl.
SCALE = float(os.environ.get("BENCH_SCALE", "1.0"))
SMOKE = os.environ.get("BENCH_SMOKE", "") == "1"
RESULTS_PATH = Path(
    os.environ.get("BENCH_RESULTS", Path(__file__).parent / "results.jsonl")
)

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")


def record_result(experiment: str, row: dict) -> None:
    """Append one experiment row to the results log and echo it."""
    payload = {"experiment": experiment, **row}
    with RESULTS_PATH.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, sort_keys=True, default=float) + "\n")
    print(f"\n[{experiment}] " + json.dumps(row, sort_keys=True, default=float))


def check_floor(condition: bool, message: str) -> None:
    """Assert a speed/quality floor — downgraded to a warning in smoke mode.

    Byte-identity parity assertions must NOT go through here: they hold at
    every scale and guard correctness, not performance.
    """
    if SMOKE:
        if not condition:
            warnings.warn(f"[smoke] floor not met (ignored): {message}", stacklevel=2)
        return
    assert condition, message


def _scaled(count: int, floor: int = 4) -> int:
    """A corpus page count scaled with BENCH_SCALE (identity at 1.0)."""
    return max(floor, round(count * SCALE))


@pytest.fixture(scope="session")
def bench_kg():
    """Full-scale synthetic world (the benchmark substrate)."""
    return generate_kg(SyntheticKGConfig(seed=7, scale=SCALE))


@pytest.fixture(scope="session")
def bench_corpus(bench_kg):
    return generate_corpus(
        bench_kg,
        WebCorpusConfig(
            seed=11,
            num_profile_pages=_scaled(250),
            num_news_pages=_scaled(400),
            num_blog_pages=_scaled(160),
            num_list_pages=_scaled(40),
            num_distractor_pages=_scaled(50),
        ),
    )


@pytest.fixture(scope="session")
def bench_search(bench_corpus):
    return BM25SearchEngine(bench_corpus)


@pytest.fixture(scope="session")
def bench_trained(bench_kg):
    """Well-trained ComplEx embeddings over the filtered view."""
    config = EmbeddingPipelineConfig(
        train=TrainConfig(model="complex", dim=32, epochs=30, seed=1),
        view=embedding_training_view(min_predicate_frequency=5),
        eval_max_queries=150,
    )
    return run_embedding_pipeline(bench_kg.store, config)


@pytest.fixture(scope="session")
def bench_deployed(bench_kg):
    """Deployed KG with 25% of DOB/POB facts held out + truth map."""
    deployed, held_out = hold_out_facts(bench_kg, fraction=0.25, seed=13)
    truth: dict[tuple[str, str], str] = {}
    for fact in held_out:
        if fact.predicate == DOB:
            truth[(fact.subject, fact.predicate)] = fact.obj
        elif fact.predicate == POB:
            truth[(fact.subject, fact.predicate)] = bench_kg.store.entity(fact.obj).name
    return deployed, held_out, truth


@pytest.fixture(scope="session")
def bench_annotation_full(bench_kg):
    return make_pipeline(bench_kg.store, tier="full")


@pytest.fixture(scope="session")
def bench_annotation_lite(bench_kg):
    return make_pipeline(bench_kg.store, tier="lite")
