"""F1 — Figure 1: the end-to-end extended platform.

One full cycle: KG construction (synthetic) → view → embedding training →
link the web → gap detection → ODKE extraction → fusion back into the KG.
The row reports every stage's volume and the closing coverage improvement —
the "growing and serving" loop of the title.
"""

from benchmarks.conftest import DOB, POB, check_floor, record_result
from repro.annotation.pipeline import make_pipeline
from repro.core import KnowledgePlatform
from repro.embeddings.trainer import TrainConfig
from repro.kg.generator import SyntheticKGConfig, generate_kg, hold_out_facts
from repro.kg.profiling import KGProfiler
from repro.web.corpus import WebCorpusConfig, generate_corpus
from repro.web.search import BM25SearchEngine


def test_full_platform_cycle(benchmark):
    def cycle():
        kg = generate_kg(SyntheticKGConfig(seed=42, scale=0.6))
        deployed, held_out = hold_out_facts(kg, fraction=0.25, seed=5)
        corpus = generate_corpus(
            kg,
            WebCorpusConfig(seed=12, num_profile_pages=150, num_news_pages=200,
                            num_blog_pages=80, num_list_pages=20,
                            num_distractor_pages=20),
        )
        platform = KnowledgePlatform(deployed, kg.ontology, now=kg.now)
        embedding = platform.train_embeddings(
            TrainConfig(model="distmult", dim=24, epochs=8, seed=2)
        )
        platform._annotation["full"] = make_pipeline(deployed, tier="full")
        annotator, link_report = platform.link_web(corpus)
        search = BM25SearchEngine(corpus)

        gaps_before = len(
            [g for g in KGProfiler(deployed, kg.ontology, now=kg.now).profile().gaps
             if g.predicate in (DOB, POB)]
        )
        odke_report = platform.enrich_from_web(search, max_targets=120)
        gaps_after = len(
            [g for g in KGProfiler(deployed, kg.ontology, now=kg.now).profile().gaps
             if g.predicate in (DOB, POB)]
        )
        return {
            "kg_facts": len(kg.store),
            "held_out": len(held_out),
            "embedding_mrr": round(embedding.evaluation.mrr, 3),
            "web_docs": link_report.docs_processed,
            "web_links": link_report.links_produced,
            "odke_candidates": odke_report.candidates_extracted,
            "odke_written": odke_report.fusion.written if odke_report.fusion else 0,
            "gaps_before": gaps_before,
            "gaps_after": gaps_after,
        }

    row = benchmark.pedantic(cycle, rounds=1, iterations=1)
    check_floor(row["gaps_after"] < row["gaps_before"], "gap repair made no progress")
    benchmark.extra_info.update(row)
    record_result("F1-platform", row)
