"""F-obs — what observability costs on the serving walk path.

PR 9 threads tracing hooks through every serving layer (gateway admit,
cache, scatter/gather, per-shard dispatch, worker execute).  Each hook
is one ``None`` check when no tracer is armed, so the *disarmed* tax
must be unmeasurable; the *armed* tax — real span objects, clock reads,
ring assembly — is measured at two altitudes and two sampling rates:

* **end-to-end** — walk queries through the HTTP front door.  Three
  arms interleave per query: ``disarmed``, ``armed_full``
  (``sample_every=1`` — every request assembles its ~14-span trace) and
  ``armed_sampled`` (``sample_every=8``, the production configuration
  the gateway's ``--trace-sample`` flag arms).  Full tracing of a
  sub-millisecond fan-out honestly costs a few percent — that is the
  tax head sampling exists to amortise, and the recorded
  ``armed_full`` row keeps that number visible.  The **gated** row is
  ``armed_sampled``: ≤5% over disarmed, with the bound carried in the
  row (``overhead_budget``) so ``check_regressions.py`` re-enforces it
  against every committed and fresh run.
* **service-level (informational)** — ``ServingService.serve`` called
  directly with full tracing, against the disarmed serve and the raw
  pre-observability engine path.  This is the most surgical measure of
  what the span machinery costs; a generous tripwire floor guards
  against pathological per-span regressions only.

The measurement protocol is bench_resilience's: arms interleave *per
query* in rotating order, each query keeps its minimum over the repeats,
and per-arm totals are the sum of those minima — whole-process drift
(frequency scaling, allocator growth) hits all arms symmetrically and
the min filters it out.  Parity is unconditional in every serve arm: an
armed tracer, sampled or not, must never change a payload byte.
"""

import asyncio
import time

import pytest

from benchmarks.conftest import check_floor, record_result
from repro.common import tracing
from repro.common.tracing import Tracer
from repro.kg.persistence import save_snapshot
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import decode_response, encode_request
from repro.serving.requests import WalkRequest
from repro.serving.service import ServingService

WALK_QUERY_ENTITIES = 8
WALK_QUERIES = 60
#: The production head-sampling rate (``--trace-sample 8``) whose
#: overhead the ≤5% budget gates.
SAMPLE_EVERY = 8
# The end-to-end gate: armed-with-sampling tracing may cost at most 5%
# over disarmed on the HTTP walk path.  check_regressions.py re-enforces
# this bound on the committed baseline row (overhead_budget field).
OVERHEAD_BUDGET = 1.05
# Tripwires for the full-tracing arms: ~14 spans on a ~1ms request
# legitimately cost several percent (that is why production samples);
# these floors only catch pathological regressions in per-span cost.
FULL_TRACING_TRIPWIRE = 1.15
SERVICE_TRIPWIRE = 1.25


@pytest.fixture(scope="module")
def bundle_dir(bench_kg, tmp_path_factory):
    directory = tmp_path_factory.mktemp("observability-bundle")
    save_snapshot(bench_kg.store, directory)
    return directory


@pytest.fixture(scope="module")
def walk_requests(bench_kg):
    entities = sorted(bench_kg.store.entity_ids())
    return [
        WalkRequest(
            entities=tuple(
                entities[(index * WALK_QUERY_ENTITIES + offset) % len(entities)]
                for offset in range(WALK_QUERY_ENTITIES)
            ),
            seed=17,
        )
        for index in range(WALK_QUERIES)
    ]


def test_tracing_overhead_http_walk_path(benchmark, bundle_dir, walk_requests):
    """HTTP walk round-trips: disarmed vs full tracing vs sampled tracing."""
    tracing.disarm()
    tracer_full = Tracer(ring_capacity=WALK_QUERIES)
    tracer_sampled = Tracer(
        ring_capacity=WALK_QUERIES, sample_every=SAMPLE_EVERY
    )
    payloads = [encode_request(request) for request in walk_requests]
    results = {}
    sampled_trace_ids = {"with": 0, "without": 0}

    async def drive():
        with ServingService(bundle_dir, mode="inline", num_shards=4) as svc:
            gateway = AsyncGateway(
                svc, max_concurrency=4, max_pending=4 * WALK_QUERIES
            )
            server = GatewayHTTPServer(gateway)
            host, port = await server.start()
            try:

                async def post(body):
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        (
                            f"POST /v1/query HTTP/1.1\r\nHost: bench\r\n"
                            f"Content-Length: {len(body)}\r\n\r\n"
                        ).encode()
                        + body
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    return raw.partition(b"\r\n\r\n")[2]

                reference = []
                for body in payloads:
                    response = decode_response(await post(body))
                    assert response.ok
                    reference.append(response.payload)

                async def run_disarmed(index):
                    return await post(payloads[index])

                def armed_runner(tracer):
                    async def run(index):
                        tracing.arm(tracer)
                        try:
                            return await post(payloads[index])
                        finally:
                            tracing.disarm()

                    return run

                arms = [
                    ("disarmed", run_disarmed),
                    ("armed_full", armed_runner(tracer_full)),
                    ("armed_sampled", armed_runner(tracer_sampled)),
                ]
                best = {
                    label: [float("inf")] * WALK_QUERIES for label, _ in arms
                }
                # 8 repeats (vs the service test's 6): each sample is one
                # socket round-trip, so the per-query min needs more draws
                # to converge through connection-level jitter.
                for repeat in range(8):
                    for index in range(WALK_QUERIES):
                        rotation = (repeat + index) % len(arms)
                        for label, run in arms[rotation:] + arms[:rotation]:
                            # Every arm must recompute: a cache hit would
                            # measure the dict probe, not the walk path.
                            svc._cache.clear()
                            start = time.perf_counter()
                            body = await run(index)
                            elapsed = time.perf_counter() - start
                            response = decode_response(body)
                            assert response.payload == reference[index]
                            if label == "armed_full":
                                assert response.trace_id
                            elif label == "armed_sampled":
                                key = "with" if response.trace_id else "without"
                                sampled_trace_ids[key] += 1
                            best[label][index] = min(
                                best[label][index], elapsed
                            )
                results.update(best)
            finally:
                await server.stop()
                gateway.close()

    asyncio.run(drive())

    # Neither armed arm may be vacuous: full tracing must have assembled
    # one trace per request, and the sampled tracer must have both
    # recorded ~1/8 of its requests and suppressed the rest.
    full = tracer_full.counters()
    assert full["traces_completed"] >= WALK_QUERIES
    assert full["traces_live"] == 0
    sampled = tracer_sampled.counters()
    assert sampled["traces_completed"] >= (8 * WALK_QUERIES) // SAMPLE_EVERY
    assert sampled["traces_sampled_out"] >= sampled["traces_completed"]
    assert sampled["traces_live"] == 0
    assert sampled_trace_ids["with"] > 0
    assert sampled_trace_ids["without"] > 0

    totals = {label: sum(minima) for label, minima in results.items()}
    qps = {label: WALK_QUERIES / total for label, total in totals.items()}
    overhead_full = totals["armed_full"] / totals["disarmed"]
    overhead_sampled = totals["armed_sampled"] / totals["disarmed"]
    benchmark.extra_info.update(
        {f"http_{label}_qps": value for label, value in qps.items()}
    )
    benchmark.extra_info["overhead_full_vs_disarmed"] = overhead_full
    benchmark.extra_info["overhead_sampled_vs_disarmed"] = overhead_sampled
    benchmark(lambda: None)
    record_result(
        "F-obs",
        {
            "op": "walk_queries_http",
            "config": "disarmed",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(qps["disarmed"], 1),
        },
    )
    record_result(
        "F-obs",
        {
            "op": "walk_queries_http",
            "config": "armed_full",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(qps["armed_full"], 1),
            "overhead_vs_disarmed": round(overhead_full, 3),
        },
    )
    record_result(
        "F-obs",
        {
            "op": "walk_queries_http",
            "config": "armed_sampled",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "sample_every": SAMPLE_EVERY,
            "queries_per_s": round(qps["armed_sampled"], 1),
            "overhead_vs_disarmed": round(overhead_sampled, 3),
            "overhead_budget": OVERHEAD_BUDGET,
        },
    )
    check_floor(
        overhead_sampled <= OVERHEAD_BUDGET,
        f"armed tracing (1/{SAMPLE_EVERY} sampling) {overhead_sampled:.3f}x "
        f"slower than disarmed on the HTTP walk path "
        f"(> {OVERHEAD_BUDGET:.2f}x budget)",
    )
    check_floor(
        overhead_full <= FULL_TRACING_TRIPWIRE,
        f"full tracing {overhead_full:.3f}x slower than disarmed on the "
        f"HTTP walk path (> {FULL_TRACING_TRIPWIRE:.2f}x tripwire)",
    )


def test_tracing_overhead_service_path(benchmark, bundle_dir, walk_requests):
    """The informational service-level arms: seed-path vs disarmed vs armed.

    * **seed_path** — ``WorkerState._dispatch`` called directly: the raw
      per-request compute with no serving dispatch, no fault points, no
      tracing hooks.  This is the pre-observability engine path (it also
      answers all entities in a single call rather than a 4-shard
      fan-out, so it is an anchor, not a like-for-like floor).
    * **disarmed** — ``ServingService.serve`` with no tracer armed (the
      production default).
    * **armed** — the same serve under an armed unsampled
      :class:`Tracer` with the default bounded ring, assembling one
      complete ~13-span trace per request.
    """
    tracing.disarm()
    tracer = Tracer()
    with ServingService(
        bundle_dir, mode="inline", num_shards=4
    ) as plain, ServingService(bundle_dir, mode="inline", num_shards=4) as traced:
        state = plain._pool.local_state
        reference = [plain.serve(request).payload for request in walk_requests]
        with tracing.armed(tracer):
            warm = [traced.serve(request).payload for request in walk_requests]
        # Parity is unconditional: an armed tracer must not change a
        # single byte of any answer.
        assert warm == reference

        def run_seed(request):
            return state._dispatch(request)

        def run_disarmed(request):
            return plain.serve(request).payload

        def run_armed(request):
            tracing.arm(tracer)
            try:
                return traced.serve(request).payload
            finally:
                tracing.disarm()

        arms = [
            ("seed_path", run_seed),
            ("disarmed", run_disarmed),
            ("armed", run_armed),
        ]
        best = {label: [float("inf")] * WALK_QUERIES for label, _ in arms}
        for repeat in range(6):
            plain._cache.clear()
            traced._cache.clear()
            for index, request in enumerate(walk_requests):
                rotation = (repeat + index) % len(arms)
                for label, run in arms[rotation:] + arms[:rotation]:
                    start = time.perf_counter()
                    payload = run(request)
                    elapsed = time.perf_counter() - start
                    if label != "seed_path":
                        assert payload == reference[index]
                    best[label][index] = min(best[label][index], elapsed)

    counters = tracer.counters()
    assert counters["traces_completed"] >= WALK_QUERIES
    assert counters["traces_live"] == 0

    totals = {label: sum(minima) for label, minima in best.items()}
    qps = {label: WALK_QUERIES / total for label, total in totals.items()}
    overhead_armed = totals["armed"] / totals["disarmed"]
    overhead_disarmed = totals["disarmed"] / totals["seed_path"]
    benchmark.extra_info.update(
        {f"{label}_qps": value for label, value in qps.items()}
    )
    benchmark.extra_info["overhead_armed_vs_disarmed"] = overhead_armed
    benchmark(lambda: None)
    record_result(
        "F-obs",
        {
            "op": "walk_queries_service",
            "config": "seed_path",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(qps["seed_path"], 1),
        },
    )
    record_result(
        "F-obs",
        {
            "op": "walk_queries_service",
            "config": "disarmed",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(qps["disarmed"], 1),
            "overhead_vs_seed_path": round(overhead_disarmed, 3),
        },
    )
    record_result(
        "F-obs",
        {
            "op": "walk_queries_service",
            "config": "armed",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(qps["armed"], 1),
            "overhead_vs_disarmed": round(overhead_armed, 3),
        },
    )
    check_floor(
        overhead_armed <= SERVICE_TRIPWIRE,
        f"armed tracing {overhead_armed:.3f}x slower than disarmed at the "
        f"service layer (> {SERVICE_TRIPWIRE:.2f}x tripwire)",
    )
