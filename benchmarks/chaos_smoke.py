#!/usr/bin/env python
"""CI chaos smoke: boot the HTTP gateway under an armed fault plan.

Same shape as ``gateway_smoke.py`` — a small synthetic world
(``CHAOS_SMOKE_SCALE``, default 0.05), a snapshot bundle, the asyncio
HTTP front door on an ephemeral port, one wire request per protocol
type — but with a :class:`FaultPlan` armed the whole time: worker
crashes at rate 0.2, transient I/O errors at rate 0.1 and a slow
replica at rate 0.1.  The resilience layer (retries + supervision) must
absorb every injection: each request type still has to come back ``ok``
with a payload, byte-compatible with a healthy control run, and
``/healthz`` must keep answering 200 throughout.  Exits non-zero on any
violation — including the degenerate one where the plan injected
nothing, which would make the smoke vacuous.

Run directly (CI does): ``PYTHONPATH=src python benchmarks/chaos_smoke.py``
"""

from __future__ import annotations

import asyncio
import json
import os
import sys
import tempfile
import time
from pathlib import Path

from repro.common.metrics import MetricsRegistry
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.persistence import save_snapshot
from repro.serving.faults import (
    SITE_WORKER_EXECUTE,
    FaultPlan,
    FaultSpec,
    armed,
)
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import decode_response, encode_request, encode_response
from repro.serving.requests import WalkRequest
from repro.serving.resilience import CircuitBreaker, CircuitOpenError, RetryPolicy
from repro.serving.service import ServingService
from repro.serving.worker import WorkerPool

# Run as a script (CI) the benchmarks directory itself is on sys.path;
# under pytest the package import works.
try:
    from benchmarks.gateway_smoke import build_requests, http_post
except ModuleNotFoundError:
    from gateway_smoke import build_requests, http_post

SCALE = float(os.environ.get("CHAOS_SMOKE_SCALE", "0.05"))

PLAN = FaultPlan(
    (
        FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=0.2),
        FaultSpec(SITE_WORKER_EXECUTE, "io_error", rate=0.1),
        FaultSpec(SITE_WORKER_EXECUTE, "slow", rate=0.1, delay_s=0.005),
    ),
    seed=41,
)

# Deep budget, short sleeps: the bar is 100% completion under sustained
# chaos, not latency, and CI should not spend its time in backoff.
RETRY_POLICY = RetryPolicy(max_attempts=8, backoff_base_s=0.001, backoff_max_s=0.01)


async def http_get(host: str, port: int, path: str) -> tuple[str, bytes]:
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(f"GET {path} HTTP/1.1\r\nHost: smoke\r\n\r\n".encode())
    await writer.drain()
    raw = await reader.read()
    writer.close()
    head, _, payload = raw.partition(b"\r\n\r\n")
    return head.split(b"\r\n")[0].decode("latin-1"), payload


async def smoke(service: ServingService, reference: dict[str, bytes]) -> list[str]:
    failures: list[str] = []
    gateway = AsyncGateway(service, max_concurrency=2, max_pending=16)
    server = GatewayHTTPServer(gateway)
    host, port = await server.start()
    print(
        f"gateway up on http://{host}:{port} under chaos "
        f"(store_version={service.store_version})"
    )
    try:
        for request in build_requests(service):
            name = type(request).__name__
            status, body = await http_post(
                host, port, "/v1/query", encode_request(request)
            )
            try:
                response = decode_response(body)
            except Exception as exc:
                failures.append(f"{name}: un-decodable envelope ({exc})")
                continue
            if status != "HTTP/1.1 200 OK" or not response.ok:
                failures.append(f"{name}: {status}, error={response.error}")
                continue
            if response.payload != reference[name]:
                failures.append(f"{name}: payload diverged from healthy run")
                continue
            print(f"  ok  {name:<22} total_ms={response.timings['total_ms']:.2f}")

        status, body = await http_get(host, port, "/healthz")
        health = json.loads(body)
        if status != "HTTP/1.1 200 OK" or not health.get("healthy"):
            failures.append(f"/healthz under chaos: {status}, {health}")
        else:
            print(
                f"  ok  /healthz               live_workers={health['live_workers']} "
                f"breakers={health['breakers']}"
            )
    finally:
        await server.stop()
        gateway.close()
    return failures


def observability_counters_phase(bundle: Path) -> list[str]:
    """Drive a process-mode pool under deterministic chaos and assert the
    resilience *observability* surface moved: ``pool.retries``,
    ``pool.respawns`` and ``breaker.transitions`` must all be non-zero.

    A crash-only plan at rate 0.5 (never 1.0: the child's injection
    budget resets per respawn, so a certain-crash plan livelocks) plus a
    hair-trigger breaker makes every leg of the story fire within a few
    requests: crash -> failure recorded -> breaker opens -> supervisor
    respawns (and resets the breaker) -> retry succeeds.
    """
    failures: list[str] = []
    metrics = MetricsRegistry("chaos-observability")
    breaker = CircuitBreaker(
        "pool",
        min_volume=1,
        failure_threshold=0.01,
        open_duration_s=0.01,
        metrics=metrics,
    )
    plan = FaultPlan(
        (FaultSpec(SITE_WORKER_EXECUTE, "crash", rate=0.5),), seed=13
    )
    with armed(plan):
        with WorkerPool(
            bundle,
            mode="process",
            num_workers=1,
            metrics=metrics,
            breaker=breaker,
            retry_policy=RETRY_POLICY,
        ) as pool:
            state = pool.local_state
            entities = sorted(state.snapshot.store.entity_ids())[:8]
            answered = 0
            for seed in range(12):
                request = WalkRequest(entities=tuple(entities[:4]), seed=seed)
                try:
                    pool.run(request)
                    answered += 1
                except CircuitOpenError:
                    time.sleep(0.02)  # cooldown elapses; next call probes
                except Exception as exc:
                    failures.append(
                        f"chaos pool request {seed}: {type(exc).__name__}: {exc}"
                    )
    counters = dict(metrics.counters)
    if answered == 0:
        failures.append("chaos pool: no request ever completed")
    for counter in ("pool.retries", "pool.respawns", "breaker.transitions"):
        if counters.get(counter, 0) < 1:
            failures.append(
                f"chaos pool: expected {counter} >= 1, got {counters.get(counter, 0)} "
                f"(counters={ {k: v for k, v in sorted(counters.items())} })"
            )
    if not failures:
        print(
            f"  ok  observability counters  retries={counters['pool.retries']} "
            f"respawns={counters['pool.respawns']} "
            f"breaker_transitions={counters['breaker.transitions']} "
            f"answered={answered}/12"
        )
    return failures


def main() -> int:
    with tempfile.TemporaryDirectory(prefix="chaos-smoke-") as tmp:
        bundle = Path(tmp) / "bundle"
        kg = generate_kg(SyntheticKGConfig(seed=7, scale=SCALE))
        save_snapshot(kg.store, bundle)
        # Healthy control run first: chaos answers must match these
        # payloads (roundtripped through the wire codec, so both sides
        # compare in JSON-normalized form).
        with ServingService(bundle, mode="inline", num_shards=4) as control:
            reference = {
                type(request).__name__: decode_response(
                    encode_response(control.serve(request))
                ).payload
                for request in build_requests(control)
            }
        with armed(PLAN):
            with ServingService(
                bundle,
                mode="inline",
                num_shards=4,
                cache_capacity=1,
                retry_policy=RETRY_POLICY,
            ) as service:
                failures = asyncio.run(smoke(service, reference))
                stats = service.stats()
        if PLAN.injections() == 0:
            failures.append("fault plan injected nothing — smoke is vacuous")
        failures.extend(observability_counters_phase(bundle))
    if failures:
        print("\nFAILURES:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(
        f"\nchaos smoke: all request types survived "
        f"{PLAN.injections()} injections "
        f"(retries={stats.get('counter.pool.retries', 0.0):.0f})"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
