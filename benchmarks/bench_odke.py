"""F5/F6 — Figures 5-6 "Open Domain Knowledge Extraction".

Paper claims: targeted extraction recovers missing facts from the web, and
the *trained* corroboration model resolves conflicting candidates (the
Michelle Williams birth-date confusion) far better than naive support
counting.  Rows report per-stage volumes, precision/recall of recovered
facts per corroboration strategy, and the ambiguous-namesake case
resolution rate.
"""

import pytest

from benchmarks.conftest import DOB, record_result
from repro.annotation.pipeline import make_pipeline
from repro.odke.corroboration import train_corroboration_model
from repro.odke.gaps import ExtractionTarget
from repro.odke.pipeline import ODKEConfig, ODKEPipeline, build_training_examples


@pytest.fixture(scope="module")
def odke_setup(bench_kg, bench_deployed, bench_search):
    deployed, held_out, truth = bench_deployed
    annotation = make_pipeline(deployed, tier="full")
    targets = [
        ExtractionTarget(entity=entity, predicate=predicate, priority=1.0)
        for (entity, predicate) in sorted(truth)
    ]
    train_targets, eval_targets = targets[::2], targets[1::2]
    base = ODKEPipeline(
        deployed, bench_kg.ontology, bench_search, annotation,
        config=ODKEConfig(use_trained_model=False), now=bench_kg.now,
    )
    examples = build_training_examples(base, train_targets, truth)
    model = train_corroboration_model(examples)
    return deployed, annotation, truth, eval_targets, model


@pytest.mark.parametrize("strategy", ["trained-model", "majority-vote"])
def test_odke_corroboration(benchmark, bench_kg, bench_search, odke_setup, strategy):
    deployed, annotation, truth, eval_targets, model = odke_setup
    if strategy == "trained-model":
        pipeline = ODKEPipeline(
            deployed, bench_kg.ontology, bench_search, annotation,
            corroboration_model=model, now=bench_kg.now,
        )
    else:
        pipeline = ODKEPipeline(
            deployed, bench_kg.ontology, bench_search, annotation,
            config=ODKEConfig(use_trained_model=False), now=bench_kg.now,
        )

    report_holder = {}

    def run():
        report_holder["report"] = pipeline.run(eval_targets, fuse=False)

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = report_holder["report"]
    correct = sum(
        1 for key, (value, _p) in report.accepted_values.items()
        if truth.get(key, "").lower() == value.lower()
    )
    precision = correct / report.accepted if report.accepted else 0.0
    recall = correct / len(eval_targets) if eval_targets else 0.0
    row = {
        "strategy": strategy,
        "targets": len(eval_targets),
        "queries": report.queries_issued,
        "docs_retrieved": report.docs_retrieved,
        "candidates": report.candidates_extracted,
        "accepted": report.accepted,
        "precision": round(precision, 3),
        "recall": round(recall, 3),
    }
    benchmark.extra_info.update(row)
    record_result("F5-odke", row)


def test_namesake_dob_disambiguation(benchmark, bench_kg, bench_search, odke_setup):
    """The Figure 6 worked example: for people sharing a name, blogs carry
    the namesake's birth date; the trained model must still pick the right
    one (or abstain) rather than fuse the confusion."""
    deployed, annotation, truth, _eval_targets, model = odke_setup
    ambiguous_targets = []
    for _name, members in bench_kg.truth.ambiguous_names.items():
        for entity in members:
            if (entity, DOB) in truth:
                ambiguous_targets.append(
                    ExtractionTarget(entity=entity, predicate=DOB, priority=1.0)
                )
    if not ambiguous_targets:
        pytest.skip("no ambiguous entities among held-out facts")

    pipeline = ODKEPipeline(
        deployed, bench_kg.ontology, bench_search, annotation,
        corroboration_model=model, now=bench_kg.now,
    )

    report_holder = {}

    def run():
        report_holder["report"] = pipeline.run(ambiguous_targets, fuse=False)

    benchmark.pedantic(run, rounds=1, iterations=1)
    report = report_holder["report"]
    wrong = sum(
        1 for key, (value, _p) in report.accepted_values.items()
        if truth.get(key, "").lower() not in ("", value.lower())
    )
    row = {
        "ambiguous_targets": len(ambiguous_targets),
        "accepted": report.accepted,
        "wrong_fusions": wrong,
    }
    benchmark.extra_info.update(row)
    record_result("F6-namesake", row)
