"""F3 — Figure 3 "Embedding Training" (view filtering + disk-based scale).

Paper claims:
* the graph engine's *view filtering* (drop numeric/identifier facts and
  rare predicates) yields cleaner training data (§2);
* *disk-based partitioned training* handles graphs larger than memory —
  its I/O and resident footprint are governed by partition count and
  buffer capacity (§2, Marius/PBG style).

Rows report link-prediction MRR with/without filtering and the throughput /
I/O / peak-residency trade-off across partition configurations.
"""

import pytest

from benchmarks.conftest import record_result
from repro.embeddings.pipeline import EmbeddingPipelineConfig, run_embedding_pipeline
from repro.embeddings.trainer import TrainConfig
from repro.kg.views import ViewDefinition, embedding_training_view

VIEWS = {
    "filtered-view": embedding_training_view(min_predicate_frequency=5),
    "unfiltered": ViewDefinition(name="unfiltered"),
}


def _noise_separation_auc(bench_kg, trained):
    """AUC separating true occupation facts from the generator's planted
    noise edges — what §2's view filtering is supposed to protect."""
    import numpy as np

    from repro.embeddings.evaluation import _auc

    noise_triples = []
    true_triples = []
    for fact in bench_kg.truth.noise_facts:
        if trained.has_entity(fact.subject) and trained.has_entity(fact.obj):
            try:
                noise_triples.append(trained.dataset.encode(*fact.key))
            except Exception:
                continue
    for person, order in bench_kg.truth.occupation_order.items():
        if trained.has_entity(person) and trained.has_entity(order[0]):
            try:
                true_triples.append(
                    trained.dataset.encode(person, "predicate:occupation", order[0])
                )
            except Exception:
                continue
    if not noise_triples or not true_triples:
        return 0.5
    pos = trained.model.score_triples(np.array(true_triples))
    neg = trained.model.score_triples(np.array(noise_triples))
    return _auc(pos, neg)


@pytest.mark.parametrize("view_name", list(VIEWS))
def test_view_filtering_ablation(benchmark, bench_kg, view_name):
    config = EmbeddingPipelineConfig(
        train=TrainConfig(model="complex", dim=32, epochs=12, seed=1),
        view=VIEWS[view_name],
        eval_max_queries=100,
    )

    result_holder = {}

    def train():
        result_holder["result"] = run_embedding_pipeline(bench_kg.store, config)

    benchmark.pedantic(train, rounds=1, iterations=1)
    result = result_holder["result"]
    noise_auc = _noise_separation_auc(bench_kg, result.trained)
    benchmark.extra_info["mrr"] = result.evaluation.mrr
    benchmark.extra_info["noise_auc"] = noise_auc
    record_result(
        "F3-filtering",
        {
            "view": view_name,
            "mrr": round(result.evaluation.mrr, 4),
            "hits_at_10": round(result.evaluation.hits_at_10, 4),
            "noise_fact_auc": round(noise_auc, 3),
            "train_triples": len(result.dataset),
            "selectivity": round(result.view.selectivity, 3) if result.view else 1.0,
        },
    )


PARTITION_CONFIGS = [
    ("in-memory", None, None),
    ("disk-p4-b2", 4, 2),
    ("disk-p8-b2", 8, 2),
    ("disk-p8-b4", 8, 4),
]


@pytest.mark.parametrize("name,partitions,buffer_capacity", PARTITION_CONFIGS)
def test_disk_training_scaling(
    benchmark, bench_kg, tmp_path, name, partitions, buffer_capacity
):
    config = EmbeddingPipelineConfig(
        train=TrainConfig(model="distmult", dim=32, epochs=5, seed=1),
        view=embedding_training_view(min_predicate_frequency=5),
        use_disk_trainer=partitions is not None,
        num_partitions=partitions or 1,
        buffer_capacity=buffer_capacity or 2,
        eval_max_queries=100,
    )
    result_holder = {}

    def train():
        result_holder["result"] = run_embedding_pipeline(
            bench_kg.store, config, workdir=tmp_path / name
        )

    benchmark.pedantic(train, rounds=1, iterations=1)
    result = result_holder["result"]
    stats = result.disk_stats
    throughput = (
        result.trained.history[-1].triples_per_second if result.trained.history else 0
    )
    row = {
        "config": name,
        "mrr": round(result.evaluation.mrr, 4),
        "triples_per_s": int(throughput),
        "bucket_loads": stats.bucket_loads if stats else 0,
        "peak_resident_buckets": stats.peak_resident_buckets if stats else "all",
        "peak_resident_mb": round(stats.peak_resident_bytes / 1e6, 3) if stats else None,
    }
    benchmark.extra_info.update(row)
    record_result("F3-disk", row)
