"""F-gateway — the asyncio/HTTP front door vs the direct in-process facade.

The gateway buys admission control, deadlines and a network surface; this
bench pins what those cost.  Three transports answer the same walk-query
stream (entities, seed, shard layout all identical):

* **facade** — direct ``ServingService.serve`` calls (the PR-4 path);
* **gateway** — ``AsyncGateway.serve_stream`` (executor bridge +
  semaphore admission, no network);
* **http** — full wire round-trips through ``GatewayHTTPServer``
  (encode → TCP → decode, one connection per request).

Parity is unconditional at every scale: every transport's payloads must
equal the facade's byte-for-byte.  The floors bound the overhead (the
gateway must stay within ~2x of the facade; HTTP within 10x), and a
streaming-annotation row records the cross-transport text path.
"""

import asyncio
import time

import pytest

from benchmarks.conftest import check_floor, record_result
from repro.kg.persistence import save_snapshot
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import decode_response, encode_request
from repro.serving.requests import AnnotateRequest, WalkRequest
from repro.serving.service import ServingService

WALK_QUERY_ENTITIES = 8
WALK_QUERIES = 60
ANNOTATE_DOCS = 40
GATEWAY_CONCURRENCY = 4


def min_time(fn, repeats=3):
    best = float("inf")
    result = None
    for _ in range(repeats):
        start = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - start)
    return best, result


@pytest.fixture(scope="module")
def bundle_dir(bench_kg, tmp_path_factory):
    directory = tmp_path_factory.mktemp("gateway-bundle")
    save_snapshot(bench_kg.store, directory)
    return directory


@pytest.fixture(scope="module")
def walk_requests(bench_kg):
    entities = sorted(bench_kg.store.entity_ids())
    return [
        WalkRequest(
            entities=tuple(
                entities[(index * WALK_QUERY_ENTITIES + offset) % len(entities)]
                for offset in range(WALK_QUERY_ENTITIES)
            ),
            seed=17,
        )
        for index in range(WALK_QUERIES)
    ]


def test_gateway_walk_throughput(benchmark, bundle_dir, walk_requests):
    """Walk queries/s: facade vs async gateway vs HTTP wire round-trips."""
    with ServingService(bundle_dir, mode="inline", num_shards=4) as svc:
        reference = [svc.serve(request).payload for request in walk_requests]

        def facade_run():
            svc._cache.clear()
            return [svc.serve(request).payload for request in walk_requests]

        facade_time, facade_payloads = min_time(facade_run)
        assert facade_payloads == reference

        gateway = AsyncGateway(
            svc, max_concurrency=GATEWAY_CONCURRENCY, max_pending=4 * WALK_QUERIES
        )

        async def stream_all():
            return [r async for r in gateway.serve_stream(walk_requests)]

        def gateway_run():
            svc._cache.clear()
            return asyncio.run(stream_all())

        gateway_time, gateway_responses = min_time(gateway_run)
        assert [r.payload for r in gateway_responses] == reference
        assert all(r.ok for r in gateway_responses)
        gateway.close()

        async def http_all():
            http_gateway = AsyncGateway(
                svc, max_concurrency=GATEWAY_CONCURRENCY, max_pending=4 * WALK_QUERIES
            )
            server = GatewayHTTPServer(http_gateway)
            host, port = await server.start()
            bodies = []
            try:
                for request in walk_requests:
                    payload = encode_request(request)
                    reader, writer = await asyncio.open_connection(host, port)
                    writer.write(
                        (
                            f"POST /v1/query HTTP/1.1\r\nHost: b\r\n"
                            f"Content-Length: {len(payload)}\r\n\r\n"
                        ).encode()
                        + payload
                    )
                    await writer.drain()
                    raw = await reader.read()
                    writer.close()
                    bodies.append(raw.partition(b"\r\n\r\n")[2])
            finally:
                await server.stop()
                http_gateway.close()
            return bodies

        def http_run():
            svc._cache.clear()
            return asyncio.run(http_all())

        http_time, http_bodies = min_time(http_run, repeats=2)
        assert [decode_response(body).payload for body in http_bodies] == reference

    facade_qps = WALK_QUERIES / facade_time
    gateway_qps = WALK_QUERIES / gateway_time
    http_qps = WALK_QUERIES / http_time
    benchmark.extra_info["facade_qps"] = facade_qps
    benchmark.extra_info["gateway_qps"] = gateway_qps
    benchmark.extra_info["http_qps"] = http_qps
    benchmark(lambda: None)
    record_result(
        "F-gateway",
        {
            "op": "walk_queries",
            "mode": "facade",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(facade_qps, 1),
        },
    )
    record_result(
        "F-gateway",
        {
            "op": "walk_queries",
            "mode": "gateway",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(gateway_qps, 1),
            "overhead_vs_facade": round(facade_qps / gateway_qps, 2),
        },
    )
    record_result(
        "F-gateway",
        {
            "op": "walk_queries",
            "mode": "http",
            "entities_per_query": WALK_QUERY_ENTITIES,
            "queries_per_s": round(http_qps, 1),
            "overhead_vs_facade": round(facade_qps / http_qps, 2),
        },
    )
    check_floor(
        gateway_qps >= 0.5 * facade_qps,
        f"async gateway {facade_qps / gateway_qps:.2f}x slower than facade (> 2x)",
    )
    check_floor(
        http_qps >= 0.1 * facade_qps,
        f"HTTP wire path {facade_qps / http_qps:.2f}x slower than facade (> 10x)",
    )


def test_gateway_annotation_stream(benchmark, bundle_dir, bench_corpus):
    """Docs/s: facade annotate_many vs per-text requests streamed async."""
    texts = [doc.full_text for doc in bench_corpus][:ANNOTATE_DOCS]
    with ServingService(bundle_dir, mode="inline") as svc:
        reference = svc.annotate_many(texts)
        signature = [
            [(link.mention.start, link.mention.end, link.entity) for link in links]
            for links in reference
        ]

        def facade_run():
            svc._cache.clear()
            return svc.annotate_many(texts)

        facade_time, facade_links = min_time(facade_run, repeats=2)

        gateway = AsyncGateway(
            svc, max_concurrency=GATEWAY_CONCURRENCY, max_pending=4 * ANNOTATE_DOCS
        )
        requests = [AnnotateRequest(texts=(text,)) for text in texts]

        async def stream_all():
            return [r async for r in gateway.serve_stream(requests)]

        def gateway_run():
            svc._cache.clear()
            return asyncio.run(stream_all())

        gateway_time, responses = min_time(gateway_run, repeats=2)
        gateway.close()

    assert [
        [(link.mention.start, link.mention.end, link.entity) for link in links]
        for links in facade_links
    ] == signature
    assert [
        [(link.mention.start, link.mention.end, link.entity) for link in r.payload[0]]
        for r in responses
    ] == signature

    facade_rate = len(texts) / facade_time
    gateway_rate = len(texts) / gateway_time
    benchmark.extra_info["facade_docs_per_s"] = facade_rate
    benchmark.extra_info["gateway_docs_per_s"] = gateway_rate
    benchmark(lambda: None)
    record_result(
        "F-gateway",
        {
            "op": "annotate_stream",
            "mode": "facade",
            "docs": len(texts),
            "docs_per_s": round(facade_rate, 1),
        },
    )
    record_result(
        "F-gateway",
        {
            "op": "annotate_stream",
            "mode": "gateway",
            "docs": len(texts),
            "docs_per_s": round(gateway_rate, 1),
            "overhead_vs_facade": round(facade_rate / gateway_rate, 2),
        },
    )
    check_floor(
        gateway_rate >= 0.25 * facade_rate,
        f"gateway per-text stream {facade_rate / gateway_rate:.2f}x slower "
        f"than batched facade (> 4x)",
    )
