"""Link the Web (§3.1): annotate a crawl, handle churn incrementally.

Builds a synthetic web corpus from the KG, annotates every page with
entity links (extending the KG with doc↔entity edges), then simulates two
crawl cycles and shows that only changed pages are re-processed.

Run:  python examples/link_the_web.py
"""

from repro.annotation.evaluation import evaluate_annotations
from repro.annotation.pipeline import make_pipeline
from repro.annotation.web_annotator import WebAnnotator
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.web.corpus import WebCorpusConfig, generate_corpus
from repro.web.crawl import CrawlSimulator


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(seed=7, scale=0.5))
    corpus = generate_corpus(kg, WebCorpusConfig(seed=11))
    print(f"Crawl snapshot: {len(corpus)} pages")

    pipeline = make_pipeline(kg.store, tier="full")
    annotator = WebAnnotator(pipeline, num_shards=4)

    report = annotator.annotate_corpus(corpus)
    print(f"Full pass: {report.docs_processed} docs, "
          f"{report.links_produced} entity links, "
          f"{report.docs_per_second:.0f} docs/s")

    predictions = {d: a.links for d, a in annotator.store.documents.items()}
    quality = evaluate_annotations(
        predictions, corpus.documents, kg.truth.ambiguous_names
    )
    print(f"Quality vs gold: P={quality.precision:.3f} R={quality.recall:.3f} "
          f"F1={quality.f1:.3f} | namesake disambiguation "
          f"{quality.disambiguation_accuracy:.3f}")

    # The web changes; re-annotation touches only the delta.
    simulator = CrawlSimulator(kg, corpus, change_fraction=0.08, new_fraction=0.02, seed=3)
    for cycle in range(1, 3):
        snapshot, delta = simulator.step()
        report = annotator.annotate_corpus(snapshot)
        print(f"Crawl cycle {cycle}: {delta.total} pages changed/new → "
              f"processed {report.docs_processed}, "
              f"skipped {report.docs_skipped_unchanged} unchanged")

    # The annotated web is queryable in both directions.
    popular = max(kg.store.entities(), key=lambda r: r.popularity)
    docs = annotator.store.docs_mentioning(popular.entity)
    print(f"\n'{popular.name}' is mentioned in {len(docs)} pages, e.g.:")
    for doc_id in sorted(docs)[:3]:
        print(f"  {doc_id}: {corpus.get(doc_id).title if corpus.get(doc_id) else '(new page)'}")


if __name__ == "__main__":
    main()
