"""Quickstart: generate a KG, train embeddings, use every Figure 2 service.

Run:  python examples/quickstart.py
"""

from repro.common import ids
from repro.core import KnowledgePlatform
from repro.embeddings.trainer import TrainConfig


def main() -> None:
    # 1. A synthetic open-domain KG (stands in for the production KG).
    platform, kg = KnowledgePlatform.from_synthetic(scale=0.5, seed=7)
    stats = platform.store.stats()
    print(f"KG: {stats.num_entities} entities, {stats.num_facts} facts, "
          f"{stats.num_predicates} predicates")

    # 2. Train KG embeddings through the §2 pipeline (filtered view → model).
    result = platform.train_embeddings(
        TrainConfig(model="complex", dim=32, epochs=20, seed=1)
    )
    print(f"Embeddings: MRR={result.evaluation.mrr:.3f} "
          f"Hits@10={result.evaluation.hits_at_10:.3f} "
          f"(view kept {result.view.facts_kept}/{result.view.facts_in} facts)")

    # 3. Fact ranking: order a person's occupations by importance.
    person = next(
        p for p, order in kg.truth.occupation_order.items() if len(order) >= 2
    )
    name = kg.store.entity(person).name
    ranked = platform.fact_ranker().rank(person, ids.predicate_id("occupation"))
    print(f"\nFact ranking — occupations of {name}:")
    for position, item in enumerate(ranked, 1):
        print(f"  {position}. {kg.store.entity(item.obj).name}  (score={item.score:.2f})")

    # 4. Fact verification: is a candidate fact plausible?
    verifier = platform.fact_verifier()
    true_occ = kg.truth.occupation_order[person][0]
    verdict = verifier.verify(person, ids.predicate_id("occupation"), true_occ)
    print(f"\nFact verification — <{name}, occupation, "
          f"{kg.store.entity(true_occ).name}>: "
          f"{'plausible' if verdict.plausible else 'implausible'} "
          f"(margin={verdict.margin:+.2f})")

    # 5. Related entities via traversal-specialized embeddings.
    related = platform.related_entities("traversal").related(person, k=5)
    print(f"\nRelated to {name}:")
    for item in related:
        print(f"  {kg.store.entity(item.entity).name}  (score={item.score:.2f})")

    # 6. Semantic annotation of a query.
    links = platform.annotator("full").annotate(f"{name} stats this season")
    print("\nAnnotation of the query:")
    for link in links:
        print(f"  '{link.mention.surface}' → {kg.store.entity(link.entity).name} "
              f"[{link.entity_type}]")


if __name__ == "__main__":
    main()
