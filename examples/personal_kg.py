"""On-device personal knowledge (§5, Figure 7).

Builds a personal KG from contacts/messages/calendar with the pausable
incremental pipeline, disambiguates "Tim" by interaction context, syncs a
device fleet with per-source preferences, offloads construction from a
watch, and enriches with global knowledge under privacy accounting.

Run:  python examples/personal_kg.py
"""

from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.store import TripleStore
from repro.ondevice import (
    CALENDAR,
    CONTACTS,
    MESSAGES,
    Device,
    DeviceProfile,
    EnrichmentPlanner,
    EnrichmentPlannerConfig,
    GlobalKnowledgeServer,
    IncrementalPipeline,
    PersonaWorldConfig,
    PersonalAnnotator,
    SyncCoordinator,
    evaluate_clusters,
    generate_device_dataset,
    generate_personas,
    offload_construction,
)


def main() -> None:
    config = PersonaWorldConfig(seed=21, num_personas=30, namesake_pairs=3)
    personas = generate_personas(config)
    dataset = generate_device_dataset("phone", personas, config)
    records = dataset.all_records()
    print(f"Device sources: {len(dataset.records[CONTACTS])} contacts, "
          f"{len(dataset.records[MESSAGES])} messages, "
          f"{len(dataset.records[CALENDAR])} calendar events")

    # Incremental construction: pause mid-way, checkpoint, resume.
    pipeline = IncrementalPipeline(records)
    pipeline.step(100)
    checkpoint = pipeline.checkpoint()
    print(f"Paused in phase '{checkpoint['phase']}' "
          f"after {pipeline.total_units} work units — state checkpointed")
    resumed = IncrementalPipeline.from_checkpoint(checkpoint)
    result = resumed.run_to_completion(256)
    quality = evaluate_clusters(result.clusters)
    print(f"Resumed to completion: {quality.num_clusters} persons from "
          f"{len(records)} records (pairwise F1={quality.f1:.3f})")

    # Contextual relevance: which Tim?
    annotator = PersonalAnnotator(result.store, result.people, result.clusters)
    utterance = "message Tim that I've added comments to the SIGMOD draft"
    links = annotator.annotate(utterance)
    if links:
        top = links[0]
        print(f"\n'{utterance}'")
        print(f"  → {result.store.entity(top.entity).name} "
              f"(context score {top.candidates[0].context_similarity:.2f}; "
              f"{len(top.candidates)} candidates considered)")

    # Cross-device sync with per-source preferences.
    phone = Device("phone", DeviceProfile.named("phone"),
                   records={CONTACTS: dataset.records[CONTACTS],
                            MESSAGES: dataset.records[MESSAGES]})
    laptop = Device("laptop", DeviceProfile.named("laptop"),
                    records={CONTACTS: [], CALENDAR: dataset.records[CALENDAR]})
    laptop.sync_preferences[MESSAGES] = False  # user keeps messages off laptop
    coordinator = SyncCoordinator([phone, laptop])
    reports = coordinator.sync_until_stable()
    print(f"\nSync converged in {len(reports)} rounds "
          f"({sum(r.bytes_moved for r in reports)} bytes); "
          f"contacts consistent: {coordinator.consistency_check(CONTACTS)}; "
          f"laptop holds messages: {bool(laptop.records.get(MESSAGES))}")

    # A watch can't run matching — offload to the laptop.
    watch = Device("watch", DeviceProfile.named("watch"),
                   records={MESSAGES: dataset.records[MESSAGES][:30]})
    offloaded, bytes_moved = offload_construction(watch, laptop)
    print(f"Watch offloaded construction to laptop: {len(offloaded.people)} "
          f"persons, {bytes_moved} bytes shipped")

    # Global knowledge enrichment with privacy accounting.
    global_kg = generate_kg(SyntheticKGConfig(seed=7, scale=0.3))
    server = GlobalKnowledgeServer(global_kg.store)
    needed = [r.entity for r in sorted(
        global_kg.store.entities(), key=lambda r: -r.popularity)[:30]]
    planner = EnrichmentPlanner(server, EnrichmentPlannerConfig(
        static_asset_top_k=60, pir_budget_bytes=2_000_000))
    report = planner.enrich(needed, interaction_entities=set(needed[5:10]),
                            device_store=TripleStore("device-global"))
    print(f"\nGlobal enrichment: {report.coverage:.0%} coverage — "
          f"static {report.covered_static}, piggyback {report.covered_piggyback}, "
          f"PIR {report.covered_pir}; "
          f"entities revealed to server: {len(report.revealed_entities)}")


if __name__ == "__main__":
    main()
