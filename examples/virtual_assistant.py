"""A virtual assistant over the serving gateway (the Figure 2 scenario,
at production shape).

The paper's flagship example: an assistant that answers over **both** the
big shared knowledge graph and the user's small personal one — contacts,
calendar entries — without the personal facts ever entering the shared
graph.  Everything here goes through the real HTTP front door:

1. boot the gateway over a shared-graph bundle with tenancy enabled;
2. create a tenant and sync personal records from two devices
   (last-writer-wins, DP-noised counts in the telemetry);
3. ask fused questions — personal neighbors at hop 1, shared knowledge
   reachable *through* a personal link at hop 2;
4. delete a contact (right to be forgotten) and watch the answer change;
5. verify the shared graph never saw any of it.

Run:  PYTHONPATH=src python examples/virtual_assistant.py
"""

from __future__ import annotations

import asyncio
import tempfile
from pathlib import Path

from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.persistence import save_snapshot
from repro.serving.gateway import AsyncGateway, GatewayHTTPServer
from repro.serving.protocol import decode_response, encode_request
from repro.serving.requests import (
    NeighborhoodRequest,
    PersonalRecord,
    TenantDeleteRequest,
    TenantSyncRequest,
)
from repro.serving.service import ServingService

TENANT = "demo-user"


class AssistantClient:
    """A thin HTTP client: one tenant's assistant talking to the gateway."""

    def __init__(self, host: str, port: int, tenant: str) -> None:
        self.host = host
        self.port = port
        self.tenant = tenant

    async def _post(self, body: bytes) -> bytes:
        reader, writer = await asyncio.open_connection(self.host, self.port)
        writer.write(
            (
                "POST /v1/query HTTP/1.1\r\nHost: assistant\r\n"
                f"Content-Length: {len(body)}\r\n\r\n"
            ).encode()
            + body
        )
        await writer.drain()
        raw = await reader.read()
        writer.close()
        _head, _, payload = raw.partition(b"\r\n\r\n")
        return payload

    async def ask(self, request, *, personal: bool = True):
        tenant = self.tenant if personal else None
        response = decode_response(
            await self._post(encode_request(request, tenant=tenant))
        )
        if not response.ok:
            raise RuntimeError(f"{type(request).__name__} failed: {response.error}")
        return response.payload

    async def sync(self, records: tuple[PersonalRecord, ...]):
        """One device->server sync round; returns the server's payload."""
        return await self.ask(TenantSyncRequest(records=records, epsilon=1.0))

    async def forget(self, source: str, record_id: str, sequence: int):
        return await self.ask(
            TenantDeleteRequest(source=source, record_id=record_id, sequence=sequence)
        )


def contact(record_id: str, name: str, linked_entity: str, seq: int = 1):
    first, _, last = name.partition(" ")
    return PersonalRecord(
        record_id=record_id,
        source="contacts",
        fields=(
            ("first_name", first),
            ("last_name", last or "…"),
            ("linked_entity", linked_entity),
        ),
        sequence=seq,
    )


async def run(bundle: Path, tenants_dir: Path) -> None:
    kg = generate_kg(SyntheticKGConfig(seed=7, scale=0.2))
    save_snapshot(kg.store, bundle, embeddings=False)
    service = ServingService(
        bundle, mode="inline", num_shards=2, tenants_dir=tenants_dir
    )
    gateway = AsyncGateway(service, max_concurrency=4, max_pending=64)
    server = GatewayHTTPServer(gateway)
    host, port = await server.start()
    print(f"gateway up on http://{host}:{port} (store_version={service.store_version})\n")

    # Two public figures from the shared graph become personal contacts.
    celebs = sorted(kg.store.entity_ids())[:2]
    names = {e: kg.store.entity(e).name for e in celebs}
    assistant = AssistantClient(host, port, TENANT)

    # -- sync personal records from the user's phone ---------------------
    phone = (
        contact("c-anna", f"Anna {names[celebs[0]].split()[-1]}", celebs[0]),
        contact("c-ben", "Ben Meyer", celebs[1]),
    )
    payload = await assistant.sync(phone)
    people = {p["name"]: p["entity"] for p in payload["people"]}
    print(f"phone synced {len(phone)} contacts -> tenant v{payload['tenant_version']}")
    print(f"  fused people: {sorted(people)}")
    print(f"  DP-noised record count (telemetry): {payload['dp_record_count']:.1f}")

    # A second device syncs later and learns everything the phone knew.
    laptop = await assistant.sync(())
    print(f"laptop joined: received {len(laptop['records'])} records from the server\n")

    # -- fused answers: personal links at hop 1 --------------------------
    anna_name = next(n for n in people if n.startswith("Anna"))
    anna = people[anna_name]
    hood = await assistant.ask(NeighborhoodRequest(entities=(anna,), hops=1))
    assert celebs[0] in hood[0], "personal link missing from fused answer"
    print(f"Q: Who is {anna_name} connected to?")
    print(f"A: {names[celebs[0]]} (via the contacts link) — {len(hood[0])} facts\n")

    # ... and shared knowledge reachable *through* that link at hop 2.
    hood2 = await assistant.ask(NeighborhoodRequest(entities=(anna,), hops=2))
    shared_reached = [n for n in hood2[0] if n in kg.store.entity_ids() and n != celebs[0]]
    assert shared_reached, "hop 2 never reached the shared graph"
    print("Q: What does the shared graph know about Anna's circle?")
    print(
        f"A: {len(shared_reached)} shared entities reachable through one "
        f"personal link, e.g. {kg.store.entity(shared_reached[0]).name}\n"
    )

    # -- right to be forgotten -------------------------------------------
    await assistant.forget("contacts", "c-ben", sequence=2)
    after = await assistant.sync(())
    assert all(r["record_id"] != "c-ben" for r in after["records"])
    assert ["contacts", "c-ben", 2] in after["tombstones"]
    print("'Ben Meyer' deleted: the record is gone and every device will learn it")

    # -- and the shared graph saw none of it -----------------------------
    shared = await assistant.ask(
        NeighborhoodRequest(entities=(anna,), hops=1), personal=False
    )
    assert shared[0] == [], "personal person leaked into the shared graph"
    print("shared graph asked about Anna: knows nothing — personal facts stay personal")

    await server.stop()
    gateway.close()
    service.close()


def main() -> None:
    with tempfile.TemporaryDirectory(prefix="assistant-") as tmp:
        asyncio.run(run(Path(tmp) / "bundle", Path(tmp) / "tenants"))


if __name__ == "__main__":
    main()
