"""A toy virtual assistant over the platform (the Figure 2 scenarios).

Answers the four query shapes the paper motivates — fact questions with
ranking, fact checks, related-entity suggestions, and ambiguous-name
queries — by composing the platform's services.

Run:  python examples/virtual_assistant.py
"""

from repro.common import ids
from repro.core import KnowledgePlatform
from repro.embeddings.trainer import TrainConfig


class Assistant:
    """Minimal query router over platform services."""

    def __init__(self, platform: KnowledgePlatform) -> None:
        self.platform = platform
        self.store = platform.store
        self.ranker = platform.fact_ranker()
        self.verifier = platform.fact_verifier()
        self.related = platform.related_entities("traversal")
        self.annotator = platform.annotator("full")

    def _link(self, text: str) -> str | None:
        links = self.annotator.annotate(text)
        return links[0].entity if links else None

    def occupation_of(self, query: str) -> str:
        entity = self._link(query)
        if entity is None:
            return "I don't know who that is."
        ranked = self.ranker.rank(entity, ids.predicate_id("occupation"))
        if not ranked:
            return "No occupation on record."
        names = [self.store.entity(r.obj).name for r in ranked]
        primary, *rest = names
        answer = f"{self.store.entity(entity).name} is primarily a {primary}"
        if rest:
            answer += f" (also: {', '.join(rest)})"
        return answer + "."

    def check_fact(self, query: str, occupation_name: str) -> str:
        entity = self._link(query)
        if entity is None:
            return "I don't know who that is."
        occupation = next(
            (r.entity for r in self.store.entities()
             if r.name == occupation_name and "type:occupation" in r.types),
            None,
        )
        if occupation is None:
            return f"I don't know the occupation '{occupation_name}'."
        verdict = self.verifier.verify(
            entity, ids.predicate_id("occupation"), occupation
        )
        return ("Correct." if verdict.plausible else "That looks wrong.") + (
            f" (margin {verdict.margin:+.2f})"
        )

    def similar_to(self, query: str) -> str:
        entity = self._link(query)
        if entity is None:
            return "I don't know who that is."
        suggestions = self.related.related(entity, k=3)
        names = [self.store.entity(s.entity).name for s in suggestions]
        return f"People also look at: {', '.join(names)}." if names else "Nobody similar."


def main() -> None:
    platform, kg = KnowledgePlatform.from_synthetic(scale=0.5, seed=7)
    platform.train_embeddings(TrainConfig(model="complex", dim=32, epochs=20, seed=1))
    assistant = Assistant(platform)

    # Pick a multi-occupation celebrity and an ambiguous name from the world.
    person = max(
        (p for p, order in kg.truth.occupation_order.items() if len(order) >= 2),
        key=lambda p: kg.store.entity(p).popularity,
    )
    name = kg.store.entity(person).name
    ambiguous_name, members = next(iter(kg.truth.ambiguous_names.items()))

    print(f"Q: What is the occupation of {name}?")
    print("A:", assistant.occupation_of(f"{name} occupation"))

    true_occ = kg.store.entity(kg.truth.occupation_order[person][0]).name
    print(f"\nQ: Is {name} a {true_occ}?")
    print("A:", assistant.check_fact(f"{name}", true_occ))

    print(f"\nQ: Who is similar to {name}?")
    print("A:", assistant.similar_to(f"{name} news"))

    # Ambiguity: same surface, different contexts (the Michael Jordan case).
    contexts = {
        members[0]: "game stats points team",
        members[1]: "research students university lecture",
    }
    print(f"\nThe name '{ambiguous_name}' is shared by {len(members)} entities:")
    for entity, context in contexts.items():
        links = assistant.annotator.annotate(f"{ambiguous_name} {context}")
        resolved = links[0].entity if links else None
        label = kg.store.entity(resolved).description if resolved else "(no link)"
        print(f"  '{ambiguous_name} {context.split()[0]} …' → {label}")


if __name__ == "__main__":
    main()
