"""Growing the KG with ODKE (§4, Figures 5-6).

Creates coverage gaps (held-out birth facts), detects them via profiling +
query logs, synthesizes search queries, extracts candidates with all three
extractor tiers, corroborates with a trained evidence model, and fuses the
winners back — then verifies against ground truth, including the
namesake-confusion case of Figure 6.

Run:  python examples/odke_growth.py
"""

from repro.annotation.pipeline import make_pipeline
from repro.common import ids
from repro.kg.generator import SyntheticKGConfig, generate_kg, hold_out_facts
from repro.kg.query_logs import QueryLogAnalyzer, synthesize_query_log
from repro.odke.corroboration import train_corroboration_model
from repro.odke.gaps import GapDetector
from repro.odke.pipeline import ODKEConfig, ODKEPipeline, build_training_examples
from repro.web.corpus import WebCorpusConfig, generate_corpus
from repro.web.search import BM25SearchEngine

DOB = ids.predicate_id("date_of_birth")
POB = ids.predicate_id("place_of_birth")


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(seed=7, scale=0.5))
    corpus = generate_corpus(kg, WebCorpusConfig(seed=11))
    search = BM25SearchEngine(corpus)

    deployed, held_out = hold_out_facts(kg, fraction=0.25, seed=13)
    print(f"Deployed KG is missing {len(held_out)} facts the full world has")

    # Gap detection: reactive (query log) + proactive (profiling).
    log = synthesize_query_log(deployed, [DOB, POB], 2000, now=kg.now, seed=3)
    print(f"Query answer rate before ODKE: {QueryLogAnalyzer(log).answer_rate():.3f}")
    detector = GapDetector(deployed, kg.ontology, now=kg.now, query_log=log)
    targets = [
        t for t in detector.all_targets(include_stale=False)
        if t.predicate in (DOB, POB)
    ]
    print(f"Gap detector produced {len(targets)} extraction targets "
          f"({sum(1 for t in targets if 'reactive' in t.origin)} seen in query logs)")

    # Ground truth for training/eval of the corroboration model.
    truth = {}
    for fact in held_out:
        truth[(fact.subject, fact.predicate)] = (
            fact.obj if fact.predicate == DOB else kg.store.entity(fact.obj).name
        )
    train_targets, eval_targets = targets[::2], targets[1::2]

    annotation = make_pipeline(deployed, tier="full")
    base = ODKEPipeline(deployed, kg.ontology, search, annotation,
                        config=ODKEConfig(use_trained_model=False), now=kg.now)
    examples = build_training_examples(base, train_targets, truth)
    model = train_corroboration_model(examples)
    importance = sorted(model.feature_importance().items(), key=lambda x: -x[1])
    print("Corroboration model trained; top evidence signals:",
          ", ".join(f"{k}={v:.2f}" for k, v in importance[:3]))

    pipeline = ODKEPipeline(deployed, kg.ontology, search, annotation,
                            corroboration_model=model, now=kg.now)
    report = pipeline.run(eval_targets, fuse=True)
    correct = sum(
        1 for key, (value, _p) in report.accepted_values.items()
        if truth.get(key, "").lower() == value.lower()
    )
    print(f"\nODKE run: {report.queries_issued} queries → "
          f"{report.docs_retrieved} docs → {report.candidates_extracted} candidates "
          f"→ {report.accepted} accepted → {report.fusion.written} fused")
    print(f"Precision of fused facts: {correct / max(report.accepted, 1):.3f}")

    log_after = synthesize_query_log(deployed, [DOB, POB], 2000, now=kg.now, seed=3)
    print(f"Query answer rate after ODKE:  {QueryLogAnalyzer(log_after).answer_rate():.3f}")

    # The Figure 6 case: an ambiguous name whose blogs carry the namesake's DOB.
    for name, members in kg.truth.ambiguous_names.items():
        gaps = [e for e in members if (e, DOB) in truth]
        if gaps:
            entity = gaps[0]
            accepted = report.accepted_values.get((entity, DOB))
            print(f"\nNamesake case '{name}': true DOB {truth[(entity, DOB)]}, "
                  f"ODKE fused: {accepted[0] if accepted else '(abstained)'}")
            break


if __name__ == "__main__":
    main()
