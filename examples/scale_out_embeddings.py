"""Out-of-core embedding training (§2's disk-based path, Marius/PBG style).

Trains the same model in-memory and with the partitioned disk trainer at
several buffer sizes, printing the I/O / memory / quality trade-off that
makes billion-edge graphs trainable on bounded memory.

Run:  python examples/scale_out_embeddings.py
"""

import tempfile

from repro.embeddings.dataset import build_dataset
from repro.embeddings.disk_trainer import DiskTrainer
from repro.embeddings.evaluation import link_prediction
from repro.embeddings.partition import count_swaps, partition_dataset, schedule_pairs
from repro.embeddings.trainer import TrainConfig, train_embeddings
from repro.kg.generator import SyntheticKGConfig, generate_kg
from repro.kg.views import embedding_training_view, materialize


def main() -> None:
    kg = generate_kg(SyntheticKGConfig(seed=7, scale=1.0))
    view = materialize(embedding_training_view(), kg.store)
    dataset = build_dataset(view.store)
    train_ds, _valid, test = dataset.split(seed=1)
    config = TrainConfig(model="distmult", dim=32, epochs=8, seed=1)
    print(f"Training graph: {dataset.num_entities} entities, "
          f"{len(train_ds)} edges (view selectivity {view.selectivity:.2f})\n")

    trained = train_embeddings(train_ds, config)
    report = link_prediction(trained, test, max_queries=100)
    print(f"{'config':<22}{'MRR':>7}{'loads':>8}{'peak MB':>9}{'edges/s':>10}")
    print(f"{'in-memory':<22}{report.mrr:>7.3f}{'—':>8}{'all':>9}"
          f"{int(trained.history[-1].triples_per_second):>10}")

    for partitions, buffer_capacity in [(4, 2), (8, 2), (8, 4), (16, 4)]:
        with tempfile.TemporaryDirectory() as workdir:
            trainer = DiskTrainer(
                train_ds, workdir=workdir, config=config,
                num_partitions=partitions, buffer_capacity=buffer_capacity,
            )
            trained_disk, stats = trainer.train()
        report = link_prediction(trained_disk, test, max_queries=100)
        label = f"disk p={partitions} buf={buffer_capacity}"
        print(f"{label:<22}{report.mrr:>7.3f}{stats.bucket_loads:>8}"
              f"{stats.peak_resident_bytes / 1e6:>9.2f}"
              f"{int(stats.epochs[-1].triples_per_second):>10}")

    # The scheduler's job: locality-aware bucket-pair ordering.
    print("\nSchedule quality (8 partitions, buffer=2):")
    partitioning = partition_dataset(train_ds, 8, seed=1)
    pairs = sorted(partitioning.groups)
    naive_loads, _ = count_swaps(pairs, 2)
    greedy_loads, _ = count_swaps(schedule_pairs(pairs, 2), 2)
    print(f"  lexicographic order: {naive_loads} bucket loads/epoch")
    print(f"  greedy LRU schedule: {greedy_loads} bucket loads/epoch")


if __name__ == "__main__":
    main()
