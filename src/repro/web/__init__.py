"""Synthetic Web substrate: documents, corpus, crawl churn, BM25 search."""

from repro.web.corpus import WebCorpus, WebCorpusConfig, WebCorpusGenerator, generate_corpus
from repro.web.crawl import CrawlDelta, CrawlSimulator, evolve
from repro.web.document import DocumentKind, GoldMention, WebDocument
from repro.web.schema_org import (
    PREDICATE_TO_SCHEMA,
    SCHEMA_TO_PREDICATE,
    build_person_payload,
    corrupt_payload,
    schema_type_of,
)
from repro.web.search import BM25SearchEngine, SearchResult

__all__ = [
    "BM25SearchEngine",
    "CrawlDelta",
    "CrawlSimulator",
    "DocumentKind",
    "GoldMention",
    "PREDICATE_TO_SCHEMA",
    "SCHEMA_TO_PREDICATE",
    "SearchResult",
    "WebCorpus",
    "WebCorpusConfig",
    "WebCorpusGenerator",
    "WebDocument",
    "build_person_payload",
    "corrupt_payload",
    "evolve",
    "generate_corpus",
    "schema_type_of",
]
