"""schema.org-style structured payloads embedded in web pages.

§4: "simple rule-based models can be used to extract key-value pairs from
webpages embedded with structured data that conform to schema.org types".
Profile pages carry a JSON-LD-like dict built from KG facts; the rule-based
ODKE extractor parses these payloads back out.  A noise knob lets the
corpus plant wrong values so corroboration has something to reject.
"""

from __future__ import annotations

from typing import Any

from repro.common import ids
from repro.kg.store import TripleStore

# KG predicate (local name) -> schema.org property.
PREDICATE_TO_SCHEMA = {
    "date_of_birth": "birthDate",
    "place_of_birth": "birthPlace",
    "spouse": "spouse",
    "occupation": "jobTitle",
    "member_of_sports_team": "memberOf",
    "employer": "worksFor",
    "height_cm": "height",
}

SCHEMA_TO_PREDICATE = {v: k for k, v in PREDICATE_TO_SCHEMA.items()}

_TYPE_TO_SCHEMA = {
    "type:person": "Person",
    "type:film": "Movie",
    "type:album": "MusicAlbum",
    "type:sports_team": "SportsTeam",
    "type:city": "City",
    "type:university": "CollegeOrUniversity",
}


def schema_type_of(types: tuple[str, ...]) -> str:
    """Best schema.org @type for a KG type tuple (default ``Thing``)."""
    for type_id in types:
        if type_id in _TYPE_TO_SCHEMA:
            return _TYPE_TO_SCHEMA[type_id]
    return "Thing"


def build_person_payload(
    store: TripleStore,
    entity: str,
    include_predicates: list[str] | None = None,
) -> dict[str, Any]:
    """JSON-LD-like payload for an entity from its KG facts.

    Entity-valued properties are rendered as the target's *name* (web pages
    don't know KG ids); the extractor must link them back.
    """
    record = store.entity(entity)
    payload: dict[str, Any] = {
        "@type": schema_type_of(record.types),
        "name": record.name,
    }
    wanted = include_predicates or list(PREDICATE_TO_SCHEMA)
    for local in wanted:
        predicate = ids.predicate_id(local)
        values = []
        for fact in store.scan(subject=entity, predicate=predicate):
            if fact.is_literal:
                values.append(fact.obj)
            elif store.has_entity(fact.obj):
                values.append(store.entity(fact.obj).name)
        if not values:
            continue
        schema_property = PREDICATE_TO_SCHEMA[local]
        payload[schema_property] = values[0] if len(values) == 1 else sorted(values)
    return payload


def corrupt_payload(
    payload: dict[str, Any], property_name: str, wrong_value: Any
) -> dict[str, Any]:
    """Copy of ``payload`` with one property replaced by a wrong value.

    Used by the corpus generator to plant the Figure 6 scenario: a page
    about music-artist Michelle Williams carrying the *actress's* birth
    date.
    """
    corrupted = dict(payload)
    corrupted[property_name] = wrong_value
    return corrupted
