"""BM25 web search over the synthetic corpus.

ODKE (§4) "leverage[s] Web search to find relevant documents" instead of
scanning the whole crawl.  This is a classic inverted-index BM25 engine
with a small title boost — enough fidelity that the Query Synthesizer's
targeted queries retrieve the right pages.
"""

from __future__ import annotations

import math
from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.common.text import tokenize
from repro.web.corpus import WebCorpus
from repro.web.document import WebDocument


@dataclass
class SearchResult:
    """One ranked search hit."""

    doc_id: str
    score: float
    document: WebDocument


class BM25SearchEngine:
    """Okapi BM25 with document-frequency pruned postings."""

    def __init__(
        self,
        corpus: WebCorpus,
        k1: float = 1.5,
        b: float = 0.75,
        title_weight: float = 2.0,
    ) -> None:
        self.k1 = k1
        self.b = b
        self.title_weight = title_weight
        self._corpus = corpus
        self._postings: dict[str, dict[str, int]] = defaultdict(dict)
        self._doc_len: dict[str, float] = {}
        self._build()

    def _build(self) -> None:
        for doc in self._corpus:
            counts: Counter[str] = Counter(tokenize(doc.text))
            for token in tokenize(doc.title):
                counts[token] += int(self.title_weight)
            length = float(sum(counts.values()))
            self._doc_len[doc.doc_id] = length
            for token, count in counts.items():
                self._postings[token][doc.doc_id] = count
        self._num_docs = len(self._corpus)
        self._avg_len = (
            sum(self._doc_len.values()) / self._num_docs if self._num_docs else 0.0
        )

    def index_document(self, doc: WebDocument) -> None:
        """Add or refresh one document (incremental crawl updates)."""
        previous = self._corpus.get(doc.doc_id)
        if previous is not None:
            old_counts: Counter[str] = Counter(tokenize(previous.text))
            for token in tokenize(previous.title):
                old_counts[token] += int(self.title_weight)
            for token in old_counts:
                self._postings[token].pop(doc.doc_id, None)
        self._corpus.add(doc)
        counts: Counter[str] = Counter(tokenize(doc.text))
        for token in tokenize(doc.title):
            counts[token] += int(self.title_weight)
        self._doc_len[doc.doc_id] = float(sum(counts.values()))
        for token, count in counts.items():
            self._postings[token][doc.doc_id] = count
        self._num_docs = len(self._corpus)
        self._avg_len = (
            sum(self._doc_len.values()) / self._num_docs if self._num_docs else 0.0
        )

    def search(self, query: str, k: int = 10) -> list[SearchResult]:
        """Top-``k`` documents for ``query`` under BM25."""
        tokens = tokenize(query)
        if not tokens or not self._num_docs:
            return []
        scores: dict[str, float] = defaultdict(float)
        for token in tokens:
            postings = self._postings.get(token)
            if not postings:
                continue
            df = len(postings)
            idf = math.log(1.0 + (self._num_docs - df + 0.5) / (df + 0.5))
            for doc_id, tf in postings.items():
                norm = self.k1 * (
                    1 - self.b + self.b * self._doc_len[doc_id] / max(self._avg_len, 1e-9)
                )
                scores[doc_id] += idf * tf * (self.k1 + 1) / (tf + norm)
        ranked = sorted(scores.items(), key=lambda item: (-item[1], item[0]))[:k]
        results = []
        for doc_id, score in ranked:
            document = self._corpus.get(doc_id)
            if document is not None:
                results.append(
                    SearchResult(doc_id=doc_id, score=score, document=document)
                )
        return results

    @property
    def num_documents(self) -> int:
        """Documents currently indexed."""
        return self._num_docs
