"""Synthetic Web corpus generator.

Stands in for the paper's billion-page crawl.  Pages are generated *from*
the KG, so every mention has a known gold entity, and wrong facts are
planted deliberately — giving the annotation and ODKE benchmarks exact
ground truth.  The generator reproduces the corpus properties §3.1 calls
out:

* **Scale** — page count is a config knob benchmarks sweep;
* **Variety** — four genres (profile/news/blog/list), structured payloads
  on profiles, a slice of non-English pages, distractor pages about
  entities *not* in the KG (false-positive pressure);
* **Veracity hazards** — blog pages about one half of an ambiguous name
  pair can carry the namesake's facts (the Michelle Williams scenario of
  Figure 6), and random blogs carry corrupted birth dates;
* **Rate of change** — see :mod:`repro.web.crawl` for churn.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common import ids
from repro.common.rng import substream
from repro.kg.generator import SyntheticKG
from repro.kg.store import TripleStore
from repro.web.document import DocumentKind, GoldMention, WebDocument
from repro.web.schema_org import build_person_payload

_MONTHS = [
    "January", "February", "March", "April", "May", "June", "July",
    "August", "September", "October", "November", "December",
]

DISTRACTOR_NAMES = [
    "Harvey Plimpton", "Greta Vandermolen", "Ossian Blackwood",
    "Perpetua Nightingale", "Zebulon Crabtree", "Wilhelmina Foxworth",
    "Barnaby Quillfeather", "Serafina Moonstone",
]


def format_date_long(iso_date: str) -> str:
    """``1979-07-23`` → ``July 23, 1979`` (what blogs write)."""
    year, month, day = iso_date.split("-")
    return f"{_MONTHS[int(month) - 1]} {int(day)}, {year}"


class _TextBuilder:
    """Accumulates text while tracking gold mention offsets."""

    def __init__(self) -> None:
        self._parts: list[str] = []
        self._length = 0
        self.mentions: list[GoldMention] = []

    def add(self, text: str) -> None:
        """Append plain text."""
        self._parts.append(text)
        self._length += len(text)

    def add_mention(self, surface: str, entity: str) -> None:
        """Append ``surface`` and record it as a mention of ``entity``."""
        start = self._length
        self.add(surface)
        self.mentions.append(
            GoldMention(start=start, end=start + len(surface), surface=surface, entity=entity)
        )

    def build(self) -> tuple[str, tuple[GoldMention, ...]]:
        return "".join(self._parts), tuple(self.mentions)


@dataclass
class WebCorpusConfig:
    """Scale and composition knobs of the corpus."""

    seed: int = 11
    num_profile_pages: int = 150
    num_news_pages: int = 300
    num_blog_pages: int = 120
    num_list_pages: int = 30
    num_distractor_pages: int = 40
    wrong_fact_fraction: float = 0.3  # fraction of blogs carrying a wrong DOB
    non_english_fraction: float = 0.1
    alias_mention_fraction: float = 0.25
    base_timestamp: float = 1684000000.0


@dataclass
class WebCorpus:
    """A crawl snapshot: documents keyed by id."""

    documents: list[WebDocument] = field(default_factory=list)

    def __post_init__(self) -> None:
        self.by_id = {doc.doc_id: doc for doc in self.documents}

    def __len__(self) -> int:
        return len(self.documents)

    def __iter__(self):
        return iter(self.documents)

    def get(self, doc_id: str) -> WebDocument | None:
        """Document by id, or None."""
        return self.by_id.get(doc_id)

    def add(self, doc: WebDocument) -> None:
        """Add or replace a document."""
        if doc.doc_id in self.by_id:
            self.documents = [
                doc if d.doc_id == doc.doc_id else d for d in self.documents
            ]
        else:
            self.documents.append(doc)
        self.by_id[doc.doc_id] = doc


class WebCorpusGenerator:
    """Builds a :class:`WebCorpus` from a synthetic KG."""

    def __init__(self, kg: SyntheticKG, config: WebCorpusConfig | None = None) -> None:
        self.kg = kg
        self.store: TripleStore = kg.store
        self.config = config or WebCorpusConfig()
        self.rng = substream(self.config.seed, "web-corpus")
        self._doc_counter = 0

    # -- public -----------------------------------------------------------

    def generate(self) -> WebCorpus:
        """Generate the full corpus (deterministic in the config seed)."""
        documents: list[WebDocument] = []
        people = self._people_by_popularity()
        documents.extend(self._profile_pages(people))
        documents.extend(self._news_pages(people))
        documents.extend(self._blog_pages(people))
        documents.extend(self._list_pages())
        documents.extend(self._distractor_pages())
        return WebCorpus(documents=documents)

    # -- helpers ------------------------------------------------------------

    def _people_by_popularity(self) -> list[str]:
        people = [
            record
            for record in self.store.entities()
            if ids.type_id("person") in record.types
        ]
        people.sort(key=lambda record: (-record.popularity, record.entity))
        return [record.entity for record in people]

    def _next_doc(self, kind: str) -> tuple[str, str]:
        doc = ids.doc_id(f"web/{self._doc_counter:06d}")
        url = f"https://example.org/{kind}/{self._doc_counter:06d}"
        self._doc_counter += 1
        return doc, url

    def _name(self, entity: str) -> str:
        return self.store.entity(entity).name

    def _surface_for(self, entity: str, builder_rng: np.random.Generator) -> str:
        """Full name, or an alias a fraction of the time."""
        record = self.store.entity(entity)
        if record.aliases and builder_rng.random() < self.config.alias_mention_fraction:
            return record.aliases[int(builder_rng.integers(len(record.aliases)))]
        return record.name

    def _objects(self, entity: str, predicate_local: str) -> list[str]:
        return self.store.objects(entity, ids.predicate_id(predicate_local))

    # -- page genres -----------------------------------------------------------

    def _profile_pages(self, people: list[str]) -> list[WebDocument]:
        """High-quality per-entity pages with schema.org payloads."""
        pages: list[WebDocument] = []
        for entity in people[: self.config.num_profile_pages]:
            doc_id, url = self._next_doc("profile")
            record = self.store.entity(entity)
            builder = _TextBuilder()
            builder.add_mention(record.name, entity)
            builder.add(f" is {_indefinite(record.description)}. ")
            dob = self.kg.truth.birth_dates.get(entity)
            born_city = self._objects(entity, "place_of_birth")
            if dob and born_city:
                builder.add_mention(record.name, entity)
                builder.add(" was born on ")
                builder.add(dob)
                builder.add(" in ")
                builder.add_mention(self._name(born_city[0]), born_city[0])
                builder.add(". ")
            self._add_relation_sentences(builder, entity, limit=4)
            text, mentions = builder.build()
            payload = build_person_payload(self.store, entity)
            pages.append(
                WebDocument(
                    doc_id=doc_id,
                    url=url,
                    title=record.name,
                    text=text,
                    kind=DocumentKind.PROFILE,
                    quality=0.9,
                    fetched_at=self.config.base_timestamp,
                    structured_data=payload,
                    gold_mentions=mentions,
                )
            )
        return pages

    def _add_relation_sentences(
        self, builder: _TextBuilder, entity: str, limit: int
    ) -> None:
        """Sentences verbalising the entity's edges (adds object mentions)."""
        templates = [
            ("member_of_sports_team", " plays for "),
            ("award_received", " received the "),
            ("starred_in", " starred in "),
            ("directed", " directed "),
            ("performer_of", " released "),
            ("employer", " teaches at "),
            ("appears_on", " appeared on "),
            ("spouse", " is married to "),
        ]
        name = self._name(entity)
        added = 0
        for predicate_local, verb in templates:
            if added >= limit:
                break
            for obj in self._objects(entity, predicate_local)[:2]:
                if added >= limit:
                    break
                builder.add_mention(name, entity)
                builder.add(verb)
                builder.add_mention(self._name(obj), obj)
                builder.add(". ")
                added += 1

    def _news_pages(self, people: list[str]) -> list[WebDocument]:
        """Multi-entity news articles (the Figure 4 'Root hits hundred' genre)."""
        pages: list[WebDocument] = []
        rng = substream(self.config.seed, "news")
        pool = people[: max(20, len(people) // 2)]
        for _ in range(self.config.num_news_pages):
            doc_id, url = self._next_doc("news")
            main = pool[int(rng.integers(len(pool)))]
            related = sorted(self.kg.truth.related.get(main, set()))
            others = [e for e in related if e in self.store.entity_ids()][:3]
            if not others:
                others = [pool[int(rng.integers(len(pool)))]]
            builder = _TextBuilder()
            builder.add_mention(self._surface_for(main, rng), main)
            builder.add(" made headlines this week. ")
            team = self._objects(main, "member_of_sports_team")
            if team:
                builder.add("The ")
                builder.add_mention(self._name(team[0]), team[0])
                builder.add(" confirmed the news. ")
            for other in others:
                builder.add_mention(self._surface_for(other, rng), other)
                builder.add(" was also involved. ")
            self._add_relation_sentences(builder, main, limit=2)
            text, mentions = builder.build()
            language = (
                "es" if rng.random() < self.config.non_english_fraction else "en"
            )
            pages.append(
                WebDocument(
                    doc_id=doc_id,
                    url=url,
                    title=f"{self._name(main)} in the news",
                    text=text,
                    kind=DocumentKind.NEWS,
                    language=language,
                    quality=0.7,
                    fetched_at=self.config.base_timestamp,
                    gold_mentions=mentions,
                )
            )
        return pages

    def _blog_pages(self, people: list[str]) -> list[WebDocument]:
        """Low-quality pages; some carry wrong facts (veracity hazards).

        For ambiguous-name people, the wrong fact is specifically the
        *namesake's* birth date — reproducing the Michelle Williams
        confusion of Figure 6.
        """
        pages: list[WebDocument] = []
        rng = substream(self.config.seed, "blogs")
        ambiguous = {
            entity: names
            for names, members in self.kg.truth.ambiguous_names.items()
            for entity in members
            for names in [members]
        }
        for _ in range(self.config.num_blog_pages):
            doc_id, url = self._next_doc("blog")
            entity = people[int(rng.integers(min(len(people), 120)))]
            record = self.store.entity(entity)
            truth_dob = self.kg.truth.birth_dates.get(entity)
            builder = _TextBuilder()
            builder.add("Everything you wanted to know about ")
            builder.add_mention(record.name, entity)
            builder.add("! ")
            wrong = rng.random() < self.config.wrong_fact_fraction
            dob_to_write = truth_dob
            if wrong and truth_dob:
                namesakes = [e for e in ambiguous.get(entity, []) if e != entity]
                if namesakes:
                    dob_to_write = self.kg.truth.birth_dates.get(
                        namesakes[0], truth_dob
                    )
                else:
                    year, month, day = truth_dob.split("-")
                    dob_to_write = f"{int(year) + 1}-{month}-{day}"
            if dob_to_write:
                builder.add_mention(record.name, entity)
                builder.add(" was born on ")
                builder.add(format_date_long(dob_to_write))
                builder.add(". ")
            self._add_relation_sentences(builder, entity, limit=1)
            text, mentions = builder.build()
            pages.append(
                WebDocument(
                    doc_id=doc_id,
                    url=url,
                    title=f"Fan notes: {record.name}",
                    text=text,
                    kind=DocumentKind.BLOG,
                    quality=0.25,
                    fetched_at=self.config.base_timestamp,
                    gold_mentions=mentions,
                )
            )
        return pages

    def _list_pages(self) -> list[WebDocument]:
        """Listicles mentioning many same-type entities shallowly."""
        pages: list[WebDocument] = []
        rng = substream(self.config.seed, "lists")
        type_pools = {
            "basketball stars": ids.type_id("basketball_player"),
            "films to watch": ids.type_id("film"),
            "albums of the year": ids.type_id("album"),
            "cities to visit": ids.type_id("city"),
        }
        topics = sorted(type_pools)
        for i in range(self.config.num_list_pages):
            topic = topics[i % len(topics)]
            type_id = type_pools[topic]
            members = [
                record.entity
                for record in self.store.entities()
                if type_id in record.types
            ]
            if not members:
                continue
            rng.shuffle(members)
            chosen = members[: min(8, len(members))]
            doc_id, url = self._next_doc("list")
            builder = _TextBuilder()
            builder.add(f"Our editors picked the best {topic}: ")
            for position, entity in enumerate(chosen):
                builder.add(f"{position + 1}. ")
                builder.add_mention(self._name(entity), entity)
                builder.add(". ")
            text, mentions = builder.build()
            pages.append(
                WebDocument(
                    doc_id=doc_id,
                    url=url,
                    title=f"Top {len(chosen)} {topic}",
                    text=text,
                    kind=DocumentKind.LIST,
                    quality=0.5,
                    fetched_at=self.config.base_timestamp,
                    gold_mentions=mentions,
                )
            )
        return pages

    def _distractor_pages(self) -> list[WebDocument]:
        """Pages about people who are *not* in the KG (no gold mentions).

        A correct annotator should link nothing here; every link it does
        produce is a false positive.
        """
        pages: list[WebDocument] = []
        rng = substream(self.config.seed, "distractors")
        for i in range(self.config.num_distractor_pages):
            doc_id, url = self._next_doc("misc")
            name = DISTRACTOR_NAMES[i % len(DISTRACTOR_NAMES)]
            hobby = ["gardening", "woodworking", "stargazing", "baking"][
                int(rng.integers(4))
            ]
            text = (
                f"{name} shared new thoughts on {hobby} this weekend. "
                f"Neighbours say {name} has been at it for years. "
            )
            pages.append(
                WebDocument(
                    doc_id=doc_id,
                    url=url,
                    title=f"{name}'s {hobby} corner",
                    text=text,
                    kind=DocumentKind.BLOG,
                    quality=0.2,
                    fetched_at=self.config.base_timestamp,
                    gold_mentions=(),
                )
            )
        return pages


def _indefinite(description: str) -> str:
    """Strip the leading "X is a " from a generator description."""
    marker = " is a "
    if marker in description:
        return "a " + description.split(marker, 1)[1].rstrip(".")
    return description.rstrip(".")


def generate_corpus(
    kg: SyntheticKG, config: WebCorpusConfig | None = None
) -> WebCorpus:
    """Convenience wrapper over :class:`WebCorpusGenerator`."""
    return WebCorpusGenerator(kg, config).generate()
