"""Web documents: the unstructured side of the extended knowledge graph.

§3.1 extends the KG "with edges linking KG entities to unstructured Web
documents".  A :class:`WebDocument` carries everything the annotation and
extraction services consume: text, optional schema.org structured payload,
a language tag, a source-quality prior and a change-tracking content hash.

Because the corpus is synthetic, documents also carry *gold mentions* — the
generator knows exactly which character span refers to which entity.  Gold
labels live in a parallel field that production components never read; only
evaluation code touches them.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class GoldMention:
    """Ground-truth mention: ``text[start:end]`` refers to ``entity``."""

    start: int
    end: int
    surface: str
    entity: str


class DocumentKind:
    """Coarse page genres the corpus generator emits."""

    PROFILE = "profile"
    NEWS = "news"
    BLOG = "blog"
    LIST = "list"


@dataclass
class WebDocument:
    """One synthetic web page."""

    doc_id: str
    url: str
    title: str
    text: str
    kind: str = DocumentKind.NEWS
    language: str = "en"
    quality: float = 0.5
    fetched_at: float = 0.0
    structured_data: dict[str, Any] | None = None
    # Evaluation-only ground truth; never read by production code paths.
    gold_mentions: tuple[GoldMention, ...] = field(default=())

    @property
    def content_hash(self) -> str:
        """Stable hash of title+text+structured data, for change detection."""
        digest = hashlib.sha1()
        digest.update(self.title.encode("utf-8"))
        digest.update(b"\x00")
        digest.update(self.text.encode("utf-8"))
        if self.structured_data is not None:
            digest.update(repr(sorted(self.structured_data.items())).encode("utf-8"))
        return digest.hexdigest()

    @property
    def full_text(self) -> str:
        """Title and body concatenated (what search indexes)."""
        return f"{self.title}\n{self.text}"

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable form (gold mentions included for datasets)."""
        return {
            "doc_id": self.doc_id,
            "url": self.url,
            "title": self.title,
            "text": self.text,
            "kind": self.kind,
            "language": self.language,
            "quality": self.quality,
            "fetched_at": self.fetched_at,
            "structured_data": self.structured_data,
            "gold_mentions": [
                {
                    "start": m.start,
                    "end": m.end,
                    "surface": m.surface,
                    "entity": m.entity,
                }
                for m in self.gold_mentions
            ],
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "WebDocument":
        """Inverse of :meth:`to_dict`."""
        return cls(
            doc_id=payload["doc_id"],
            url=payload["url"],
            title=payload["title"],
            text=payload["text"],
            kind=payload.get("kind", DocumentKind.NEWS),
            language=payload.get("language", "en"),
            quality=payload.get("quality", 0.5),
            fetched_at=payload.get("fetched_at", 0.0),
            structured_data=payload.get("structured_data"),
            gold_mentions=tuple(
                GoldMention(
                    start=m["start"],
                    end=m["end"],
                    surface=m["surface"],
                    entity=m["entity"],
                )
                for m in payload.get("gold_mentions", [])
            ),
        )
