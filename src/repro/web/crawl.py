"""Crawl churn simulation: the Web's rate of change.

§3.1: "The Web is not static.  New webpages are constantly created and
existing webpages get updated frequently.  The service needs to handle
incremental changes timely and efficiently."

:func:`evolve` produces the next crawl snapshot from the previous one:
a fraction of pages change in place (text appended, timestamps bumped) and
new pages appear.  Content hashes let the incremental annotator detect
exactly which pages need re-processing; :class:`CrawlSimulator` drives a
sequence of snapshots for the churn benchmarks.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.rng import substream
from repro.kg.generator import SyntheticKG
from repro.web.corpus import WebCorpus, WebCorpusConfig, WebCorpusGenerator
from repro.web.document import GoldMention, WebDocument


@dataclass
class CrawlDelta:
    """What changed between two snapshots."""

    changed_ids: list[str]
    new_ids: list[str]

    @property
    def total(self) -> int:
        return len(self.changed_ids) + len(self.new_ids)


def evolve(
    corpus: WebCorpus,
    kg: SyntheticKG,
    change_fraction: float = 0.1,
    new_fraction: float = 0.02,
    timestamp: float = 0.0,
    seed: int = 0,
) -> tuple[WebCorpus, CrawlDelta]:
    """Next snapshot: some documents updated, some created.

    Updated documents get an extra sentence mentioning one of the page's
    existing gold entities (keeping gold labels consistent).  New documents
    are fresh news pages.
    """
    rng = substream(seed, "crawl-evolve")
    documents: list[WebDocument] = []
    changed_ids: list[str] = []
    for doc in corpus:
        if rng.random() < change_fraction and doc.gold_mentions:
            documents.append(_update_document(doc, timestamp))
            changed_ids.append(doc.doc_id)
        else:
            documents.append(doc)

    new_ids: list[str] = []
    n_new = int(len(corpus) * new_fraction)
    if n_new:
        generator = WebCorpusGenerator(
            kg,
            WebCorpusConfig(
                seed=seed + 1,
                num_profile_pages=0,
                num_news_pages=n_new,
                num_blog_pages=0,
                num_list_pages=0,
                num_distractor_pages=0,
                base_timestamp=timestamp,
            ),
        )
        # Offset ids so they don't collide with the existing corpus.
        generator._doc_counter = 1_000_000 + len(corpus) + seed * 10_000
        for doc in generator.generate():
            documents.append(doc)
            new_ids.append(doc.doc_id)

    return WebCorpus(documents=documents), CrawlDelta(
        changed_ids=changed_ids, new_ids=new_ids
    )


def _update_document(doc: WebDocument, timestamp: float) -> WebDocument:
    """Append an update sentence re-mentioning the page's first entity."""
    first = doc.gold_mentions[0]
    prefix = doc.text + " Update: more on "
    appended = prefix + first.surface + " soon. "
    new_mention = GoldMention(
        start=len(prefix),
        end=len(prefix) + len(first.surface),
        surface=first.surface,
        entity=first.entity,
    )
    return WebDocument(
        doc_id=doc.doc_id,
        url=doc.url,
        title=doc.title,
        text=appended,
        kind=doc.kind,
        language=doc.language,
        quality=doc.quality,
        fetched_at=timestamp,
        structured_data=doc.structured_data,
        gold_mentions=doc.gold_mentions + (new_mention,),
    )


class CrawlSimulator:
    """Generates a sequence of snapshots with configurable churn."""

    def __init__(
        self,
        kg: SyntheticKG,
        initial: WebCorpus,
        change_fraction: float = 0.1,
        new_fraction: float = 0.02,
        period_seconds: float = 7 * 24 * 3600,
        seed: int = 0,
    ) -> None:
        self.kg = kg
        self.current = initial
        self.change_fraction = change_fraction
        self.new_fraction = new_fraction
        self.period_seconds = period_seconds
        self.seed = seed
        self.epoch = 0
        self.base_time = max((d.fetched_at for d in initial), default=0.0)

    def step(self) -> tuple[WebCorpus, CrawlDelta]:
        """Advance one crawl period; returns (snapshot, delta)."""
        self.epoch += 1
        timestamp = self.base_time + self.epoch * self.period_seconds
        self.current, delta = evolve(
            self.current,
            self.kg,
            change_fraction=self.change_fraction,
            new_fraction=self.new_fraction,
            timestamp=timestamp,
            seed=self.seed + self.epoch,
        )
        return self.current, delta
