"""JSON wire codec for the serving protocol (schema-versioned envelopes).

One protocol for every knowledge service (the paper's §4 serving platform:
graph queries, entity linking, fact ranking/verification, similarity — all
behind one low-latency API).  Requests and responses travel as UTF-8 JSON:

Request envelope::

    {"protocol": 1, "type": "walk", "body": {"entities": [...], "seed": 7}}

Response envelope::

    {"protocol": 1, "type": "walk", "status": "ok", "store_version": 3,
     "timings": {"compute_ms": 1.9, "total_ms": 2.1}, "cached": false,
     "payload": [...]}

    {"protocol": 1, "type": "verify", "status": "error", "store_version": 3,
     "timings": {"total_ms": 0.4}, "cached": false,
     "error": {"code": "internal", "message": "entity not in vocabulary: X"}}

Contracts:

* **Schema-versioned decode** — ``protocol`` must match a supported
  version; anything else is rejected with ``unsupported_version`` *before*
  the body is interpreted, so an old server never misreads a newer
  client's fields (and vice versa).
* **Structured errors** — failures cross the wire as
  ``{"code", "message"}`` envelopes, never tracebacks; the in-process
  exception object stays on the server side of the codec.
* **Typed round-trips** — ``decode_response(encode_response(r))``
  reconstructs the payload's dataclasses (verdicts, ranked facts, search
  hits, entity links), so a client sees the same types an in-process
  facade call returns.  Floats survive exactly: JSON's ``repr``-based
  float serialisation is lossless for IEEE doubles.
"""

from __future__ import annotations

import dataclasses
import json
from typing import Any

from repro.common import tracing
from repro.serving.requests import (
    ERROR_BAD_REQUEST,
    ERROR_UNSUPPORTED_TYPE,
    ERROR_UNSUPPORTED_VERSION,
    STATUS_DEGRADED,
    STATUS_ERROR,
    STATUS_OK,
    REQUESTS_BY_WIRE_TYPE,
    ErrorInfo,
    PersonalRecord,
    Request,
    Response,
    response_class,
    valid_tenant_id,
)

PROTOCOL_VERSION = 1
SUPPORTED_VERSIONS = (1,)


class ProtocolError(ValueError):
    """A malformed or unsupported wire message, with a stable error code."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(message)
        self.code = code
        self.message = message

    def to_error(self) -> ErrorInfo:
        return ErrorInfo(code=self.code, message=self.message)


# -- request codec -------------------------------------------------------------


def encode_request(
    request: Request,
    *,
    trace: "tracing.TraceContext | None" = None,
    tenant: str | None = None,
) -> bytes:
    """Serialise ``request`` into a protocol envelope (UTF-8 JSON bytes).

    ``trace`` embeds the caller's trace context as an optional ``trace``
    envelope field.  The field is additive: servers and clients that
    predate it ignore unknown top-level envelope keys, so traced and
    untraced peers interoperate freely.  ``tenant`` scopes the request to
    one tenant's overlay graph — additive the same way, but validated
    strictly on both ends: a tenant id changes which graph answers, so a
    malformed one must fail loudly rather than fall through to the shared
    graph.
    """
    wire_type = getattr(type(request), "wire_type", None)
    if wire_type not in REQUESTS_BY_WIRE_TYPE:
        raise ProtocolError(
            ERROR_UNSUPPORTED_TYPE,
            f"unknown request type: {type(request).__name__}",
        )
    envelope: dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "type": wire_type,
        "body": dataclasses.asdict(request),
    }
    if trace is not None:
        envelope["trace"] = trace.to_wire()
    if tenant is not None:
        if not valid_tenant_id(tenant):
            raise ProtocolError(ERROR_BAD_REQUEST, f"invalid tenant id: {tenant!r}")
        envelope["tenant"] = tenant
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


def decode_request(data: bytes | str) -> Request:
    """Parse a request envelope; raises :class:`ProtocolError` on bad input."""
    request, _ = decode_request_with_context(data)
    return request


def decode_request_with_context(
    data: bytes | str,
) -> "tuple[Request, tracing.TraceContext | None]":
    """Like :func:`decode_request`, also extracting the ``trace`` field.

    A missing or malformed ``trace`` field yields ``None`` — trace
    context is advisory and must never fail the request carrying it.
    """
    request, context, _tenant = decode_request_envelope(data)
    return request, context


def decode_request_envelope(
    data: bytes | str,
) -> "tuple[Request, tracing.TraceContext | None, str | None]":
    """Full envelope decode: ``(request, trace_context, tenant)``.

    Unlike trace context, a *present but malformed* ``tenant`` field is a
    hard ``bad_request``: routing a tenant-scoped request to the shared
    graph (or to a path-traversal directory name) on a typo would be an
    isolation failure, not a degraded nicety.
    """
    envelope = _parse_envelope(data)
    context = tracing.TraceContext.from_wire(envelope.get("trace"))
    tenant = envelope.get("tenant")
    if tenant is not None and not valid_tenant_id(tenant):
        raise ProtocolError(ERROR_BAD_REQUEST, f"invalid tenant id: {tenant!r}")
    wire_type = envelope.get("type")
    # The isinstance gate runs before the dict probe: a non-string (and
    # possibly unhashable) type field must reject cleanly, not TypeError.
    if not isinstance(wire_type, str) or wire_type not in REQUESTS_BY_WIRE_TYPE:
        raise ProtocolError(
            ERROR_UNSUPPORTED_TYPE, f"unknown request type: {wire_type!r}"
        )
    request_cls = REQUESTS_BY_WIRE_TYPE[wire_type]
    body = envelope.get("body")
    if not isinstance(body, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "request body must be an object")
    known = {field.name for field in dataclasses.fields(request_cls)}
    unknown = set(body) - known
    if unknown:
        raise ProtocolError(
            ERROR_BAD_REQUEST,
            f"unknown field(s) for {wire_type!r} request: {sorted(unknown)}",
        )
    try:
        return request_cls(**_coerce_body(body)), context, tenant
    except (TypeError, ValueError) as exc:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"invalid {wire_type!r} request: {exc}"
        ) from None


def _parse_envelope(data: bytes | str) -> dict:
    if isinstance(data, bytes):
        try:
            data = data.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(ERROR_BAD_REQUEST, f"not UTF-8: {exc}") from None
    try:
        envelope = json.loads(data)
    except json.JSONDecodeError as exc:
        raise ProtocolError(ERROR_BAD_REQUEST, f"malformed JSON: {exc}") from None
    if not isinstance(envelope, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "envelope must be a JSON object")
    version = envelope.get("protocol")
    if version not in SUPPORTED_VERSIONS:
        raise ProtocolError(
            ERROR_UNSUPPORTED_VERSION,
            f"unsupported protocol version {version!r} "
            f"(supported: {list(SUPPORTED_VERSIONS)})",
        )
    return envelope


# Scalar request fields and the JSON type each must arrive as.  Decode
# validates these up front: a request built from unchecked network input
# would otherwise smuggle unhashable or mistyped values into the frozen
# dataclasses (cache keys!) and surface deep in the dispatch as a 500
# instead of a bad_request here.
_SCALAR_FIELDS: dict[str, type] = {
    "walk_length": int,
    "walks_per_entity": int,
    "seed": int,
    "hops": int,
    "k": int,
    "exclude_self": bool,
    "tier": str,
    "predicate": str,
    "source": str,
    "record_id": str,
    "sequence": int,
}


def _coerce_body(body: dict) -> dict:
    """JSON arrays back to the tuples the frozen dataclasses expect."""
    coerced = dict(body)
    for name in ("entities", "texts"):
        if name in coerced:
            coerced[name] = tuple(_require_strings(coerced[name], name))
    if "candidates" in coerced:
        coerced["candidates"] = tuple(
            _fixed_str_tuple(item, 3, "candidates") for item in _require_list(coerced["candidates"], "candidates")
        )
    if "pairs" in coerced:
        coerced["pairs"] = tuple(
            _fixed_str_tuple(item, 2, "pairs") for item in _require_list(coerced["pairs"], "pairs")
        )
    if "records" in coerced:
        coerced["records"] = tuple(
            _personal_record(item)
            for item in _require_list(coerced["records"], "records")
        )
    if "tombstones" in coerced:
        coerced["tombstones"] = tuple(
            _tombstone_item(item)
            for item in _require_list(coerced["tombstones"], "tombstones")
        )
    if "epsilon" in coerced:
        value = coerced["epsilon"]
        if isinstance(value, bool) or not isinstance(value, (int, float)):
            raise ProtocolError(
                ERROR_BAD_REQUEST,
                f"epsilon must be a number, got {type(value).__name__}",
            )
        coerced["epsilon"] = float(value)
    for name, expected in _SCALAR_FIELDS.items():
        if name not in coerced:
            continue
        value = coerced[name]
        # bool is an int subclass; an int field must still reject true/false.
        if not isinstance(value, expected) or (
            expected is int and isinstance(value, bool)
        ):
            raise ProtocolError(
                ERROR_BAD_REQUEST,
                f"{name} must be {expected.__name__}, got {type(value).__name__}",
            )
    return coerced


def _require_list(value: Any, name: str) -> list:
    if not isinstance(value, (list, tuple)):
        raise ProtocolError(ERROR_BAD_REQUEST, f"{name} must be an array")
    return list(value)


def _require_strings(value: Any, name: str) -> list[str]:
    items = _require_list(value, name)
    for item in items:
        if not isinstance(item, str):
            raise ProtocolError(ERROR_BAD_REQUEST, f"{name} must contain strings")
    return items


def _fixed_str_tuple(value: Any, size: int, name: str) -> tuple[str, ...]:
    items = _require_strings(value, name)
    if len(items) != size:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"each {name} item must have {size} elements"
        )
    return tuple(items)


def _personal_record(item: Any) -> PersonalRecord:
    """One wire record object back into a hashable :class:`PersonalRecord`.

    Field pairs arrive as ``[key, value]`` arrays (JSON has no tuples) and
    both sides must be strings — anything richer belongs in the on-device
    pipeline, not the wire format.
    """
    if not isinstance(item, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "each record must be an object")
    record_id = item.get("record_id")
    source = item.get("source")
    if not isinstance(record_id, str) or not isinstance(source, str):
        raise ProtocolError(
            ERROR_BAD_REQUEST, "record record_id and source must be strings"
        )
    sequence = item.get("sequence", 0)
    if isinstance(sequence, bool) or not isinstance(sequence, int):
        raise ProtocolError(ERROR_BAD_REQUEST, "record sequence must be int")
    fields = tuple(
        _fixed_str_tuple(pair, 2, "record fields")
        for pair in _require_list(item.get("fields", []), "record fields")
    )
    return PersonalRecord(
        record_id=record_id, source=source, fields=fields, sequence=sequence
    )


def _tombstone_item(item: Any) -> tuple[str, str, int]:
    """A ``[source, record_id, sequence]`` tombstone triple."""
    items = _require_list(item, "tombstones")
    if len(items) != 3:
        raise ProtocolError(
            ERROR_BAD_REQUEST, "each tombstones item must have 3 elements"
        )
    source, record_id, sequence = items
    if not isinstance(source, str) or not isinstance(record_id, str):
        raise ProtocolError(
            ERROR_BAD_REQUEST, "tombstone source and record_id must be strings"
        )
    if isinstance(sequence, bool) or not isinstance(sequence, int):
        raise ProtocolError(ERROR_BAD_REQUEST, "tombstone sequence must be int")
    return (source, record_id, sequence)


# -- payload codec -------------------------------------------------------------
#
# Payloads stay native Python dataclasses in-process; these converters map
# them to/from JSON-native structures at the wire boundary.  from_wire is
# the exact inverse of to_wire for every type, so a response round-trips
# to equal payloads (annotation links drop their server-side candidate
# lists — a deliberate wire reduction, documented on AnnotateResponse).


def payload_to_wire(wire_type: str, payload: Any) -> Any:
    # Degraded partial payloads hole out failed entities with None; the
    # holes travel verbatim (JSON null) in every typed payload.
    if payload is None:
        return None
    if wire_type == "related":
        return [
            None if hits is None else [[entity, score] for entity, score in hits]
            for hits in payload
        ]
    if wire_type == "annotate":
        return [
            None if links is None else [_link_to_wire(link) for link in links]
            for links in payload
        ]
    if wire_type == "fact_rank":
        return [
            None if ranked is None else [dataclasses.asdict(fact) for fact in ranked]
            for ranked in payload
        ]
    if wire_type == "verify":
        return [
            None if verdict is None else dataclasses.asdict(verdict)
            for verdict in payload
        ]
    if wire_type == "knn":
        return [
            None if hits is None else [dataclasses.asdict(hit) for hit in hits]
            for hits in payload
        ]
    # walk / neighborhood / similarity payloads are JSON-native already.
    return payload


def payload_from_wire(wire_type: str, wire: Any) -> Any:
    if wire is None:
        return None
    try:
        if wire_type == "related":
            return [
                None
                if hits is None
                else [(str(entity), float(score)) for entity, score in hits]
                for hits in wire
            ]
        if wire_type == "annotate":
            return [
                None if links is None else [_link_from_wire(item) for item in links]
                for links in wire
            ]
        if wire_type == "fact_rank":
            from repro.services.fact_ranking import RankedFact

            return [
                None if ranked is None else [RankedFact(**fact) for fact in ranked]
                for ranked in wire
            ]
        if wire_type == "verify":
            from repro.services.fact_verification import Verdict

            return [
                None if verdict is None else Verdict(**verdict) for verdict in wire
            ]
        if wire_type == "knn":
            from repro.vector.index import SearchHit

            return [
                None if hits is None else [SearchHit(**hit) for hit in hits]
                for hits in wire
            ]
    except (TypeError, ValueError, KeyError) as exc:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"malformed {wire_type!r} payload: {exc}"
        ) from None
    return wire


def _link_to_wire(link) -> dict:
    # EntityLink.to_dict(): start/end/surface/entity/score/entity_type.
    # Candidate feature lists are server-side detail and stay off the wire.
    return link.to_dict()


def _link_from_wire(item: dict):
    from repro.annotation.mention import EntityLink, Mention

    if not isinstance(item, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "annotation link must be an object")
    try:
        return EntityLink(
            mention=Mention(
                start=int(item["start"]),
                end=int(item["end"]),
                surface=str(item["surface"]),
            ),
            entity=str(item["entity"]),
            score=float(item["score"]),
            entity_type=str(item.get("entity_type", "OTHER")),
        )
    except (KeyError, TypeError, ValueError) as exc:
        raise ProtocolError(
            ERROR_BAD_REQUEST, f"malformed annotation link: {exc}"
        ) from None


# -- response codec ------------------------------------------------------------


def encode_response(response: Response) -> bytes:
    """Serialise a response envelope (UTF-8 JSON bytes).

    The in-process ``exception`` field never crosses the wire — clients
    see only the structured error envelope.
    """
    envelope: dict[str, Any] = {
        "protocol": PROTOCOL_VERSION,
        "type": response.request_type,
        "status": response.status,
        "store_version": response.store_version,
        "timings": response.timings,
        "cached": response.cached,
    }
    if response.resilience:
        envelope["resilience"] = response.resilience
    # Only traced responses carry the id: untraced wire bytes stay
    # identical to pre-tracing builds (the byte-parity contract).
    if response.trace_id:
        envelope["trace_id"] = response.trace_id
    # Degraded envelopes carry BOTH: the usable (partial/stale) payload
    # and the structured error explaining what degraded.
    if response.status in (STATUS_OK, STATUS_DEGRADED):
        envelope["payload"] = payload_to_wire(response.request_type, response.payload)
    if response.status != STATUS_OK:
        error = response.error or ErrorInfo("internal", "request failed")
        envelope["error"] = {
            "code": error.code,
            "message": error.message,
            "retryable": error.retryable,
            "exception_type": error.exception_type,
        }
    return json.dumps(envelope, sort_keys=True).encode("utf-8")


def decode_response(data: bytes | str) -> Response:
    """Parse a response envelope into its typed :class:`Response`."""
    envelope = _parse_envelope(data)
    wire_type = envelope.get("type")
    if not isinstance(wire_type, str):
        raise ProtocolError(ERROR_BAD_REQUEST, "response envelope missing type")
    status = envelope.get("status")
    if status not in (STATUS_OK, STATUS_DEGRADED, STATUS_ERROR):
        raise ProtocolError(ERROR_BAD_REQUEST, f"unknown response status: {status!r}")
    timings = envelope.get("timings") or {}
    if not isinstance(timings, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "timings must be an object")
    resilience = envelope.get("resilience") or {}
    if not isinstance(resilience, dict):
        raise ProtocolError(ERROR_BAD_REQUEST, "resilience must be an object")
    error = None
    payload = None
    if status != STATUS_OK:
        raw = envelope.get("error")
        if not isinstance(raw, dict) or "code" not in raw:
            raise ProtocolError(ERROR_BAD_REQUEST, "error envelope missing code")
        error = ErrorInfo(
            code=str(raw["code"]),
            message=str(raw.get("message", "")),
            retryable=bool(raw.get("retryable", False)),
            exception_type=str(raw.get("exception_type", "")),
        )
    if status != STATUS_ERROR:
        payload = payload_from_wire(wire_type, envelope.get("payload"))
    cls = response_class(wire_type)
    return cls(
        request_type=wire_type,
        status=status,
        store_version=int(envelope.get("store_version", 0)),
        payload=payload,
        timings={str(k): float(v) for k, v in timings.items()},
        cached=bool(envelope.get("cached", False)),
        error=error,
        resilience={str(k): v for k, v in resilience.items()},
        trace_id=str(envelope.get("trace_id", "")),
    )


def error_response(
    wire_type: str,
    store_version: int,
    code: str,
    message: str,
    *,
    timings: dict[str, float] | None = None,
    exception: BaseException | None = None,
) -> Response:
    """A typed error envelope (the one shape every failure path produces).

    When the originating ``exception`` is attached, the error carries its
    retryability class and exception type onto the wire — clients decide
    whether a resubmit is worth it without parsing the message.
    """
    from repro.serving.resilience import error_fields

    retryable, exception_type = (
        error_fields(exception) if exception is not None else (False, "")
    )
    cls = response_class(wire_type)
    return cls(
        request_type=wire_type,
        status=STATUS_ERROR,
        store_version=store_version,
        timings=timings or {},
        error=ErrorInfo(
            code=code,
            message=message,
            retryable=retryable,
            exception_type=exception_type,
        ),
        exception=exception,
    )
