"""The serving facade: one front door over router, pool, batcher and cache.

This is the subsystem that turns the repo from a library into a service
(§4–5 of the paper: serving the grown KG to production traffic).  Every
knowledge service — graph queries, entity linking, fact ranking and
verification, similarity and k-NN — lands in one uniform dispatch::

    response = service.serve(request)   # any Request -> typed Response

Scatter/gather, micro-batching and the versioned :class:`QueryCache` are
*per-request-type policies* (declared on the request classes in
:mod:`repro.serving.requests`) instead of per-method code:

* ``splittable`` requests scatter over the :class:`ShardRouter`, fan out
  across the :class:`WorkerPool` and gather back in request order;
* single-text annotation rides the :class:`MicroBatcher` (cross-client
  coalescing), multi-text batches chunk straight onto the pool;
* ``cacheable()`` gates admission to the ``(store_version, request)``
  LRU — never-repeating requests (multi-text annotation) skip it.

Failures never leak tracebacks into the envelope: :meth:`serve` returns a
structured error response (the original exception rides along in-process
only, so the legacy delegating wrappers can re-raise it).  Every request
lands in per-type counters and bounded latency histograms surfaced by
:meth:`stats`.

Graceful degradation (``resilient=True``, the default): shard failures
retry under the pool's :class:`RetryPolicy` on healthy replicas, and a
shard that stays down past its budget *degrades* the response instead of
failing it — the envelope comes back ``status="degraded"`` with the
healthy shards' results in place, ``None`` holes for the failed
entities, and the underlying error attached.  A fully-failed cacheable
request falls back to the newest previous-generation answer
(serve-stale-on-error, :meth:`QueryCache.get_stale`) before surfacing an
error.  Per-shard circuit breakers fail persistent offenders fast;
:meth:`health` aggregates breaker and fleet state for ``/healthz``.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from pathlib import Path
from typing import Iterable, Iterator, Sequence

from repro.annotation.mention import EntityLink
from repro.common import tracing
from repro.common.metrics import MetricsRegistry, render_prometheus
from repro.kg.query_logs import QueryLogEntry
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import QueryCache
from repro.serving.protocol import error_response
from repro.serving.requests import (
    ERROR_BAD_REQUEST,
    ERROR_INTERNAL,
    ERROR_UNAVAILABLE,
    ERROR_UNSUPPORTED_TYPE,
    REQUEST_TYPES,
    STATUS_DEGRADED,
    STATUS_OK,
    TENANT_REQUEST_TYPES,
    AnnotateRequest,
    FactRankRequest,
    KnnRequest,
    NeighborhoodRequest,
    RelatedRequest,
    Request,
    Response,
    SimilarityRequest,
    TenantDeleteRequest,
    TenantSyncRequest,
    TenantUpsertRequest,
    VerifyRequest,
    WalkRequest,
    ErrorInfo,
    response_class,
)
from repro.serving.resilience import (
    OPEN,
    CircuitBreaker,
    RetryPolicy,
    ShardResultError,
    error_fields,
)
from repro.serving.router import DEFAULT_NUM_SHARDS, ShardRouter
from repro.serving.tenancy import TENANT_READ_TYPES, TenantNotFound, TenantRegistry
from repro.serving.worker import WORKER_MODES, WorkerConfig, WorkerPool

FULL_TIER = "full"


class PartialResultError(Exception):
    """Some shards failed past their retry budget; the rest answered.

    Raised by the scatter/gather path and caught by :meth:`serve`, which
    turns it into a ``degraded`` envelope: ``payload`` holds the merged
    results with ``None`` holes at the failed entities' positions, and
    ``cause`` is the first shard's terminal exception.
    """

    def __init__(
        self,
        payload: list,
        failed_positions: list[int],
        cause: BaseException,
        attempts: int,
    ) -> None:
        super().__init__(
            f"{len(failed_positions)} of {len(payload)} entities unavailable: "
            f"{type(cause).__name__}: {cause}"
        )
        self.payload = payload
        self.failed_positions = failed_positions
        self.cause = cause
        self.attempts = attempts


class ServingService:
    """Sharded, batched, cached KG serving over one snapshot bundle."""

    def __init__(
        self,
        bundle_dir: str | Path,
        *,
        mode: str = "inline",
        num_workers: int = 1,
        num_shards: int = DEFAULT_NUM_SHARDS,
        tier: str = FULL_TIER,
        cache_capacity: int = 2048,
        batch_max_docs: int = 16,
        batch_max_delay_s: float = 0.005,
        worker_config: WorkerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        resilient: bool = True,
        retry_policy: RetryPolicy | None = None,
        stale_capacity: int = 256,
        tenants_dir: str | Path | None = None,
        max_resident_tenants: int = 32,
    ) -> None:
        if mode not in WORKER_MODES:
            raise ValueError(f"mode must be one of {WORKER_MODES}, got {mode!r}")
        self.tier = tier
        self.num_shards = num_shards
        self.metrics = metrics or MetricsRegistry("serving")
        # resilient=False is the bare dispatch: no retries, no degradation,
        # no stale fallback — the control arm the overhead benchmark
        # measures the resilience layer's fault-free cost against.
        self.resilient = resilient
        self.retry_policy = retry_policy or (
            RetryPolicy() if resilient else RetryPolicy(max_attempts=1)
        )
        self._cache = QueryCache(
            cache_capacity,
            metrics=self.metrics,
            stale_capacity=stale_capacity if resilient else 0,
        )
        self._shard_breakers: dict[int, CircuitBreaker] = {}
        self._pool: WorkerPool | None = None
        self._router: ShardRouter | None = None
        # Bumped on every generation swap; serve() captures it up front
        # and skips its cache write when a swap happened mid-request, so
        # a result whose batched sub-work may have computed on the new
        # fleet is never cached under the old version (see _adopt).
        self._swap_epoch = 0
        self._worker_config = worker_config
        self._mode = mode
        self._num_workers = num_workers
        self._batcher = MicroBatcher(
            self._annotate_flush,
            max_batch=batch_max_docs,
            max_delay_s=batch_max_delay_s,
            metrics=self.metrics,
        )
        # Multi-tenant overlays: opt-in via tenants_dir.  The registry
        # shares this service's metrics registry and is (re)bound to the
        # live generation's CSR on every adopt.
        self._tenants: TenantRegistry | None = (
            TenantRegistry(
                tenants_dir,
                max_resident=max_resident_tenants,
                metrics=self.metrics,
            )
            if tenants_dir is not None
            else None
        )
        self._adopt(Path(bundle_dir))

    # -- lifecycle -----------------------------------------------------------

    def _adopt(self, bundle_dir: Path) -> None:
        pool = WorkerPool(
            bundle_dir,
            num_workers=self._num_workers,
            mode=self._mode,
            config=self._worker_config,
            metrics=self.metrics,
            retry_policy=self.retry_policy,
        )
        previous, self._pool = self._pool, pool
        self._swap_epoch += 1
        dictionary = pool.local_state.dictionary
        self._router = ShardRouter(
            self.num_shards,
            id_of=dictionary.get if dictionary is not None else None,
        )
        if previous is not None:
            previous.close()
        if self._tenants is not None:
            # Tenant overlays re-collapse lazily against the new base on
            # their next read; the swap itself stays O(1) per tenant.
            self._tenants.rebind_base(pool.local_state.engine.snapshot())
        # Structural invalidation: entries from other generations are
        # unreachable by key, and adopt_version frees their memory now.
        dropped = self._cache.adopt_version(pool.store_version)
        self.metrics.incr("serve.generations")
        self.metrics.gauge("serve.store_version", float(pool.store_version))
        if dropped:
            self.metrics.incr("serve.generation_invalidated", dropped)

    def adopt_generation(self, bundle_dir: str | Path) -> int:
        """Swap the fleet onto a new snapshot bundle.

        Workers for the new generation spin up first, the old pool shuts
        down after, and the query cache drops every entry whose
        ``store_version`` is not the new bundle's.  Returns the adopted
        ``store_version``.

        Requests racing the swap stay generation-consistent: each request
        captures one (version, pool, router) triple up front, so its
        results and cache writes all belong to a single generation — a
        result computed on the old fleet can never be cached under the
        new version.  A request that loses the race outright may fail
        with ``RuntimeError`` when the old pool shuts down under it;
        callers retry against the new generation.
        """
        self._batcher.flush()
        self._adopt(Path(bundle_dir))
        return self.store_version

    @property
    def store_version(self) -> int:
        """The snapshot generation currently served."""
        assert self._pool is not None
        return self._pool.store_version

    def close(self) -> None:
        """Drain pending annotation work and stop the workers."""
        self._batcher.flush()
        if self._tenants is not None:
            self._tenants.close()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ServingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- the uniform dispatch --------------------------------------------------

    def serve(
        self, request: Request, *, tenant: str | None = None, _swap_retries: int = 2
    ) -> Response:
        """Answer any request with a typed response envelope.

        The single entry point every transport calls (legacy facade
        methods, the asyncio gateway, the HTTP front door).  Never raises
        for request-level failures — the envelope carries a structured
        error instead (with the original exception attached in-process
        for delegating wrappers).

        ``tenant`` scopes the request to one tenant's overlay graph:
        walks and neighborhoods answer over shared + personal facts, and
        the tenant write/sync family applies to that tenant's durable
        store.  Tenant work never reaches the shared worker fleet — it
        dispatches to the :class:`TenantRegistry` here, before pool
        fan-out (isolation is enforced at dispatch, and again by the
        workers, which reject the family outright).

        Generation swaps drop zero requests: a request whose captured
        pool was shut down mid-flight by ``adopt_generation`` re-dispatches
        against the new generation (``_swap_retries`` bounds pathological
        back-to-back swaps) instead of surfacing the race as an error.

        Under an armed tracer the whole dispatch (including swap
        retries) runs inside one ``serve.request`` span and the envelope
        carries the trace id; disarmed, the only extra cost here is one
        ``None`` check.
        """
        if tracing.active() is None:
            response = self._serve_impl(request, _swap_retries, tenant)
            self.metrics.incr(f"serve.status.{response.status}")
            return response
        with tracing.span(
            "serve.request", request_type=type(request).__name__
        ) as span:
            response = self._serve_impl(request, _swap_retries, tenant)
            self.metrics.incr(f"serve.status.{response.status}")
            span.set_attribute("status", response.status)
            span.set_attribute("cached", response.cached)
            if tenant is not None:
                span.set_attribute("tenant", tenant)
            if span.recording:
                response.trace_id = span.trace_id
            return response

    def _serve_impl(
        self, request: Request, _swap_retries: int, tenant: str | None = None
    ) -> Response:
        started = time.perf_counter()
        timings: dict[str, float] = {}
        epoch = self._swap_epoch
        pool, router = self._pool, self._router
        assert pool is not None and router is not None
        version = pool.store_version
        type_name = type(request).__name__
        self.metrics.incr("serve.requests")
        self.metrics.incr(f"serve.requests.{type_name}")
        if not isinstance(request, REQUEST_TYPES):
            self.metrics.incr("serve.errors")
            timings["total_ms"] = _ms_since(started)
            return error_response(
                getattr(type(request), "wire_type", "unknown"),
                version,
                ERROR_UNSUPPORTED_TYPE,
                f"unsupported request type: {type_name}",
                timings=timings,
            )
        wire_type = type(request).wire_type
        if tenant is not None or isinstance(request, TENANT_REQUEST_TYPES):
            return self._serve_tenant(request, tenant, started, timings, epoch)
        resilience: dict[str, float] = {}
        cacheable = False
        # Everything after type dispatch sits under one except: even a
        # hostile request object (mistyped fields that defeat hashing in
        # the cache probe — the wire codec rejects those, but serve() is
        # also a public in-process API) must come back as an envelope.
        try:
            cacheable = request.cacheable()
            if cacheable:
                with _stage(timings, "cache_ms", "serve.cache") as cache_span:
                    cached = self._cache.get(version, request)
                    cache_span.set_attribute("hit", cached is not None)
                if cached is not None:
                    timings["total_ms"] = _ms_since(started)
                    return response_class(wire_type)(
                        request_type=wire_type,
                        status=STATUS_OK,
                        store_version=version,
                        payload=cached,
                        timings=timings,
                        cached=True,
                    )
            with self.metrics.hist_timed("serve.latency"), self.metrics.hist_timed(
                f"serve.latency.{type_name}"
            ):
                payload = self._execute(request, pool, router, timings, resilience)
            if cacheable:
                if epoch == self._swap_epoch:
                    self._cache.put(version, request, payload)
                else:
                    # A generation swap landed mid-request: parts of this
                    # result (e.g. a micro-batched annotate flush, which
                    # reads the live pool) may have computed on the new
                    # fleet.  Skipping the write is always safe; the cache
                    # itself also refuses cross-generation writes.
                    self.metrics.incr("serve.swap_races")
        except PartialResultError as exc:
            if pool is not self._pool and _swap_retries > 0:
                # The failure happened across a generation swap (the old
                # pool may have shut down under us): re-dispatch on the
                # new generation rather than degrade a healthy fleet.
                self.metrics.incr("serve.swap_retries")
                return self._serve_impl(request, _swap_retries - 1)
            # Graceful degradation: the healthy shards' answers go out with
            # None holes at the failed entities, plus the terminal error —
            # a partial answer beats a 500 for a read-only KG lookup.
            self.metrics.incr("serve.degraded")
            self.metrics.incr(f"serve.degraded.{type_name}")
            timings["total_ms"] = _ms_since(started)
            retryable, exception_type = error_fields(exc.cause)
            return response_class(wire_type)(
                request_type=wire_type,
                status=STATUS_DEGRADED,
                store_version=version,
                payload=exc.payload,
                timings=timings,
                error=ErrorInfo(
                    code=ERROR_UNAVAILABLE,
                    message=str(exc),
                    retryable=retryable,
                    exception_type=exception_type,
                ),
                resilience={
                    **resilience,
                    "attempts": float(exc.attempts),
                    "failed_entities": float(len(exc.failed_positions)),
                },
                exception=exc.cause,
            )
        except Exception as exc:
            if pool is not self._pool and _swap_retries > 0:
                # Lost the race with adopt_generation outright — the old
                # pool is gone.  Zero dropped requests: retry on the new
                # generation instead of answering unavailable.
                self.metrics.incr("serve.swap_retries")
                return self._serve_impl(request, _swap_retries - 1)
            if self.resilient and cacheable:
                # Serve-stale-on-error: fresh compute is gone past its
                # budget, but a previous generation answered this exact
                # request — degraded beats unavailable.
                stale = self._cache.get_stale(request)
                if stale is not None:
                    stale_version, stale_payload = stale
                    self.metrics.incr("serve.stale_served")
                    timings["total_ms"] = _ms_since(started)
                    retryable, exception_type = error_fields(exc)
                    return response_class(wire_type)(
                        request_type=wire_type,
                        status=STATUS_DEGRADED,
                        store_version=version,
                        payload=stale_payload,
                        timings=timings,
                        cached=True,
                        error=ErrorInfo(
                            code=ERROR_UNAVAILABLE,
                            message=f"{type(exc).__name__}: {exc}",
                            retryable=retryable,
                            exception_type=exception_type,
                        ),
                        resilience={
                            **resilience,
                            "stale": True,
                            "stale_version": float(stale_version),
                        },
                        exception=exc,
                    )
            self.metrics.incr("serve.errors")
            self.metrics.incr(f"serve.errors.{type_name}")
            timings["total_ms"] = _ms_since(started)
            return error_response(
                wire_type,
                version,
                ERROR_INTERNAL,
                f"{type(exc).__name__}: {exc}",
                timings=timings,
                exception=exc,
            )
        timings["total_ms"] = _ms_since(started)
        return response_class(wire_type)(
            request_type=wire_type,
            status=STATUS_OK,
            store_version=version,
            payload=payload,
            timings=timings,
            resilience=resilience,
        )

    def _execute(
        self,
        request: Request,
        pool: WorkerPool,
        router: ShardRouter,
        timings: dict[str, float],
        resilience: dict[str, float],
    ) -> list:
        """Compute one request's payload under its dispatch policy."""
        if isinstance(request, AnnotateRequest):
            return self._execute_annotate(request, pool, timings)
        if type(request).splittable:
            return self._execute_split(request, pool, router, timings, resilience)
        with _stage(timings, "compute_ms", "serve.compute"):
            if self.resilient:
                payload, attempts = pool.run_resilient(request)
                if attempts > 1:
                    resilience["attempts"] = float(attempts)
            else:
                payload = pool.submit(request).result()
        return payload

    def _serve_tenant(
        self,
        request: Request,
        tenant: str | None,
        started: float,
        timings: dict[str, float],
        epoch: int,
    ) -> Response:
        """Dispatch for everything tenant-scoped (reads, writes, syncs).

        Writes ride the tenant's own :class:`GenerationPublisher` (a ~ms
        delta publish); reads answer over the tenant overlay engine and
        cache under ``(store_version, (tenant, tenant_version), request)``
        — a tenant write structurally invalidates that tenant's entries
        (new ``tenant_version``) without touching anyone else's, and a
        shared generation swap invalidates everyone's (new
        ``store_version``), exactly like tenantless entries.
        """
        version = self.store_version
        wire_type = type(request).wire_type
        type_name = type(request).__name__
        registry = self._tenants

        def fail(code: str, message: str, exception: BaseException | None = None):
            self.metrics.incr("serve.errors")
            self.metrics.incr(f"serve.errors.{type_name}")
            timings["total_ms"] = _ms_since(started)
            return error_response(
                wire_type, version, code, message,
                timings=timings, exception=exception,
            )

        if registry is None:
            return fail(
                ERROR_UNAVAILABLE,
                "multi-tenant serving is not enabled (no tenants_dir configured)",
            )
        if tenant is None:
            return fail(
                ERROR_BAD_REQUEST,
                f"{type_name} requires a tenant envelope field",
            )
        try:
            if isinstance(request, TENANT_REQUEST_TYPES):
                with _stage(timings, "compute_ms", "serve.tenant", tenant=tenant):
                    if isinstance(request, TenantUpsertRequest):
                        payload = registry.upsert(tenant, request.records)
                    elif isinstance(request, TenantSyncRequest):
                        payload = registry.sync(
                            tenant,
                            records=request.records,
                            tombstones=request.tombstones,
                            epsilon=request.epsilon,
                        )
                    elif isinstance(request, TenantDeleteRequest):
                        payload = registry.delete(
                            tenant,
                            request.source,
                            request.record_id,
                            request.sequence,
                        )
                    else:  # pragma: no cover - family and branch move together
                        raise TypeError(f"unhandled tenant request: {type_name}")
                timings["total_ms"] = _ms_since(started)
                return response_class(wire_type)(
                    request_type=wire_type,
                    status=STATUS_OK,
                    store_version=version,
                    payload=payload,
                    timings=timings,
                )
            if not isinstance(request, TENANT_READ_TYPES):
                return fail(
                    ERROR_BAD_REQUEST,
                    f"{type_name} cannot be tenant-scoped "
                    "(only walks and neighborhoods answer over overlays)",
                )
            # One registry round-trip: the leased state yields the
            # tenant_version the cache key needs and stays pinned against
            # eviction for the whole read; the overlay engine is captured
            # lazily so cache hits never pay for it.
            with registry.lease(tenant) as state:
                tenant_key = (tenant, state.version)
                cacheable = request.cacheable()
                if cacheable:
                    with _stage(timings, "cache_ms", "serve.cache") as cache_span:
                        cached = self._cache.get(version, request, tenant=tenant_key)
                        cache_span.set_attribute("hit", cached is not None)
                    if cached is not None:
                        timings["total_ms"] = _ms_since(started)
                        return response_class(wire_type)(
                            request_type=wire_type,
                            status=STATUS_OK,
                            store_version=version,
                            payload=cached,
                            timings=timings,
                            cached=True,
                        )
                with self.metrics.hist_timed(
                    "serve.latency"
                ), self.metrics.hist_timed(f"serve.latency.{type_name}"):
                    with _stage(
                        timings, "compute_ms", "serve.tenant", tenant=tenant
                    ):
                        payload = registry.execute_on(
                            state.engine(registry.base()), request
                        )
            if cacheable and epoch == self._swap_epoch:
                self._cache.put(version, request, payload, tenant=tenant_key)
        except TenantNotFound as exc:
            return fail(ERROR_BAD_REQUEST, str(exc), exc)
        except Exception as exc:
            return fail(ERROR_INTERNAL, f"{type(exc).__name__}: {exc}", exc)
        timings["total_ms"] = _ms_since(started)
        return response_class(wire_type)(
            request_type=wire_type,
            status=STATUS_OK,
            store_version=version,
            payload=payload,
            timings=timings,
        )

    def _shard_breaker(self, shard: int) -> CircuitBreaker:
        """The (lazily created) circuit breaker guarding ``shard``."""
        breaker = self._shard_breakers.get(shard)
        if breaker is None:
            breaker = self._shard_breakers.setdefault(
                shard, CircuitBreaker(f"shard:{shard}", metrics=self.metrics)
            )
        return breaker

    def _execute_split(
        self,
        request: Request,
        pool: WorkerPool,
        router: ShardRouter,
        timings: dict[str, float],
        resilience: dict[str, float],
    ) -> list:
        """Scatter a splittable request over shards, gather in order.

        (version, pool, router) were captured by :meth:`serve`, so a
        generation swap mid-request can't split the fan-out across two
        snapshots or cache an old-fleet result under the new version.

        Under ``resilient`` dispatch each shard resolves through the
        pool's retry loop behind its own circuit breaker; shards that
        stay down past the budget raise :class:`PartialResultError` with
        the healthy results merged in place (the degraded envelope).
        """
        with _stage(timings, "scatter_ms", "serve.scatter") as scatter_span:
            parts = router.scatter_request(request)
            scatter_span.set_attribute("shards", len(parts))
        self.metrics.incr("serve.shard_fanout", len(parts))
        if not self.resilient:
            with _stage(timings, "compute_ms", "serve.compute"):
                futures = [
                    (positions, pool.submit(shard_request))
                    for positions, shard_request in parts
                ]
                shard_results = [
                    (positions, future.result()) for positions, future in futures
                ]
            with _stage(timings, "gather_ms", "serve.gather"):
                merged = ShardRouter.gather(len(request.entities), shard_results)
            return merged
        # Resilient fan-out.  Submit everything up front (breaker-gated:
        # a tripped shard fails fast instead of queueing doomed work),
        # then resolve each shard under the retry budget.  Each shard
        # gets its own (non-activated) span, activated piecewise around
        # its submit and resolve windows so worker spans and retry events
        # parent under the right shard without the shard spans nesting
        # into each other.
        compute_span = tracing.span("serve.compute")
        compute_started = time.perf_counter()
        try:
            shard_results, failed, attempts_total = self._fan_out(
                parts, pool, router
            )
        finally:
            elapsed = _ms_since(compute_started)
            timings["compute_ms"] = elapsed
            compute_span.set_attribute("stage_ms", elapsed)
            compute_span.finish()
        if attempts_total > len(shard_results):
            resilience["attempts"] = float(attempts_total)
        if not failed:
            with _stage(timings, "gather_ms", "serve.gather"):
                merged = ShardRouter.gather(len(request.entities), shard_results)
            return merged
        gather_started = time.perf_counter()
        if not shard_results:
            # Nothing answered: a plain error (serve() may still find a
            # stale previous-generation result for it).
            raise failed[0][1]
        merged = [None] * len(request.entities)
        for positions, results in shard_results:
            for position, result in zip(positions, results):
                merged[position] = result
        failed_positions = sorted(
            position for positions, _ in failed for position in positions
        )
        timings["gather_ms"] = _ms_since(gather_started)
        raise PartialResultError(
            merged, failed_positions, failed[0][1], attempts_total
        )

    def _fan_out(
        self,
        parts: list[tuple[list[int], Request]],
        pool: WorkerPool,
        router: ShardRouter,
    ) -> tuple[
        list[tuple[list[int], list]],
        list[tuple[list[int], BaseException]],
        int,
    ]:
        """Submit + resolve every shard part; ``(results, failures, attempts)``."""
        tracer = tracing.active()
        pending: list[tuple[list[int], Request, CircuitBreaker, object, object]] = []
        for positions, shard_request in parts:
            shard = router.shard_of(shard_request.entities[0])
            breaker = self._shard_breaker(shard)
            shard_span = (
                tracer.start_span(
                    "serve.shard",
                    {"shard": shard, "entities": len(shard_request.entities)},
                    activate=False,
                )
                if tracer is not None
                else None
            )
            try:
                with tracing.using(shard_span):
                    breaker.check()
                    entry = pool.submit(shard_request)
            except Exception as exc:  # CircuitOpenError, or a failed submit
                entry = exc
                if shard_span is not None:
                    shard_span.set_attribute("error", type(exc).__name__)
                    shard_span.finish()
                    shard_span = None
            pending.append((positions, shard_request, breaker, entry, shard_span))
        shard_results: list[tuple[list[int], list]] = []
        failed: list[tuple[list[int], BaseException]] = []
        attempts_total = 0
        for positions, shard_request, breaker, entry, shard_span in pending:
            if isinstance(entry, BaseException):
                failed.append((positions, entry))
                continue
            try:
                with tracing.using(shard_span):
                    result, attempts = self._resolve_shard(
                        pool, shard_request, entry, breaker
                    )
            except Exception as exc:
                failed.append((positions, exc))
                if shard_span is not None:
                    shard_span.set_attribute("error", type(exc).__name__)
                    shard_span.finish()
                continue
            if shard_span is not None:
                shard_span.set_attribute("attempts", attempts)
                shard_span.finish()
            attempts_total += attempts
            shard_results.append((positions, result))
        return shard_results, failed, attempts_total

    def _resolve_shard(
        self,
        pool: WorkerPool,
        shard_request: Request,
        future,
        breaker: CircuitBreaker,
    ) -> tuple[list, int]:
        """One shard's result under retry + breaker + length validation.

        The pool's retry loop already covers crashes and transient
        errors; this wrapper additionally validates the *shape* of a
        nominally-successful result — a corrupt (truncated) shard
        response is retryable too, because a healthy replica answers
        correctly.  Outcomes feed the shard's breaker either way.
        """
        policy = pool.retry_policy
        expected = len(shard_request.entities)
        attempts = 0
        while True:
            try:
                result, waited = pool.resolve(shard_request, future)
            except Exception:
                breaker.record_failure()
                raise
            attempts += waited
            if len(result) == expected:
                breaker.record_success()
                return result, attempts
            self.metrics.incr("serve.shard_corrupt")
            tracing.event(
                "shard.corrupt", returned=len(result), expected=expected
            )
            breaker.record_failure()
            error = ShardResultError(
                f"shard returned {len(result)} results for {expected} entities"
            )
            if attempts >= policy.max_attempts:
                raise error
            time.sleep(policy.backoff_s(attempts, key=repr(shard_request)))
            breaker.check()
            future = pool.submit(shard_request)

    def _execute_annotate(
        self, request: AnnotateRequest, pool: WorkerPool, timings: dict[str, float]
    ) -> list[list[EntityLink]]:
        """Annotation policy: batcher for one text, chunked fan-out for many.

        A lone text rides the micro-batcher — concurrent callers' texts
        coalesce into one cross-document scoring pass, and the calling
        thread drains the queue so it never waits on the delay threshold.
        Multi-text requests chunk at the micro-batch size and dispatch to
        the pool concurrently; each worker scores its chunk as one batch.
        Results come back in input order either way.
        """
        with _stage(
            timings, "compute_ms", "serve.compute", texts=len(request.texts)
        ):
            if not request.texts:
                return []
            if len(request.texts) == 1:
                if request.tier != self.tier:
                    # The micro-batcher coalesces at the service's default
                    # tier only; an off-tier single text dispatches direct
                    # so the requested tier is honoured (and cached under
                    # the right key).
                    return pool.run(request)
                future = self._batcher.submit(request.texts[0])
                self._batcher.flush()
                return [future.result()]
            size = self._batcher.max_batch
            texts = list(request.texts)
            chunks = [texts[start : start + size] for start in range(0, len(texts), size)]
            chunk_results = pool.map(
                [
                    AnnotateRequest(texts=tuple(chunk), tier=request.tier)
                    for chunk in chunks
                ]
            )
            return [links for chunk in chunk_results for links in chunk]

    # -- legacy facade methods (thin delegation over serve()) ------------------

    def random_walks(
        self,
        entities: Sequence[str],
        walk_length: int = 8,
        walks_per_entity: int = 4,
        seed: int = 0,
    ) -> list[list[list[str]]]:
        """Per-entity random walks (see ``entity_walk_seed`` semantics)."""
        return self.serve(
            WalkRequest(
                entities=tuple(entities),
                walk_length=walk_length,
                walks_per_entity=walks_per_entity,
                seed=seed,
            )
        ).result()

    def neighborhood(
        self, entities: Sequence[str], hops: int = 1
    ) -> list[list[str]]:
        """Sorted k-hop neighborhood per entity."""
        return self.serve(
            NeighborhoodRequest(entities=tuple(entities), hops=hops)
        ).result()

    def related_entities(
        self, entities: Sequence[str], k: int = 10
    ) -> list[list[tuple[str, float]]]:
        """Top-k traversal-embedding related entities per seed entity."""
        return self.serve(RelatedRequest(entities=tuple(entities), k=k)).result()

    def annotate(self, text: str) -> list[EntityLink]:
        """Entity links for one text (coalesced with concurrent callers)."""
        return self.serve(
            AnnotateRequest(texts=(text,), tier=self.tier)
        ).result()[0]

    def annotate_many(self, texts: Sequence[str]) -> list[list[EntityLink]]:
        """Entity links for many texts: batched across documents, spread
        over the worker fleet."""
        return self.serve(
            AnnotateRequest(texts=tuple(texts), tier=self.tier)
        ).result()

    def rank_facts(self, subjects: Sequence[str], predicate: str) -> list[list]:
        """Importance-ranked values of ``(subject, predicate, ?)`` per subject."""
        return self.serve(
            FactRankRequest(entities=tuple(subjects), predicate=predicate)
        ).result()

    def verify_facts(self, candidates: Sequence[tuple[str, str, str]]) -> list:
        """Calibrated verdicts for candidate triples (one batched pass)."""
        return self.serve(
            VerifyRequest(candidates=tuple(tuple(c) for c in candidates))
        ).result()

    def similarity(self, pairs: Sequence[tuple[str, str]]) -> list[float]:
        """Cosine similarity per entity pair (0.0 for unknown entities)."""
        return self.serve(
            SimilarityRequest(pairs=tuple(tuple(p) for p in pairs))
        ).result()

    def knn(self, entities: Sequence[str], k: int = 10) -> list[list]:
        """k nearest embedding-space entities per seed entity."""
        return self.serve(KnnRequest(entities=tuple(entities), k=k)).result()

    def _annotate_flush(self, texts: list[str]) -> list[list[EntityLink]]:
        """MicroBatcher sink: one pooled cross-document annotation call."""
        pool = self._pool
        assert pool is not None
        return pool.run(AnnotateRequest(texts=tuple(texts), tier=self.tier))

    # -- cache warming ---------------------------------------------------------

    def warm(self, requests: Iterable[Request]) -> int:
        """Pre-compute ``requests`` into the query cache; returns count served.

        Non-cacheable and already-cached requests are skipped.  Failed
        requests are skipped too (warming must never take the service
        down); they stay un-cached and will surface their error to the
        first real caller.
        """
        warmed = 0
        for request in requests:
            if not (isinstance(request, REQUEST_TYPES) and request.cacheable()):
                continue
            if self._cache.get(self.store_version, request) is not None:
                continue
            if self.serve(request).ok:
                warmed += 1
        self.metrics.incr("serve.cache_warmed", warmed)
        return warmed

    def warm_from_query_log(
        self, entries: Sequence[QueryLogEntry], *, min_count: int = 2, limit: int = 256
    ) -> int:
        """Warm the cache from real traffic traces (ROADMAP "cache warming").

        Aggregates *answered* ``(entity, predicate)`` lookups from a
        :mod:`repro.kg.query_logs` trace and pre-serves the fact-ranking
        request each hot pair maps to — the query shape an assistant
        issues when it re-asks a popular question.  Unanswered pairs are
        demand for *missing* facts (ODKE's reactive path) and nothing in
        the store can answer them, so they are not warmed.
        """
        return self.warm(
            requests_from_query_log(entries, min_count=min_count, limit=limit)
        )

    # -- observability ---------------------------------------------------------

    def health(self) -> dict[str, object]:
        """Liveness/readiness snapshot for the gateway's ``/healthz``.

        ``healthy`` goes false when every circuit breaker is open — the
        whole fleet is failing and callers should route elsewhere — or
        when no worker is alive.  Individual open breakers (one bad
        shard) keep the service healthy-but-degraded.
        """
        pool = self._pool
        assert pool is not None
        breakers: dict[str, str] = {"pool": pool.breaker.state}
        for shard, breaker in sorted(self._shard_breakers.items()):
            breakers[f"shard:{shard}"] = breaker.state
        all_open = all(state == OPEN for state in breakers.values())
        live = pool.live_workers()
        healthy = live > 0 and not all_open
        return {
            "healthy": healthy,
            "status": "ok" if healthy else "unhealthy",
            "store_version": self.store_version,
            "mode": pool.mode,
            "workers": pool.num_workers,
            "live_workers": live,
            "respawns": int(pool.stats().get("pool.executor_respawns", 0.0)),
            "breakers": breakers,
        }

    def stats(self) -> dict[str, float | str]:
        """Requests, latency, hit rates and fleet shape, flattened.

        Per-request-type counters (``counter.serve.requests.<Type>``) and
        latency histograms (``hist.serve.latency.<Type>.p95_s``) ride the
        registry snapshot; ``serve.p95_s``/``serve.p50_s`` surface the
        overall request-path histogram directly.
        """
        out: dict[str, float | str] = dict(self.metrics.snapshot())
        assert self._pool is not None
        # Pool-computed gauges (live workers, respawns, breaker state) —
        # the raw counters already share this registry.
        out.update(
            (key, value)
            for key, value in self._pool.stats().items()
            if key.startswith("pool.")
        )
        for shard, breaker in sorted(self._shard_breakers.items()):
            snap = breaker.snapshot()
            out[f"serve.breaker.shard{shard}.state"] = snap["state"]
            out[f"serve.breaker.shard{shard}.transitions"] = snap["transitions"]
        latency = self.metrics.histograms.get("serve.latency")
        out["serve.p50_s"] = latency.quantile(0.50) if latency is not None else 0.0
        out["serve.p95_s"] = latency.quantile(0.95) if latency is not None else 0.0
        out["serve.workers"] = float(self._pool.num_workers)
        out["serve.mode"] = self._pool.mode
        out["serve.shards"] = float(self.num_shards)
        out["serve.store_version"] = float(self.store_version)
        out["serve.cache_entries"] = float(len(self._cache))
        out["serve.cache_hits"] = float(self._cache.hits)
        out["serve.cache_misses"] = float(self._cache.misses)
        out["serve.cache_evictions"] = float(self._cache.evictions)
        out["serve.cache_hit_rate"] = self._cache.hit_rate
        out["serve.batch_pending"] = float(self._batcher.pending)
        if self._tenants is not None:
            out["serve.tenants_resident"] = float(self._tenants.resident_count())
            out["serve.tenants_evictions"] = float(self._tenants.evictions)
        return out

    def cache_family_stats(self) -> dict[str, dict[str, int]]:
        """Per-request-family cache hit/miss/stale counts (see QueryCache)."""
        return self._cache.family_stats()

    # Counter-key prefixes whose dynamic suffixes (request type names,
    # breaker edges) become one labeled Prometheus family each, instead of
    # minting a new metric name per suffix.
    PROMETHEUS_FAMILIES = {
        "serve.requests.": ("serve_requests_by_type", "type"),
        "serve.status.": ("serve_responses_by_status", "status"),
        "serve.errors.": ("serve_errors_by_type", "type"),
        "serve.degraded.": ("serve_degraded_by_type", "type"),
        "pool.requests.": ("pool_requests_by_type", "type"),
        "breaker.transitions.": ("breaker_transitions_by_edge", "edge"),
        # Per-request-family cache accounting (QueryCache.get/get_stale).
        "cache.hits.": ("cache_hits_by_type", "type"),
        "cache.misses.": ("cache_misses_by_type", "type"),
        "cache.stale_hits.": ("cache_stale_hits_by_type", "type"),
        "cache.stale_misses.": ("cache_stale_misses_by_type", "type"),
        # Tenant registry lifecycle + traffic counters.
        "tenants.": ("tenant_ops_by_kind", "kind"),
    }

    def prometheus_metrics(self) -> str:
        """This service's registry as Prometheus text exposition.

        The shared registry (serve/pool/cache/batcher/breaker counters
        and histograms) renders directly; point-in-time state the
        registry does not hold — cache occupancy and hit counts, fleet
        width, per-breaker state as one-hot series — rides along as
        extra gauges.  This is the body of the gateway's ``/metrics``.
        """
        assert self._pool is not None
        extra: dict[str, float] = {
            "serve.store_version": float(self.store_version),
            "serve.cache_entries": float(len(self._cache)),
            "serve.cache_hits": float(self._cache.hits),
            "serve.cache_misses": float(self._cache.misses),
            "serve.cache_evictions": float(self._cache.evictions),
            "serve.workers": float(self._pool.num_workers),
            "serve.live_workers": float(self._pool.live_workers()),
            "serve.shards": float(self.num_shards),
            "serve.batch_pending": float(self._batcher.pending),
        }
        if self._tenants is not None:
            extra["serve.tenants_resident"] = float(self._tenants.resident_count())
        tracer = tracing.active()
        if tracer is not None:
            for key, value in tracer.counters().items():
                extra[f"tracing.{key}"] = float(value)
        body = render_prometheus(
            self.metrics,
            families=self.PROMETHEUS_FAMILIES,
            extra_gauges=extra,
        )
        # Breaker state is categorical; expose it one-hot, the idiomatic
        # Prometheus encoding for state machines.
        lines = ["# TYPE kg_breaker_state gauge"]
        breakers: list[tuple[str, CircuitBreaker]] = [("pool", self._pool.breaker)]
        breakers.extend(
            (f"shard:{shard}", breaker)
            for shard, breaker in sorted(self._shard_breakers.items())
        )
        for name, breaker in breakers:
            state = breaker.state
            for candidate in ("closed", "open", "half_open"):
                flag = 1 if candidate == state else 0
                lines.append(
                    f'kg_breaker_state{{breaker="{name}",state="{candidate}"}} {flag}'
                )
        return body + "\n".join(lines) + "\n"


def requests_from_query_log(
    entries: Sequence[QueryLogEntry], *, min_count: int = 2, limit: int = 256
) -> list[Request]:
    """Cacheable requests implied by a query-log trace, hottest first.

    Each answered ``(entity, predicate)`` pair seen at least ``min_count``
    times becomes one single-subject :class:`FactRankRequest` — the exact
    key a repeat of that lookup will probe the cache with.
    """
    from collections import Counter

    counts: Counter[tuple[str, str]] = Counter(
        (entry.entity, entry.predicate) for entry in entries if entry.answered
    )
    hot = [
        (pair, count)
        for pair, count in counts.items()
        if count >= min_count
    ]
    hot.sort(key=lambda item: (-item[1], item[0]))
    return [
        FactRankRequest(entities=(entity,), predicate=predicate)
        for (entity, predicate), _count in hot[:limit]
    ]


def _ms_since(started: float) -> float:
    return (time.perf_counter() - started) * 1000.0


@contextmanager
def _stage(
    timings: dict[str, float], key: str, span_name: str, **attributes
) -> Iterator[object]:
    """One dispatch stage: a ``timings`` entry and (armed) a span, from
    the *same* measurement.

    The span's ``stage_ms`` attribute is set to the exact value written
    into ``timings[key]`` — not a second clock read — which is what makes
    trace/envelope reconciliation an equality, not an approximation.
    """
    span_obj = tracing.span(span_name, **attributes)
    started = time.perf_counter()
    try:
        yield span_obj
    finally:
        elapsed = _ms_since(started)
        timings[key] = elapsed
        span_obj.set_attribute("stage_ms", elapsed)
        span_obj.finish()


def save_and_serve(
    store, directory: str | Path, **service_kwargs
) -> ServingService:
    """Persist ``store`` as a bundle under ``directory`` and serve it.

    Convenience for tests and small deployments: the construction-side
    :func:`save_snapshot` and the serving-side :class:`ServingService`
    in one call.
    """
    from repro.kg.persistence import save_snapshot

    save_snapshot(store, directory)
    return ServingService(directory, **service_kwargs)
