"""The serving facade: one front door over router, pool, batcher and cache.

This is the subsystem that turns the repo from a library into a service
(§4–5 of the paper: serving the grown KG to production traffic).  A
:class:`ServingService` owns

* a :class:`~repro.serving.worker.WorkerPool` of bundle replicas
  (inline / threads / subprocesses),
* a :class:`~repro.serving.router.ShardRouter` that partitions
  multi-entity requests over the snapshot's int32 id space and merges
  per-shard results back into request order,
* a :class:`~repro.serving.batcher.MicroBatcher` that coalesces
  annotation texts across document and client boundaries into single
  cross-document scoring passes, and
* a :class:`~repro.serving.cache.QueryCache` keyed by
  ``(store_version, request)`` — adopting a new snapshot generation
  purges every stale-generation entry.

Every public call lands in the request counters and the bounded latency
histogram surfaced by :meth:`stats`.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.annotation.mention import EntityLink
from repro.common.metrics import MetricsRegistry
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import QueryCache
from repro.serving.requests import (
    AnnotateRequest,
    NeighborhoodRequest,
    RelatedRequest,
    Request,
    WalkRequest,
    sub_request,
)
from repro.serving.router import DEFAULT_NUM_SHARDS, ShardRouter
from repro.serving.worker import WORKER_MODES, WorkerConfig, WorkerPool

FULL_TIER = "full"


class ServingService:
    """Sharded, batched, cached KG serving over one snapshot bundle."""

    def __init__(
        self,
        bundle_dir: str | Path,
        *,
        mode: str = "inline",
        num_workers: int = 1,
        num_shards: int = DEFAULT_NUM_SHARDS,
        tier: str = FULL_TIER,
        cache_capacity: int = 2048,
        batch_max_docs: int = 16,
        batch_max_delay_s: float = 0.005,
        worker_config: WorkerConfig | None = None,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if mode not in WORKER_MODES:
            raise ValueError(f"mode must be one of {WORKER_MODES}, got {mode!r}")
        self.tier = tier
        self.num_shards = num_shards
        self.metrics = metrics or MetricsRegistry("serving")
        self._cache = QueryCache(cache_capacity, metrics=self.metrics)
        self._pool: WorkerPool | None = None
        self._router: ShardRouter | None = None
        self._worker_config = worker_config
        self._mode = mode
        self._num_workers = num_workers
        self._batcher = MicroBatcher(
            self._annotate_flush,
            max_batch=batch_max_docs,
            max_delay_s=batch_max_delay_s,
            metrics=self.metrics,
        )
        self._adopt(Path(bundle_dir))

    # -- lifecycle -----------------------------------------------------------

    def _adopt(self, bundle_dir: Path) -> None:
        pool = WorkerPool(
            bundle_dir,
            num_workers=self._num_workers,
            mode=self._mode,
            config=self._worker_config,
            metrics=self.metrics,
        )
        previous, self._pool = self._pool, pool
        dictionary = pool.local_state.dictionary
        self._router = ShardRouter(
            self.num_shards,
            id_of=dictionary.get if dictionary is not None else None,
        )
        if previous is not None:
            previous.close()
        # Structural invalidation: entries from other generations are
        # unreachable by key, and adopt_version frees their memory now.
        dropped = self._cache.adopt_version(pool.store_version)
        self.metrics.incr("serve.generations")
        self.metrics.gauge("serve.store_version", float(pool.store_version))
        if dropped:
            self.metrics.incr("serve.generation_invalidated", dropped)

    def adopt_generation(self, bundle_dir: str | Path) -> int:
        """Swap the fleet onto a new snapshot bundle.

        Workers for the new generation spin up first, the old pool shuts
        down after, and the query cache drops every entry whose
        ``store_version`` is not the new bundle's.  Returns the adopted
        ``store_version``.

        Requests racing the swap stay generation-consistent: each request
        captures one (version, pool, router) triple up front, so its
        results and cache writes all belong to a single generation — a
        result computed on the old fleet can never be cached under the
        new version.  A request that loses the race outright may fail
        with ``RuntimeError`` when the old pool shuts down under it;
        callers retry against the new generation.
        """
        self._batcher.flush()
        self._adopt(Path(bundle_dir))
        return self.store_version

    @property
    def store_version(self) -> int:
        """The snapshot generation currently served."""
        assert self._pool is not None
        return self._pool.store_version

    def close(self) -> None:
        """Drain pending annotation work and stop the workers."""
        self._batcher.flush()
        if self._pool is not None:
            self._pool.close()

    def __enter__(self) -> "ServingService":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- traversal / lookup requests ------------------------------------------

    def random_walks(
        self,
        entities: Sequence[str],
        walk_length: int = 8,
        walks_per_entity: int = 4,
        seed: int = 0,
    ) -> list[list[list[str]]]:
        """Per-entity random walks (see ``entity_walk_seed`` semantics)."""
        return self._serve_split(
            WalkRequest(
                entities=tuple(entities),
                walk_length=walk_length,
                walks_per_entity=walks_per_entity,
                seed=seed,
            )
        )

    def neighborhood(
        self, entities: Sequence[str], hops: int = 1
    ) -> list[list[str]]:
        """Sorted k-hop neighborhood per entity."""
        return self._serve_split(
            NeighborhoodRequest(entities=tuple(entities), hops=hops)
        )

    def related_entities(
        self, entities: Sequence[str], k: int = 10
    ) -> list[list[tuple[str, float]]]:
        """Top-k traversal-embedding related entities per seed entity."""
        return self._serve_split(RelatedRequest(entities=tuple(entities), k=k))

    # -- annotation -----------------------------------------------------------

    def annotate(self, text: str) -> list[EntityLink]:
        """Entity links for one text (coalesced with concurrent callers).

        The text rides through the micro-batcher: when other threads have
        texts in flight, they score in one cross-document batch.  The
        calling thread then drains the queue — a lone caller never waits
        on the delay threshold.
        """
        request = AnnotateRequest(texts=(text,), tier=self.tier)
        # One generation per request: version is captured before compute,
        # so a concurrent adopt_generation can never get an old-fleet
        # result cached under the new version (worst case a late write
        # lands under the old version — unreachable, LRU-evicted).
        version = self.store_version
        cached = self._cache.get(version, request)
        if cached is not None:
            self.metrics.incr("serve.requests")
            return cached
        with self.metrics.hist_timed("serve.latency"):
            self.metrics.incr("serve.requests")
            future = self._batcher.submit(text)
            self._batcher.flush()
            links = future.result()
        self._cache.put(version, request, links)
        return links

    def annotate_many(self, texts: Sequence[str]) -> list[list[EntityLink]]:
        """Entity links for many texts: batched across documents, spread
        over the worker fleet.

        Texts are chunked at the micro-batch size; chunks dispatch to the
        pool concurrently, and each worker scores its chunk as one
        cross-document batch.  Results come back in input order.
        """
        texts = list(texts)
        if not texts:
            return []
        # Bulk results are deliberately NOT cached: the key would pin
        # every input text plus every link list as one LRU entry, and a
        # real traffic mix essentially never repeats the exact same text
        # tuple.  Single-text annotate() caching covers the repeats that
        # do happen.
        with self.metrics.hist_timed("serve.latency"):
            self.metrics.incr("serve.requests")
            pool = self._pool
            assert pool is not None
            size = self._batcher.max_batch
            chunks = [texts[start : start + size] for start in range(0, len(texts), size)]
            chunk_results = pool.map(
                [
                    AnnotateRequest(texts=tuple(chunk), tier=self.tier)
                    for chunk in chunks
                ]
            )
            return [links for chunk in chunk_results for links in chunk]

    def _annotate_flush(self, texts: list[str]) -> list[list[EntityLink]]:
        """MicroBatcher sink: one pooled cross-document annotation call."""
        pool = self._pool
        assert pool is not None
        return pool.run(AnnotateRequest(texts=tuple(texts), tier=self.tier))

    # -- internals -------------------------------------------------------------

    def _serve_split(self, request: Request) -> list:
        """Serve a splittable request: cache → scatter → fan out → gather.

        (version, pool, router) are captured once: a generation swap
        mid-request can't split the fan-out across two snapshots or cache
        an old-fleet result under the new version.
        """
        pool, router = self._pool, self._router
        assert pool is not None and router is not None
        version = pool.store_version
        cached = self._cache.get(version, request)
        if cached is not None:
            self.metrics.incr("serve.requests")
            return cached
        with self.metrics.hist_timed("serve.latency"):
            self.metrics.incr("serve.requests")
            parts = router.scatter(request.entities)
            self.metrics.incr("serve.shard_fanout", len(parts))
            futures = [
                (positions, pool.submit(sub_request(request, members)))
                for _shard, positions, members in parts
            ]
            merged = ShardRouter.gather(
                len(request.entities),
                [(positions, future.result()) for positions, future in futures],
            )
        self._cache.put(version, request, merged)
        return merged

    # -- observability ---------------------------------------------------------

    def stats(self) -> dict[str, float | str]:
        """Requests, latency, hit rates and fleet shape, flattened."""
        out: dict[str, float | str] = dict(self.metrics.snapshot())
        assert self._pool is not None
        out["serve.workers"] = float(self._pool.num_workers)
        out["serve.mode"] = self._pool.mode
        out["serve.shards"] = float(self.num_shards)
        out["serve.store_version"] = float(self.store_version)
        out["serve.cache_entries"] = float(len(self._cache))
        out["serve.cache_hits"] = float(self._cache.hits)
        out["serve.cache_misses"] = float(self._cache.misses)
        out["serve.cache_evictions"] = float(self._cache.evictions)
        out["serve.cache_hit_rate"] = self._cache.hit_rate
        out["serve.batch_pending"] = float(self._batcher.pending)
        return out


def save_and_serve(
    store, directory: str | Path, **service_kwargs
) -> ServingService:
    """Persist ``store`` as a bundle under ``directory`` and serve it.

    Convenience for tests and small deployments: the construction-side
    :func:`save_snapshot` and the serving-side :class:`ServingService`
    in one call.
    """
    from repro.kg.persistence import save_snapshot

    save_snapshot(store, directory)
    return ServingService(directory, **service_kwargs)
