"""Asyncio gateway: the network front door of the serving platform.

The PR-4 :class:`~repro.serving.service.ServingService` is synchronous —
futures already flow through the worker pool, only the facade blocks.
This module bridges that facade to ``asyncio`` and puts a real network
service in front of it, with the admission machinery a low-latency API
needs under heavy traffic (§4: one serving platform powering every
knowledge-based service):

* **bounded admission** — at most ``max_pending`` requests may be in the
  gateway at once; request ``max_pending + 1`` is *rejected immediately*
  with an ``overloaded`` error envelope instead of queueing without
  bound (backpressure the client can see and retry against);
* **concurrency cap** — of the admitted requests, at most
  ``max_concurrency`` execute on the facade simultaneously (one executor
  thread each, bridging the pool's futures to awaitables); the rest
  await a semaphore;
* **per-request deadline** — an admitted request that exceeds its
  deadline resolves to a ``deadline_exceeded`` envelope (the worker's
  in-flight computation finishes and is discarded; with a cacheable
  request its result still lands in the query cache for the retry);
* **load shedding** — past ``shed_fraction`` of the pending budget the
  gateway starts rejecting the *cheap-to-recompute* request classes
  (graph walks, neighborhoods, similarity — pure reads a client retries
  for microseconds of worker time) so the remaining headroom goes to the
  expensive classes (annotation, ranking, verification) whose retries
  actually cost compute.  The shed policy is declared per request class
  (``cheap_to_recompute``), not hard-coded here.

Entry points:

* :meth:`AsyncGateway.serve_async` — one request, one awaitable envelope;
* :meth:`AsyncGateway.serve_stream` — an async iterator over many
  requests: all of them throttled through the concurrency cap, envelopes
  yielded in request order as they complete (streaming batch);
* :class:`GatewayHTTPServer` — a minimal stdlib ``asyncio`` HTTP/1.1
  server speaking the JSON wire protocol (:mod:`repro.serving.protocol`):
  ``POST /v1/query`` with a request envelope body, plus ``GET /healthz``
  and ``GET /stats``.  ``python -m repro.serving.gateway <bundle>`` boots
  it — the repo is drivable with ``curl``.

Every failure crosses the boundary as a structured error envelope; raw
tracebacks stay in the server process.
"""

from __future__ import annotations

import argparse
import asyncio
import contextvars
import functools
import json
import time
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from typing import AsyncIterator, Iterable, Sequence

from repro.common import tracing
from repro.common.logging import get_logger
from repro.common.metrics import MetricsRegistry
from repro.serving import faults
from repro.serving.protocol import (
    ProtocolError,
    encode_response,
    decode_request_envelope,
    error_response,
)
from repro.serving.requests import (
    ERROR_BAD_REQUEST,
    ERROR_DEADLINE_EXCEEDED,
    ERROR_OVERLOADED,
    ERROR_UNSUPPORTED_TYPE,
    ERROR_UNSUPPORTED_VERSION,
    ERROR_INTERNAL,
    Request,
    Response,
)
from repro.serving.service import ServingService

DEFAULT_MAX_CONCURRENCY = 8
DEFAULT_MAX_PENDING = 64

# HTTP status per envelope error code (ok envelopes are always 200: the
# protocol's status field is authoritative, HTTP codes are a courtesy to
# curl and load balancers).
_HTTP_STATUS_BY_CODE = {
    ERROR_BAD_REQUEST: 400,
    ERROR_UNSUPPORTED_VERSION: 400,
    ERROR_UNSUPPORTED_TYPE: 400,
    ERROR_OVERLOADED: 503,
    ERROR_DEADLINE_EXCEEDED: 504,
    ERROR_INTERNAL: 500,
}
_HTTP_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    500: "Internal Server Error",
    503: "Service Unavailable",
    504: "Gateway Timeout",
}

MAX_REQUEST_BYTES = 8 * 1024 * 1024

# /debug/traces response size caps (the tracer's ring may hold more).
DEBUG_TRACES_RECENT = 32
DEBUG_TRACES_SLOWEST = 16

_log = get_logger("serving.gateway")


def _ms_since(started: float) -> float:
    return (time.perf_counter() - started) * 1000.0


class AsyncGateway:
    """Admission-controlled asyncio front door over a :class:`ServingService`."""

    def __init__(
        self,
        service: ServingService,
        *,
        max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
        max_pending: int = DEFAULT_MAX_PENDING,
        default_deadline_s: float | None = None,
        shed_fraction: float = 0.75,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_concurrency <= 0:
            raise ValueError(f"max_concurrency must be positive, got {max_concurrency}")
        if max_pending < max_concurrency:
            raise ValueError(
                f"max_pending ({max_pending}) must be >= max_concurrency "
                f"({max_concurrency}) — the executing requests count as pending"
            )
        if not 0.0 < shed_fraction <= 1.0:
            raise ValueError(f"shed_fraction must be in (0, 1], got {shed_fraction}")
        self.service = service
        self.max_concurrency = max_concurrency
        self.max_pending = max_pending
        self.default_deadline_s = default_deadline_s
        self.shed_fraction = shed_fraction
        # Cheap request classes start shedding here; shed_fraction=1.0
        # collapses the shed band into the hard admission limit.
        self._shed_threshold = max(1, int(shed_fraction * max_pending))
        self.metrics = metrics or service.metrics
        self._executor = ThreadPoolExecutor(
            max_workers=max_concurrency, thread_name_prefix="kg-gateway"
        )
        self._pending = 0
        # asyncio primitives bind to the loop that first awaits them; the
        # gateway may outlive several asyncio.run() calls (tests, re-boots),
        # so the semaphore is (re)built per running loop.
        self._semaphore: asyncio.Semaphore | None = None
        self._semaphore_loop: asyncio.AbstractEventLoop | None = None
        self._closed = False

    @property
    def pending(self) -> int:
        """Requests currently admitted (queued or executing)."""
        return self._pending

    def _admission(self) -> asyncio.Semaphore:
        loop = asyncio.get_running_loop()
        if self._semaphore is None or self._semaphore_loop is not loop:
            self._semaphore = asyncio.Semaphore(self.max_concurrency)
            self._semaphore_loop = loop
        return self._semaphore

    async def serve_async(
        self,
        request: Request,
        *,
        deadline_s: float | None = None,
        tenant: str | None = None,
    ) -> Response:
        """One request through admission control; never raises for
        request-level failures — rejection, shedding, deadline and worker
        errors all come back as envelopes.

        ``tenant`` passes through to :meth:`ServingService.serve` —
        admission control is tenant-blind (one shared budget), routing is
        not.

        Under an armed tracer this opens the trace's *root* span
        (``gateway.request``); everything downstream — admission events,
        service stages, shard fan-out, subprocess worker spans — parents
        under it, and the trace completes when the envelope goes out.
        """
        if tracing.active() is None:
            return await self._serve_async_impl(request, deadline_s, tenant)
        with tracing.span(
            "gateway.request", request_type=type(request).__name__
        ) as span:
            response = await self._serve_async_impl(request, deadline_s, tenant)
            span.set_attribute("status", response.status)
            if span.recording and not response.trace_id:
                response.trace_id = span.trace_id
            return response

    async def _serve_async_impl(
        self, request: Request, deadline_s: float | None, tenant: str | None = None
    ) -> Response:
        started = time.perf_counter()
        wire_type = getattr(type(request), "wire_type", "unknown")
        try:
            # The front-door chaos hook: an injected stall or flake at
            # admission models an overloaded accept loop / dying LB — and
            # must surface as an envelope, never an exception.
            faults.fault_point(faults.SITE_GATEWAY_ADMIT, request_type=wire_type)
        except Exception as exc:
            self.metrics.incr("gateway.admit_faults")
            tracing.event("gateway.admit_fault", error=type(exc).__name__)
            return error_response(
                wire_type,
                self.service.store_version,
                ERROR_OVERLOADED,
                f"admission failure: {type(exc).__name__}: {exc}",
                timings={"total_ms": _ms_since(started)},
                exception=exc,
            )
        if self._pending >= self.max_pending:
            self.metrics.incr("gateway.rejected")
            tracing.event("gateway.rejected", pending=self._pending)
            return error_response(
                wire_type,
                self.service.store_version,
                ERROR_OVERLOADED,
                f"admission queue full ({self.max_pending} pending)",
                timings={"total_ms": _ms_since(started)},
            )
        if (
            self._pending >= self._shed_threshold
            and getattr(type(request), "cheap_to_recompute", False)
        ):
            # Degrade the cheap classes first: their retry costs the
            # client microseconds of worker time, so the headroom between
            # the shed threshold and the hard limit stays reserved for
            # expensive compute (annotation, ranking, verification).
            self.metrics.incr("gateway.shed")
            tracing.event("gateway.shed", pending=self._pending)
            return error_response(
                wire_type,
                self.service.store_version,
                ERROR_OVERLOADED,
                f"shedding cheap-to-recompute {wire_type!r} requests "
                f"({self._pending}/{self.max_pending} pending)",
                timings={"total_ms": _ms_since(started)},
            )
        return await self._admitted(request, deadline_s, tenant, started=started)

    async def _admitted(
        self,
        request: Request,
        deadline_s: float | None,
        tenant: str | None = None,
        *,
        started: float | None = None,
    ) -> Response:
        """The post-admission path (streaming batches enter here directly:
        a pull-based caller self-throttles, so queue-full rejection would
        be backpressure against ourselves)."""
        if started is None:
            started = time.perf_counter()
        deadline = deadline_s if deadline_s is not None else self.default_deadline_s
        self._pending += 1
        self.metrics.incr("gateway.requests")
        try:
            semaphore = self._admission()
            # acquire() sits inside the try: a caller cancelled while
            # queued for a slot must still decrement the pending count
            # (it is instance state and would otherwise inflate forever,
            # eventually rejecting everything as overloaded).
            queue_started = time.perf_counter()
            await semaphore.acquire()
            if tracing.active() is not None:
                tracing.event(
                    "gateway.admitted",
                    queue_ms=(time.perf_counter() - queue_started) * 1000.0,
                )
            deferred_release = False
            try:
                loop = asyncio.get_running_loop()
                call = functools.partial(self.service.serve, request, tenant=tenant)
                if tracing.active() is not None:
                    # Executor threads do not inherit this task's
                    # contextvars; carry the gateway span across so the
                    # service's spans join the same trace.
                    context = contextvars.copy_context()
                    future = loop.run_in_executor(
                        self._executor, context.run, call
                    )
                else:
                    future = loop.run_in_executor(self._executor, call)
                if deadline is None:
                    return await future
                try:
                    return await asyncio.wait_for(asyncio.shield(future), deadline)
                except asyncio.TimeoutError:
                    # The worker finishes in the background and its result
                    # is discarded (a cacheable request still lands in the
                    # query cache for the retry).  The concurrency slot
                    # stays held until that abandoned computation completes
                    # — releasing it now would admit new requests into an
                    # executor whose threads are all busy with abandoned
                    # work, burning their deadlines in the executor queue.
                    deferred_release = True
                    future.add_done_callback(lambda _f: semaphore.release())
                    self.metrics.incr("gateway.deadline_exceeded")
                    tracing.event("gateway.deadline_exceeded", deadline_s=deadline)
                    return error_response(
                        getattr(type(request), "wire_type", "unknown"),
                        self.service.store_version,
                        ERROR_DEADLINE_EXCEEDED,
                        f"request exceeded its {deadline:g}s deadline",
                        timings={"total_ms": _ms_since(started)},
                    )
            finally:
                if not deferred_release:
                    semaphore.release()
        finally:
            self._pending -= 1

    async def serve_stream(
        self,
        requests: Iterable[Request] | Sequence[Request],
        *,
        deadline_s: float | None = None,
    ) -> AsyncIterator[Response]:
        """Stream envelopes for ``requests`` in request order.

        Up to ``max_concurrency`` requests are in flight at once; each
        completion launches the next, so an arbitrarily long batch flows
        through bounded resources.  Yielding preserves request order
        (completion-order internally, delivery-order externally).
        """
        # Requests pull lazily from the iterator: a generator of a million
        # requests occupies O(max_concurrency) memory, not O(batch).
        iterator = iter(requests)
        exhausted = False
        ordered: deque[asyncio.Task] = deque()  # yield order
        in_flight: set[asyncio.Task] = set()

        def launch() -> None:
            nonlocal exhausted
            while not exhausted and len(in_flight) < self.max_concurrency:
                try:
                    request = next(iterator)
                except StopIteration:
                    exhausted = True
                    return
                task = asyncio.ensure_future(self._admitted(request, deadline_s))
                ordered.append(task)
                in_flight.add(task)

        launch()
        while ordered:
            head = ordered[0]
            if not head.done():
                # Wait for ANY in-flight task so a slow head never idles
                # the rest of the window: completions behind it refill
                # the pipeline immediately, only the yield is ordered.
                done, _pending = await asyncio.wait(
                    in_flight, return_when=asyncio.FIRST_COMPLETED
                )
                in_flight.difference_update(done)
                launch()
                continue
            ordered.popleft()
            in_flight.discard(head)
            launch()
            yield head.result()

    def close(self) -> None:
        """Stop the bridge threads (the service itself stays up)."""
        if not self._closed:
            self._closed = True
            self._executor.shutdown(wait=True)


# -- HTTP front door -----------------------------------------------------------


class GatewayHTTPServer:
    """Minimal asyncio HTTP/1.1 server speaking the JSON wire protocol.

    Stdlib only (``asyncio.start_server`` + hand-rolled request parsing —
    the repo adds no dependencies).  One request per connection
    (``Connection: close``): the protocol is stateless and envelope
    framing stays trivial.
    """

    def __init__(
        self, gateway: AsyncGateway, host: str = "127.0.0.1", port: int = 0
    ) -> None:
        self.gateway = gateway
        self.host = host
        self.port = port
        self._server: asyncio.AbstractServer | None = None

    async def start(self) -> tuple[str, int]:
        """Bind and start accepting; returns the bound (host, port)."""
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        sockname = self._server.sockets[0].getsockname()
        self.host, self.port = sockname[0], sockname[1]
        return self.host, self.port

    async def serve_forever(self) -> None:
        assert self._server is not None, "call start() first"
        await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def _handle(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            status, body = await self._respond(reader)
        except Exception as exc:  # the handler must never take the loop down
            status, body = 500, self._error_body(ERROR_INTERNAL, type(exc).__name__)
        content_type = "application/json"
        if isinstance(body, tuple):
            body, content_type = body
        try:
            writer.write(_http_response(status, body, content_type))
            await writer.drain()
        except ConnectionError:
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    def _error_body(self, code: str, message: str) -> bytes:
        """A full, codec-decodable error envelope for transport-level
        failures (bad routes, unreadable requests) — a client running
        ``decode_response`` on a 404/405/413 body must get a structured
        error Response, not a ProtocolError."""
        return encode_response(
            error_response(
                "unknown", self.gateway.service.store_version, code, message
            )
        )

    async def _respond(
        self, reader: asyncio.StreamReader
    ) -> tuple[int, bytes | tuple[bytes, str]]:
        # The body element is either plain JSON bytes or a (bytes,
        # content-type) pair for non-JSON routes (/metrics).
        try:
            request_line = await reader.readline()
        except (ConnectionError, asyncio.LimitOverrunError):
            return 400, self._error_body(ERROR_BAD_REQUEST, "unreadable request")
        parts = request_line.decode("latin-1").split()
        if len(parts) < 2:
            return 400, self._error_body(ERROR_BAD_REQUEST, "malformed request line")
        method, path = parts[0].upper(), parts[1]

        content_length = 0
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            if name.strip().lower() == "content-length":
                try:
                    content_length = int(value.strip())
                except ValueError:
                    return 400, self._error_body(ERROR_BAD_REQUEST, "bad content-length")
                if content_length < 0:
                    return 400, self._error_body(ERROR_BAD_REQUEST, "bad content-length")
        if content_length > MAX_REQUEST_BYTES:
            return 413, self._error_body(
                ERROR_BAD_REQUEST, f"body exceeds {MAX_REQUEST_BYTES} bytes"
            )
        body = await reader.readexactly(content_length) if content_length else b""

        if path == "/healthz" and method == "GET":
            # The service's aggregate health: fleet shape, live workers,
            # respawn count and every breaker's state.  503 when all
            # breakers are open (or no worker is alive) so load balancers
            # route around a fleet that cannot answer anything.
            health = dict(self.gateway.service.health())
            health["pending"] = self.gateway.pending
            status = 200 if health.get("healthy") else 503
            return status, json.dumps(health, sort_keys=True).encode("utf-8")
        if path == "/stats" and method == "GET":
            return 200, json.dumps(
                self.gateway.service.stats(), sort_keys=True, default=str
            ).encode("utf-8")
        if path == "/metrics" and method == "GET":
            # Prometheus text exposition (format 0.0.4) of the shared
            # registry: gateway admission, serve, pool, cache, batcher
            # and breaker series in one scrape.
            return 200, (
                self.gateway.service.prometheus_metrics().encode("utf-8"),
                "text/plain; version=0.0.4; charset=utf-8",
            )
        if path == "/debug/traces" and method == "GET":
            tracer = tracing.active()
            if tracer is None:
                payload = {
                    "armed": False,
                    "recent": [],
                    "slowest": [],
                    "counters": {},
                }
            else:
                payload = {
                    "armed": True,
                    "recent": tracer.recent(DEBUG_TRACES_RECENT),
                    "slowest": tracer.slowest(DEBUG_TRACES_SLOWEST),
                    "counters": tracer.counters(),
                }
            return 200, json.dumps(payload, sort_keys=True, default=str).encode("utf-8")
        if path == "/v1/query":
            if method != "POST":
                return 405, self._error_body(ERROR_BAD_REQUEST, "use POST /v1/query")
            try:
                request, trace_ctx, tenant = decode_request_envelope(body)
            except ProtocolError as exc:
                # Malformed/unsupported input: a structured envelope, not
                # a traceback and not a dropped connection.
                response = error_response(
                    "unknown",
                    self.gateway.service.store_version,
                    exc.code,
                    exc.message,
                )
                return _HTTP_STATUS_BY_CODE.get(exc.code, 400), encode_response(response)
            if trace_ctx is not None and tracing.active() is not None:
                # The client shipped its own trace context: this server's
                # spans join the caller's distributed trace.
                with tracing.seeded(trace_ctx):
                    response = await self.gateway.serve_async(request, tenant=tenant)
            else:
                response = await self.gateway.serve_async(request, tenant=tenant)
            http_status = 200
            if not response.ok and response.error is not None:
                http_status = _HTTP_STATUS_BY_CODE.get(response.error.code, 500)
            return http_status, encode_response(response)
        return 404, self._error_body(ERROR_BAD_REQUEST, f"no such route: {method} {path}")


def _http_response(
    status: int, body: bytes, content_type: str = "application/json"
) -> bytes:
    reason = _HTTP_REASONS.get(status, "Error")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: {content_type}\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    )
    return head.encode("latin-1") + body


async def run_http_gateway(
    service: ServingService,
    *,
    host: str = "127.0.0.1",
    port: int = 8080,
    max_concurrency: int = DEFAULT_MAX_CONCURRENCY,
    max_pending: int = DEFAULT_MAX_PENDING,
    default_deadline_s: float | None = None,
    shed_fraction: float = 0.75,
) -> None:
    """Boot the HTTP front door over ``service`` and serve until cancelled."""
    gateway = AsyncGateway(
        service,
        max_concurrency=max_concurrency,
        max_pending=max_pending,
        default_deadline_s=default_deadline_s,
        shed_fraction=shed_fraction,
    )
    server = GatewayHTTPServer(gateway, host=host, port=port)
    bound_host, bound_port = await server.start()
    _log.info(
        "server.started",
        host=bound_host,
        port=bound_port,
        url=f"http://{bound_host}:{bound_port}",
        store_version=service.store_version,
        tracing_armed=tracing.active() is not None,
    )
    try:
        await server.serve_forever()
    finally:
        await server.stop()
        gateway.close()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Serve a persisted KG snapshot bundle over HTTP."
    )
    parser.add_argument("bundle_dir", help="snapshot bundle (save_snapshot output)")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8080)
    parser.add_argument("--mode", default="inline", choices=("inline", "thread", "process"))
    parser.add_argument("--workers", type=int, default=1)
    parser.add_argument("--max-concurrency", type=int, default=DEFAULT_MAX_CONCURRENCY)
    parser.add_argument("--max-pending", type=int, default=DEFAULT_MAX_PENDING)
    parser.add_argument(
        "--deadline-s", type=float, default=None, help="per-request deadline (seconds)"
    )
    parser.add_argument(
        "--tenants-dir",
        default=None,
        help="enable multi-tenant overlay serving: per-tenant bundles live "
        "under this directory (created on first tenant write)",
    )
    parser.add_argument(
        "--max-resident-tenants",
        type=int,
        default=32,
        help="LRU budget of tenant overlays held in memory (evicted tenants "
        "cold-attach from disk on their next request)",
    )
    parser.add_argument(
        "--watch-interval-s",
        type=float,
        default=None,
        help="poll the bundle for new published generations every N seconds "
        "and hot-swap onto them (live growth; off by default)",
    )
    parser.add_argument(
        "--trace",
        action="store_true",
        help="arm the in-process tracer: every request builds a span tree, "
        "served at GET /debug/traces (recent + slowest)",
    )
    parser.add_argument(
        "--trace-sample",
        type=int,
        default=1,
        metavar="N",
        help="with --trace, head-sample 1 in N requests (default 1 = trace "
        "everything; production deployments wanting <1%% overhead on "
        "sub-millisecond queries should sample, e.g. N=8)",
    )
    parser.add_argument(
        "--log-level",
        default=None,
        choices=("debug", "info", "warning", "error"),
        help="structured-log level (default: info, or $KG_LOG_LEVEL)",
    )
    args = parser.parse_args(argv)
    if args.log_level is not None:
        from repro.common.logging import set_level

        set_level(args.log_level)
    if args.trace:
        tracing.arm(tracing.Tracer(sample_every=args.trace_sample))
    with ServingService(
        args.bundle_dir,
        mode=args.mode,
        num_workers=args.workers,
        tenants_dir=args.tenants_dir,
        max_resident_tenants=args.max_resident_tenants,
    ) as service:
        watcher = None
        if args.watch_interval_s is not None:
            from repro.serving.growth import GenerationWatcher

            watcher = GenerationWatcher(
                service, args.bundle_dir, interval_s=args.watch_interval_s
            ).start()
        try:
            asyncio.run(
                run_http_gateway(
                    service,
                    host=args.host,
                    port=args.port,
                    max_concurrency=args.max_concurrency,
                    max_pending=args.max_pending,
                    default_deadline_s=args.deadline_s,
                )
            )
        except KeyboardInterrupt:
            pass
        finally:
            if watcher is not None:
                watcher.stop()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
