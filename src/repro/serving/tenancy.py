"""Multi-tenant personal-KG serving: per-tenant overlays behind the gateway.

The paper's flagship scenario is a virtual assistant answering over a
*personal* KG fused with the shared open-domain graph (§5).  This module
is that scenario at serving shape: a :class:`TenantRegistry` owns many
small per-tenant stores, each persisted as its own chained bundle under
``tenants/<id>/`` via the *same* staged-publish machinery the shared
graph uses (:class:`~repro.kg.deltas.GenerationPublisher`), and each
served as a :class:`~repro.kg.overlay.TenantOverlay` over the one shared
CSR every tenant multiplexes.

Layering (all derived state follows the adopt-or-rebuild contract):

* **durable**: the tenant's raw :class:`SourceRecord`\\ s and tombstones,
  encoded as literal facts in a tiny :class:`TripleStore` and published
  as ~ms delta generations — crash-safe, replayable, evictable;
* **fused**: the personal KG built deterministically from the records by
  :class:`~repro.ondevice.incremental.IncrementalPipeline` (sorted
  inputs → byte-identical people/entities on every rebuild, the property
  cross-device sync already relies on);
* **served**: the fused store collapsed over the shared base CSR; walks
  and neighborhoods over the merged view answer byte-identically to a
  single-tenant build of the same overlay.

Isolation guarantees: a tenant engine reads exactly its own fused store
plus the (immutable) shared base; nothing tenant-scoped ever enters the
shared worker fleet (``WorkerState._dispatch`` rejects the family), and
cache entries are keyed per ``(tenant, tenant_version, request)``.
Server-side enrichment stays differentially private: sync responses
report record counts only through :func:`dp_count_query`.
"""

from __future__ import annotations

import hashlib
import json
import threading
from collections import OrderedDict
from contextlib import contextmanager
from pathlib import Path
from typing import Any, Iterable, Iterator

from repro.common import ids
from repro.common.errors import StoreError
from repro.common.metrics import MetricsRegistry
from repro.common.rng import stable_hash
from repro.kg.adjacency import CSRAdjacency
from repro.kg.deltas import GenerationPublisher
from repro.kg.graph_engine import GraphEngine
from repro.kg.overlay import TenantOverlay
from repro.kg.persistence import SNAPSHOT_MANIFEST, load_snapshot
from repro.kg.store import TripleStore
from repro.kg.triple import Fact, LiteralType, ObjectKind
from repro.ondevice.enrichment import dp_count_query
from repro.ondevice.incremental import IncrementalPipeline
from repro.ondevice.records import SourceRecord, record_lww_key
from repro.serving.requests import (
    NeighborhoodRequest,
    PersonalRecord,
    WalkRequest,
    valid_tenant_id,
)
from repro.serving.worker import entity_walk_seed

# Durable encoding: one literal fact per record / tombstone, subject is a
# stable hash-derived entity id (record ids are arbitrary strings; entity
# locals are not).
RECORD_PREDICATE = ids.predicate_id("tenant_record")
TOMBSTONE_PREDICATE = ids.predicate_id("tenant_tombstone")

# A personal record field naming a shared-graph entity the fused person
# links to — how tenant facts reach into the open-domain graph ("Anna is
# interested in entity:Q42") and the hook fused answers traverse.
LINK_FIELD = "linked_entity"
LINK_PREDICATE = ids.predicate_id("interested_in")

# Request types a tenant overlay serves (the graph-traversal families; the
# rest either need shared-only physical layers or are writes).
TENANT_READ_TYPES = (WalkRequest, NeighborhoodRequest)

_SEED_SPACE = 2**63


class TenantError(RuntimeError):
    """A tenancy-layer failure (bad tenant id, unusable tenant bundle)."""


class TenantNotFound(TenantError):
    """The tenant does not exist (and auto-create was not requested)."""


def to_source_record(record: PersonalRecord) -> SourceRecord:
    """Wire :class:`PersonalRecord` -> pipeline :class:`SourceRecord`."""
    return SourceRecord(
        record_id=record.record_id,
        source=record.source,
        fields={key: value for key, value in record.fields},
        sequence=record.sequence,
    )


def to_personal_record(record: SourceRecord) -> PersonalRecord:
    """Pipeline :class:`SourceRecord` -> wire :class:`PersonalRecord`."""
    return PersonalRecord(
        record_id=record.record_id,
        source=record.source,
        fields=tuple(sorted((str(k), str(v)) for k, v in record.fields.items())),
        sequence=record.sequence,
    )


def _record_entity(source: str, record_id: str) -> str:
    digest = hashlib.sha1(f"{source}\x00{record_id}".encode("utf-8")).hexdigest()[:16]
    return ids.entity_id(f"tenant/rec-{digest}")


def _record_fact(record: SourceRecord) -> Fact:
    return Fact(
        subject=_record_entity(record.source, record.record_id),
        predicate=RECORD_PREDICATE,
        obj=json.dumps(record.to_dict(), sort_keys=True),
        obj_kind=ObjectKind.LITERAL,
        literal_type=LiteralType.STRING,
    )


def _tombstone_fact(source: str, record_id: str, sequence: int) -> Fact:
    payload = {"source": source, "record_id": record_id, "sequence": sequence}
    return Fact(
        subject=_record_entity(source, record_id),
        predicate=TOMBSTONE_PREDICATE,
        obj=json.dumps(payload, sort_keys=True),
        obj_kind=ObjectKind.LITERAL,
        literal_type=LiteralType.STRING,
    )


class TenantState:
    """One resident tenant: durable record store + derived serving layers.

    All mutation and derivation happens under one reentrant lock; the
    durable store is the single source of truth and both derived layers
    (fused personal KG, overlay engine) cache against version keys and
    rebuild when stale — never mutate in place.
    """

    def __init__(
        self,
        tenant_id: str,
        directory: Path,
        *,
        compact_every: int = 8,
        verify: bool = True,
    ) -> None:
        self.tenant_id = tenant_id
        self.directory = Path(directory)
        self._lock = threading.RLock()
        self.records: dict[tuple[str, str], SourceRecord] = {}
        self.tombstones: dict[tuple[str, str], int] = {}
        if (self.directory / SNAPSHOT_MANIFEST).exists():
            snapshot = load_snapshot(self.directory, verify=verify)
            self.store = snapshot.store
            self._parse_store()
        else:
            self.directory.mkdir(parents=True, exist_ok=True)
            self.store = TripleStore(name=f"tenant-{tenant_id}")
        self.publisher = GenerationPublisher(
            self.store,
            self.directory,
            compact_every=compact_every,
            embeddings=False,
            verify=verify,
        )
        # (fused store, fused people), keyed by the durable store version
        # that derived them.
        self._fused: tuple[int, TripleStore, list] | None = None
        # The overlay engine, keyed by (base built_version, fused version).
        self._overlay: tuple[tuple[int, int], TenantOverlay] | None = None

    def _parse_store(self) -> None:
        """Rebuild the in-memory record/tombstone maps from durable facts."""
        for fact in self.store.scan(predicate=RECORD_PREDICATE):
            record = SourceRecord.from_dict(json.loads(fact.obj))
            self.records[(record.source, record.record_id)] = record
        for fact in self.store.scan(predicate=TOMBSTONE_PREDICATE):
            payload = json.loads(fact.obj)
            key = (payload["source"], payload["record_id"])
            sequence = int(payload.get("sequence", 0))
            self.tombstones[key] = max(sequence, self.tombstones.get(key, sequence))

    @property
    def version(self) -> int:
        """The tenant's published version (its durable store version)."""
        return self.store.version

    # -- durable mutations (last-writer-wins, mirroring Device semantics) --

    def apply_upserts(self, incoming: Iterable[SourceRecord]) -> tuple[int, int]:
        """LWW-merge ``incoming``; returns ``(applied, skipped)``.

        Does not publish — callers batch mutations and call
        :meth:`publish` once per request.
        """
        applied = skipped = 0
        with self._lock:
            ordered = sorted(
                incoming, key=lambda r: (r.source, r.record_id, r.sequence)
            )
            for record in ordered:
                key = (record.source, record.record_id)
                tombstone = self.tombstones.get(key)
                if tombstone is not None:
                    if tombstone >= record.sequence:
                        skipped += 1
                        continue
                    self._remove_tombstone(key)
                existing = self.records.get(key)
                if existing is not None:
                    if record_lww_key(existing) >= record_lww_key(record):
                        skipped += 1
                        continue
                    self._remove_fact(_record_fact(existing))
                fact = self.store.add(_record_fact(record))
                self.publisher.record(keys=[fact.key])
                self.records[key] = record
                applied += 1
        return applied, skipped

    def apply_delete(self, source: str, record_id: str, sequence: int = 0) -> bool:
        """Tombstone one record; True when a stored copy was removed."""
        with self._lock:
            key = (source, record_id)
            existing = self.records.get(key)
            seq = sequence if sequence else (existing.sequence if existing else 0)
            if existing is not None and seq < existing.sequence:
                return False
            prior = self.tombstones.get(key)
            if prior is None or seq > prior:
                if prior is not None:
                    self._remove_tombstone(key)
                fact = self.store.add(_tombstone_fact(source, record_id, seq))
                self.publisher.record(keys=[fact.key])
                self.tombstones[key] = seq
            if existing is None:
                return False
            self._remove_fact(_record_fact(existing))
            del self.records[key]
            return True

    def apply_tombstones(
        self, incoming: Iterable[tuple[str, str, int]]
    ) -> int:
        """Adopt device tombstones (sync ingest); returns newly raised."""
        raised = 0
        with self._lock:
            for source, record_id, sequence in sorted(incoming):
                key = (source, record_id)
                current = self.tombstones.get(key)
                if current is not None and current >= sequence:
                    continue
                existing = self.records.get(key)
                if existing is not None and existing.sequence > sequence:
                    continue
                if current is not None:
                    self._remove_tombstone(key)
                fact = self.store.add(_tombstone_fact(source, record_id, sequence))
                self.publisher.record(keys=[fact.key])
                self.tombstones[key] = sequence
                raised += 1
                if existing is not None:
                    self._remove_fact(_record_fact(existing))
                    del self.records[key]
        return raised

    def _remove_fact(self, fact: Fact) -> None:
        self.store.remove(*fact.key)
        self.publisher.record(keys=[fact.key])

    def _remove_tombstone(self, key: tuple[str, str]) -> None:
        source, record_id = key
        self._remove_fact(_tombstone_fact(source, record_id, self.tombstones[key]))
        del self.tombstones[key]

    def publish(self):
        """Publish pending durable mutations as one delta generation."""
        with self._lock:
            return self.publisher.publish()

    # -- derived layers ----------------------------------------------------

    def fused(self) -> tuple[TripleStore, list]:
        """The fused personal KG ``(store, people)`` at the current version.

        Deterministic in the record set: the pipeline sorts records by id,
        fused entity ids are positional, and the shared-graph link pass
        iterates people/records in sorted order — two registries holding
        the same records derive byte-identical stores.
        """
        with self._lock:
            version = self.version
            if self._fused is not None and self._fused[0] == version:
                return self._fused[1], self._fused[2]
            records = sorted(self.records.values(), key=lambda r: r.record_id)
            result = IncrementalPipeline(list(records)).run_to_completion()
            store, people = result.store, result.people
            by_id = {record.record_id: record for record in records}
            for person in people:
                for record_id in sorted(person.record_ids):
                    record = by_id.get(record_id)
                    if record is None:
                        continue
                    link = record.fields.get(LINK_FIELD, "")
                    if isinstance(link, str) and ids.is_entity(link):
                        store.add(
                            Fact(
                                subject=person.entity,
                                predicate=LINK_PREDICATE,
                                obj=link,
                                obj_kind=ObjectKind.ENTITY,
                                sources=(f"source:{record.source}",),
                            )
                        )
            self._fused = (version, store, people)
            return store, people

    def overlay(self, base: CSRAdjacency) -> TenantOverlay:
        """The tenant overlay over ``base``, rebuilt when either side moved."""
        with self._lock:
            key = (base.built_version, self.version)
            if self._overlay is not None and self._overlay[0] == key:
                return self._overlay[1]
            store, _people = self.fused()
            overlay = TenantOverlay(base, store)
            self._overlay = (key, overlay)
            return overlay

    def engine(self, base: CSRAdjacency) -> GraphEngine:
        """A :class:`GraphEngine` over shared base + this tenant's overlay."""
        return self.overlay(base).engine()

    def memory_bytes(self) -> int:
        """Rough resident footprint: overlay splice arrays + record JSON."""
        total = sum(
            len(json.dumps(record.to_dict())) for record in self.records.values()
        )
        if self._overlay is not None:
            snapshot = self._overlay[1].snapshot
            total += int(snapshot.indptr.nbytes + snapshot.indices.nbytes)
            total += int(snapshot.entity_edge_degrees.nbytes)
        return total

    def close(self) -> None:
        """Flush background work so eviction never races a compaction."""
        join = getattr(self.publisher, "join_compaction", None)
        if join is not None:
            join()


class _Slot:
    """Registry bookkeeping for one resident tenant.

    ``state`` is published only once construction succeeded; ``ready``
    gates concurrent attachers (the build runs outside the registry
    lock, so one slow cold-attach never stalls other tenants).  ``pins``
    counts requests currently holding the state: LRU overflow never
    evicts a pinned slot — it defers to the last release — because
    evicting mid-request would let the same tenant re-attach and run two
    publishers over one ``tenants/<id>/`` chain, silently overwriting
    generation records.
    """

    __slots__ = ("state", "error", "ready", "pins")

    def __init__(self) -> None:
        self.state: TenantState | None = None
        self.error: BaseException | None = None
        self.ready = threading.Event()
        self.pins = 0


class TenantRegistry:
    """Create/load/evict tenants and serve their overlay engines.

    An LRU of at most ``max_resident`` :class:`TenantState`\\ s stays in
    memory; everything else lives on disk under ``tenants/<id>/`` and
    cold-attaches on demand (the bench records that cost).  Eviction is
    safe at any point: every mutation publishes durably before its
    request completes, and request paths hold their state via
    :meth:`lease`, which pins the slot so eviction defers until the
    request released it — a tenant can never be resident twice.
    """

    def __init__(
        self,
        tenants_dir: str | Path,
        *,
        base: CSRAdjacency | None = None,
        max_resident: int = 32,
        compact_every: int = 8,
        verify: bool = True,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_resident <= 0:
            raise ValueError(f"max_resident must be positive, got {max_resident}")
        self.tenants_dir = Path(tenants_dir)
        self.tenants_dir.mkdir(parents=True, exist_ok=True)
        self.max_resident = max_resident
        self.compact_every = compact_every
        self.verify = verify
        self.metrics = metrics or MetricsRegistry("tenants")
        self._base = base
        self._lock = threading.RLock()
        self._resident: OrderedDict[str, _Slot] = OrderedDict()
        self.evictions = 0

    # -- shared base -------------------------------------------------------

    def rebind_base(self, base: CSRAdjacency) -> None:
        """Adopt a new shared-generation CSR (zero-downtime swap hook).

        Resident overlays are not eagerly rebuilt: each tenant's next read
        re-collapses lazily against the new base.  Append-only ids keep
        the splice valid across generations — pinned by test.
        """
        with self._lock:
            self._base = base

    def base(self) -> CSRAdjacency:
        base = self._base
        if base is None:
            raise TenantError("registry has no shared base bound")
        return base

    # -- lifecycle ---------------------------------------------------------

    def _tenant_dir(self, tenant_id: str) -> Path:
        return self.tenants_dir / tenant_id

    def exists(self, tenant_id: str) -> bool:
        """True when the tenant is resident or persisted on disk."""
        if not valid_tenant_id(tenant_id):
            return False
        with self._lock:
            if tenant_id in self._resident:
                return True
        return (self._tenant_dir(tenant_id) / SNAPSHOT_MANIFEST).exists()

    def list_tenants(self) -> list[str]:
        """Every persisted tenant id, sorted."""
        return sorted(
            path.name
            for path in self.tenants_dir.iterdir()
            if (path / SNAPSHOT_MANIFEST).exists()
        )

    def _acquire(self, tenant_id: str, *, create: bool = False) -> TenantState:
        """Pin and return the resident state, attaching it if needed.

        Validates the id (path safety), LRU-promotes residents.  The
        caller owns one pin and must :meth:`_release` it; cold-attach
        construction happens outside the registry lock (concurrent
        attachers of the same tenant wait on the slot's ready event, and
        other tenants are never stalled by one slow build).
        """
        while True:
            with self._lock:
                slot = self._resident.get(tenant_id)
                if slot is None:
                    if not valid_tenant_id(tenant_id):
                        raise TenantError(f"invalid tenant id: {tenant_id!r}")
                    directory = self._tenant_dir(tenant_id)
                    on_disk = (directory / SNAPSHOT_MANIFEST).exists()
                    if not on_disk and not create:
                        raise TenantNotFound(f"unknown tenant: {tenant_id}")
                    slot = _Slot()
                    slot.pins = 1  # the builder's own pin
                    self._resident[tenant_id] = slot
                    return self._build(tenant_id, slot, directory, on_disk)
                if slot.ready.is_set() and slot.state is not None:
                    slot.pins += 1
                    self._resident.move_to_end(tenant_id)
                    return slot.state
            # Another thread is attaching this tenant: wait outside the
            # registry lock, then retry — the slot may have errored (its
            # builder removed it) or been evicted before we re-locked.
            slot.ready.wait()
            if slot.error is not None:
                raise slot.error

    def _build(
        self, tenant_id: str, slot: _Slot, directory: Path, on_disk: bool
    ) -> TenantState:
        """Construct a :class:`TenantState` for a freshly inserted slot.

        Runs without the registry lock — snapshot load and chain replay
        can be slow, and must not stall every other tenant.
        """
        try:
            state = TenantState(
                tenant_id,
                directory,
                compact_every=self.compact_every,
                verify=self.verify,
            )
        except BaseException as exc:
            with self._lock:
                slot.error = exc
                if self._resident.get(tenant_id) is slot:
                    del self._resident[tenant_id]
            slot.ready.set()
            raise
        with self._lock:
            slot.state = state
            slot.ready.set()
            self.metrics.incr("tenants.attached" if on_disk else "tenants.created")
            evicted = self._evict_overflow_locked()
            self.metrics.gauge("tenants.resident", float(len(self._resident)))
        self._close_evicted(evicted)
        return state

    def _release(self, tenant_id: str, state: TenantState) -> None:
        """Drop one pin; runs any eviction the pin was deferring."""
        with self._lock:
            slot = self._resident.get(tenant_id)
            if slot is not None and slot.state is state:
                slot.pins -= 1
            evicted = self._evict_overflow_locked()
            if evicted:
                self.metrics.gauge("tenants.resident", float(len(self._resident)))
        self._close_evicted(evicted)

    def _evict_overflow_locked(self) -> list[TenantState]:
        """Pop LRU slots past capacity that are ready and unpinned.

        Pinned or still-building slots are skipped — their eviction
        defers to the last release.  Returns the evicted states for the
        caller to close *outside* the registry lock (close joins any
        in-flight compaction, which must not stall other tenants).
        """
        evicted: list[TenantState] = []
        overflow = len(self._resident) - self.max_resident
        if overflow <= 0:
            return evicted
        for tenant_id, slot in list(self._resident.items()):
            if len(evicted) >= overflow:
                break
            if slot.pins > 0 or not slot.ready.is_set() or slot.state is None:
                continue
            del self._resident[tenant_id]
            evicted.append(slot.state)
            self.evictions += 1
            self.metrics.incr("tenants.evicted")
        return evicted

    def _close_evicted(self, evicted: list[TenantState]) -> None:
        for state in evicted:
            state.close()

    @contextmanager
    def lease(
        self, tenant_id: str, *, create: bool = False
    ) -> Iterator[TenantState]:
        """Pin ``tenant_id``'s resident state for the duration of a block.

        The request-path accessor: while leased, the state cannot be
        evicted, so the same tenant can never be re-attached concurrently
        — exactly one live :class:`GenerationPublisher` per chain.
        """
        state = self._acquire(tenant_id, create=create)
        try:
            yield state
        finally:
            self._release(tenant_id, state)

    def get(self, tenant_id: str, *, create: bool = False) -> TenantState:
        """Attach ``tenant_id`` and return its state (an unpinned borrow).

        Safe for inspection and point-in-time reads — an evicted state
        still answers consistently from its own layers and never touches
        the durable chain.  Anything that mutates durable state (or must
        observe one consistent resident across a window) holds
        :meth:`lease` instead.
        """
        state = self._acquire(tenant_id, create=create)
        self._release(tenant_id, state)
        return state

    def create(self, tenant_id: str) -> TenantState:
        """Create (or attach) ``tenant_id``."""
        return self.get(tenant_id, create=True)

    def evict(self, tenant_id: str) -> bool:
        """Drop a tenant from residency (state stays durable on disk).

        Refuses (returns ``False``) while any request holds the state
        leased — evicting mid-request could double-attach the tenant.
        """
        with self._lock:
            slot = self._resident.get(tenant_id)
            if slot is None or slot.pins > 0 or not slot.ready.is_set():
                return False
            del self._resident[tenant_id]
            state = slot.state
            self.evictions += 1
            self.metrics.incr("tenants.evicted")
            self.metrics.gauge("tenants.resident", float(len(self._resident)))
        if state is not None:
            state.close()
        return True

    def resident_count(self) -> int:
        with self._lock:
            return len(self._resident)

    def tenant_version(self, tenant_id: str) -> int:
        return self.get(tenant_id).version

    # -- request serving ---------------------------------------------------

    def engine(self, tenant_id: str) -> tuple[GraphEngine, int, int]:
        """``(engine, base_version, tenant_version)`` for tenant reads.

        The base is captured once per call, so a concurrent shared swap
        yields either the old or the new generation consistently — never
        a mix.
        """
        base = self.base()
        with self.lease(tenant_id) as state:
            engine = state.engine(base)
            return engine, base.built_version, state.version

    def execute_read(self, tenant_id: str, request) -> list:
        """Answer a walk/neighborhood request over the tenant's overlay."""
        engine, _base_version, _tenant_version = self.engine(tenant_id)
        return self.execute_on(engine, request)

    def execute_on(self, engine: GraphEngine, request) -> list:
        """Answer over an already-captured overlay engine.

        The hot serving path: callers that need the tenant version for
        cache keying capture ``(engine, versions)`` once via
        :meth:`engine` and dispatch here — one registry round-trip per
        request, not two.  Mirrors ``WorkerState._walks`` /
        ``_neighborhoods`` exactly (per-entity seed substreams, sorted
        neighborhoods), so a tenant answer differs from a shared answer
        only by the overlay's facts.
        """
        self.metrics.incr("tenants.reads")
        if isinstance(request, WalkRequest):
            return [
                engine.random_walks(
                    [entity],
                    walk_length=request.walk_length,
                    walks_per_entity=request.walks_per_entity,
                    seed=entity_walk_seed(request.seed, entity),
                )
                for entity in request.entities
            ]
        if isinstance(request, NeighborhoodRequest):
            return [
                sorted(engine.neighborhood(entity, hops=request.hops))
                for entity in request.entities
            ]
        raise TypeError(
            f"request type {type(request).__name__} is not tenant-servable"
        )

    def upsert(self, tenant_id: str, records: Iterable[PersonalRecord]) -> dict[str, Any]:
        """Apply a :class:`TenantUpsertRequest`; returns its payload."""
        with self.lease(tenant_id, create=True) as state:
            applied, skipped = state.apply_upserts(
                to_source_record(record) for record in records
            )
            state.publish()
            self.metrics.incr("tenants.upserts")
            return {
                "applied": applied,
                "skipped": skipped,
                "tenant_version": state.version,
            }

    def delete(
        self, tenant_id: str, source: str, record_id: str, sequence: int = 0
    ) -> dict[str, Any]:
        """Apply a :class:`TenantDeleteRequest`; returns its payload."""
        with self.lease(tenant_id) as state:
            deleted = state.apply_delete(source, record_id, sequence)
            state.publish()
            self.metrics.incr("tenants.deletes")
            return {"deleted": deleted, "tenant_version": state.version}

    def sync(
        self,
        tenant_id: str,
        records: Iterable[PersonalRecord] = (),
        tombstones: Iterable[tuple[str, str, int]] = (),
        epsilon: float = 1.0,
    ) -> dict[str, Any]:
        """One device<->server sync round; returns the response payload.

        Ingests the device's records/tombstones (LWW), publishes once,
        then returns what the device is missing: server records that beat
        the device's copies, all server tombstones (retention — a late
        device must still learn about old deletions), the fused people
        and a DP-noised record count.
        """
        with self.lease(tenant_id, create=True) as state:
            return self._sync_leased(
                state, tenant_id, records=records, tombstones=tombstones,
                epsilon=epsilon,
            )

    def _sync_leased(
        self,
        state: TenantState,
        tenant_id: str,
        *,
        records: Iterable[PersonalRecord],
        tombstones: Iterable[tuple[str, str, int]],
        epsilon: float,
    ) -> dict[str, Any]:
        tombstones = [tuple(t) for t in tombstones]
        incoming = [to_source_record(record) for record in records]
        state.apply_tombstones(tombstones)
        state.apply_upserts(incoming)
        state.publish()
        self.metrics.incr("tenants.syncs")

        device_keys = {
            (record.source, record.record_id): record_lww_key(record)
            for record in incoming
        }
        device_tombs = {}
        for source, record_id, sequence in tombstones:
            key = (source, record_id)
            device_tombs[key] = max(sequence, device_tombs.get(key, sequence))
        with state._lock:
            missing = [
                to_personal_record(record)
                for key, record in sorted(state.records.items())
                if (
                    key not in device_keys
                    or device_keys[key] < record_lww_key(record)
                )
                and device_tombs.get(key, -1) < record.sequence
            ]
            server_tombstones = [
                [source, record_id, sequence]
                for (source, record_id), sequence in sorted(state.tombstones.items())
                if device_tombs.get((source, record_id), -1) < sequence
            ]
            record_count = len(state.records)
        _store, people = state.fused()
        seed = stable_hash(f"tenant-dp:{tenant_id}:{state.version}", _SEED_SPACE)
        return {
            "records": [
                {
                    "record_id": record.record_id,
                    "source": record.source,
                    "fields": [list(pair) for pair in record.fields],
                    "sequence": record.sequence,
                }
                for record in missing
            ],
            "tombstones": server_tombstones,
            "people": [
                {
                    "entity": person.entity,
                    "name": person.name,
                    "record_ids": list(person.record_ids),
                }
                for person in people
            ],
            "tenant_version": state.version,
            "dp_record_count": dp_count_query(record_count, epsilon, seed=seed),
        }

    def close(self) -> None:
        """Drop every resident tenant (durable state stays on disk)."""
        with self._lock:
            slots = list(self._resident.values())
            self._resident.clear()
        for slot in slots:
            if slot.state is not None:
                slot.state.close()

    def stats(self) -> dict[str, float]:
        """Flat metrics snapshot for the service stats surface."""
        out = dict(self.metrics.snapshot())
        out["tenants.resident"] = float(self.resident_count())
        out["tenants.evictions"] = float(self.evictions)
        return out
