"""Serving-side live growth: follow a bundle's generation chain.

The read half of the continuous-growth loop: a
:class:`~repro.kg.deltas.GenerationPublisher` appends delta generations to
a bundle on the construction side; a :class:`GenerationWatcher` polls the
bundle's published tip (one small JSON read) and hot-swaps the serving
fleet onto new generations via ``ServingService.adopt_generation`` — which
already gives zero dropped requests (new workers spin up before the old
pool closes, in-flight requests keep their captured pool).

Staleness is bounded by ``publish cadence + poll interval``: a generation
published at time T is serving by T + interval (plus the adoption itself,
which is mmap-cheap).  Adoption failures are contained — the watcher
counts them and keeps serving the previous generation, never crashing the
serving process over a bad publish.
"""

from __future__ import annotations

import threading
from pathlib import Path
from typing import TYPE_CHECKING, Callable

from repro.common import tracing
from repro.common.logging import get_logger
from repro.kg.deltas import published_version

if TYPE_CHECKING:
    from repro.serving.service import ServingService

__all__ = ["GenerationWatcher", "published_version"]

_log = get_logger("serving.growth")


class GenerationWatcher:
    """Daemon thread that adopts new bundle generations as they publish.

    >>> watcher = GenerationWatcher(service, bundle_dir, interval_s=0.5)
    >>> watcher.start()
    ...
    >>> watcher.stop()

    ``on_swap`` (if given) is called as ``on_swap(store_version)`` after
    each successful adoption — test hooks and gateways log from it.
    """

    def __init__(
        self,
        service: "ServingService",
        bundle_dir: str | Path,
        *,
        interval_s: float = 1.0,
        on_swap: Callable[[int], None] | None = None,
    ) -> None:
        if interval_s <= 0:
            raise ValueError(f"interval_s must be positive, got {interval_s}")
        self.service = service
        self.bundle_dir = Path(bundle_dir)
        self.interval_s = interval_s
        self.on_swap = on_swap
        self.swaps = 0
        self.errors = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    def poll_once(self) -> int | None:
        """Adopt the bundle tip if it moved; the new version, else ``None``.

        Never raises: a failed read or adoption increments :attr:`errors`
        and leaves the service on its current generation.
        """
        try:
            tip = published_version(self.bundle_dir)
            if tip is None or tip == self.service.store_version:
                return None
            previous = self.service.store_version
            with tracing.span(
                "growth.swap", bundle=str(self.bundle_dir), tip=tip
            ):
                version = self.service.adopt_generation(self.bundle_dir)
        except Exception as exc:
            self.errors += 1
            self.service.metrics.incr("growth.watch_errors")
            _log.warning(
                "generation.watch_error",
                bundle=str(self.bundle_dir),
                error=f"{type(exc).__name__}: {exc}",
            )
            return None
        self.swaps += 1
        self.service.metrics.incr("growth.swaps")
        _log.info(
            "generation.swapped",
            bundle=str(self.bundle_dir),
            from_version=previous,
            store_version=version,
        )
        if self.on_swap is not None:
            self.on_swap(version)
        return version

    def _run(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.poll_once()

    def start(self) -> "GenerationWatcher":
        """Start polling in a daemon thread (idempotent)."""
        if self._thread is None or not self._thread.is_alive():
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._run, name="generation-watcher", daemon=True
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        """Stop the polling thread and wait for it to exit."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self) -> "GenerationWatcher":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.stop()
