"""Deterministic fault injection for the serving stack.

At the scale the paper targets ("billions of requests"), worker crashes,
slow shards and transient I/O errors are the steady state — so every
failure path in this repo must be *testable and benchmarkable*, not just
believed.  This module is the chaos harness the resilience layer is
driven by: a seeded, thread-safe :class:`FaultPlan` of site-keyed
injections, armed globally and consulted by ``fault_point`` hooks
threaded through the worker, pool, scatter/gather and gateway.

Fault kinds (:data:`FAULT_KINDS`):

* ``crash`` — the worker dies.  In a subprocess worker this is a real
  ``os._exit`` (the pool sees ``BrokenProcessPool``, exactly like a
  segfault or an OOM kill); in inline/thread workers it raises
  :class:`InjectedCrash` (same supervision path, no process to kill).
* ``slow`` — the site stalls for ``delay_s`` (a degraded replica).
* ``io_error`` — the site raises :class:`InjectedIOError`, a transient,
  retryable I/O failure (a flaky mmap read, a dropped connection).
* ``corrupt`` — the site's *value* comes back mangled (a truncated
  shard response); downstream validation must catch it.

Determinism: every decision is a pure function of ``(seed, salt, site,
call_number)`` through :func:`~repro.common.rng.stable_hash` — re-running
a plan replays the same injection schedule.  Respawned process workers
re-arm the plan with a fresh ``salt`` (their *incarnation* number), so a
request that crashed its worker does not deterministically crash every
replacement worker forever; the schedule stays reproducible because
incarnation numbers themselves are deterministic (1, 2, 3, …).

Zero overhead when disarmed: :func:`fault_point` is one global ``None``
check — no plan, no lock, no hashing.
"""

from __future__ import annotations

import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Any, Iterator

from repro.common.rng import stable_hash

FAULT_KINDS = ("crash", "slow", "io_error", "corrupt")

# Sites instrumented across the serving stack (a plan may name any string,
# but these are the hooks that exist today).
SITE_WORKER_EXECUTE = "worker.execute"  # raising faults inside a worker
SITE_WORKER_RESULT = "worker.result"  # corruption of a worker's result
SITE_POOL_SUBMIT = "pool.submit"  # dispatch-side transient failures
SITE_GATEWAY_ADMIT = "gateway.admit"  # front-door stalls / flakes

_DECISION_SPACE = 2**31


class InjectedFault(Exception):
    """Base class of every raised injection (never leaves the harness
    unclassified: the resilience layer treats these like their real
    counterparts)."""


class InjectedCrash(InjectedFault):
    """A simulated worker death for executors with no process to kill."""


class InjectedIOError(InjectedFault, IOError):
    """A transient injected I/O failure (retryable, like a real IOError)."""


@dataclass(frozen=True)
class FaultSpec:
    """One site-keyed injection rule.

    Either probabilistic (``rate`` in ``(0, 1]`` — each call at ``site``
    independently triggers with that probability, seeded) or scheduled
    (``at_calls`` — exact 1-based call numbers).  ``max_injections``
    bounds the blast radius per plan instance (chaos with a budget);
    ``request_type`` narrows the rule to one wire type (``""`` = any).
    """

    site: str
    kind: str
    rate: float = 0.0
    at_calls: tuple[int, ...] = ()
    max_injections: int | None = None
    delay_s: float = 0.02
    request_type: str = ""

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise ValueError(f"kind must be one of {FAULT_KINDS}, got {self.kind!r}")
        if not 0.0 <= self.rate <= 1.0:
            raise ValueError(f"rate must be in [0, 1], got {self.rate}")
        if self.rate == 0.0 and not self.at_calls:
            raise ValueError("spec needs a rate > 0 or explicit at_calls")


@dataclass
class FaultPlan:
    """A seeded, thread-safe set of injection rules.

    Plans are plain data (picklable), so a :class:`WorkerPool` ships the
    armed plan to its subprocess workers through the pool initializer.
    Call counters and injection counts are per-instance — a reseeded or
    unpickled copy starts fresh.
    """

    specs: tuple[FaultSpec, ...] = ()
    seed: int = 0
    salt: int = 0
    # Mutable run state is init=False: a dataclasses.replace (reseeded)
    # or an unpickle must start with fresh counters and its own lock.
    _lock: threading.Lock = field(
        default_factory=threading.Lock, init=False, repr=False, compare=False
    )
    _calls: dict[str, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )
    _injected: dict[int, int] = field(
        default_factory=dict, init=False, repr=False, compare=False
    )

    def __post_init__(self) -> None:
        self.specs = tuple(self.specs)

    def reseeded(self, salt: int) -> "FaultPlan":
        """A fresh-countered copy with ``salt`` mixed into every decision.

        Process respawn re-arms the plan under the new worker's
        incarnation number: the replacement replica draws a *different*
        (but still deterministic) schedule, so a scheduled crash cannot
        permanently wedge the fleet.
        """
        return replace(self, salt=salt)

    def decide(self, site: str, request_type: str = "") -> FaultSpec | None:
        """The injection (if any) for this call at ``site``.

        Each call advances the site's counter exactly once; the first
        matching spec wins.
        """
        with self._lock:
            call_number = self._calls.get(site, 0) + 1
            self._calls[site] = call_number
            for index, spec in enumerate(self.specs):
                if spec.site != site:
                    continue
                if spec.request_type and spec.request_type != request_type:
                    continue
                injected = self._injected.get(index, 0)
                if spec.max_injections is not None and injected >= spec.max_injections:
                    continue
                if spec.at_calls:
                    triggered = call_number in spec.at_calls
                else:
                    draw = stable_hash(
                        f"fault:{self.seed}:{self.salt}:{site}:{call_number}",
                        _DECISION_SPACE,
                    )
                    triggered = draw < spec.rate * _DECISION_SPACE
                if triggered:
                    self._injected[index] = injected + 1
                    return spec
            return None

    def injections(self) -> int:
        """Total injections fired by this plan instance so far."""
        with self._lock:
            return sum(self._injected.values())

    def calls(self, site: str) -> int:
        """How many times ``site`` has been evaluated on this instance."""
        with self._lock:
            return self._calls.get(site, 0)

    def __getstate__(self) -> dict:
        return {"specs": self.specs, "seed": self.seed, "salt": self.salt}

    def __setstate__(self, state: dict) -> None:
        self.__init__(**state)


# -- the global arming point ---------------------------------------------------
#
# One process-wide plan: the hooks below are called from hot paths in many
# threads, and "no chaos configured" must cost a single None check.

_ACTIVE: FaultPlan | None = None
# Subprocess workers set this via mark_worker_process(): a "crash" there
# must be a real process death, not an exception the worker could catch.
_CRASH_EXITS = False


def arm(plan: FaultPlan) -> FaultPlan:
    """Activate ``plan`` process-wide (returns it for chaining)."""
    global _ACTIVE
    _ACTIVE = plan
    return plan


def disarm() -> None:
    """Deactivate fault injection (the hooks go back to zero work)."""
    global _ACTIVE
    _ACTIVE = None


def active_plan() -> FaultPlan | None:
    """The armed plan, or ``None``."""
    return _ACTIVE


@contextmanager
def armed(plan: FaultPlan) -> Iterator[FaultPlan]:
    """Arm ``plan`` for a ``with`` block, restoring the previous plan after."""
    global _ACTIVE
    previous = _ACTIVE
    arm(plan)
    try:
        yield plan
    finally:
        _ACTIVE = previous


def mark_worker_process(flag: bool = True) -> None:
    """Declare this process a subprocess worker: crashes become ``os._exit``."""
    global _CRASH_EXITS
    _CRASH_EXITS = flag


def fault_point(site: str, value: Any = None, request_type: str = "") -> Any:
    """The injection hook: raise/stall/corrupt per the armed plan.

    Returns ``value`` (possibly corrupted) so result-bearing sites can
    wrap in place: ``result = fault_point(SITE, result)``.  With no plan
    armed this is one global ``None`` check.
    """
    plan = _ACTIVE
    if plan is None:
        return value
    spec = plan.decide(site, request_type)
    if spec is None:
        return value
    if spec.kind == "slow":
        time.sleep(spec.delay_s)
        return value
    if spec.kind == "io_error":
        raise InjectedIOError(f"injected transient I/O failure at {site}")
    if spec.kind == "crash":
        if _CRASH_EXITS:
            os._exit(23)
        raise InjectedCrash(f"injected worker crash at {site}")
    # corrupt: a truncated response — the shape a partial read or a
    # mid-write crash produces.  Downstream length validation must catch
    # it (and does: the scatter/gather path checks per-shard counts).
    if isinstance(value, list):
        return value[:-1] if value else [None]
    return None
