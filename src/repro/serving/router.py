"""Shard routing: deterministic partitioning of the entity-id space.

The snapshot dictionary gives every node a dense int32 id, and that id
space hash-partitions trivially (ROADMAP, "Sharding"): shard of id ``i``
is ``i % num_shards``.  Entities the dictionary doesn't know (possible on
a stale bundle or a typo'd query) fall back to a stable string hash, so
routing never depends on process-local state.

Workers in this subsystem are *replicas* — each one maps the same bundle,
so any worker can answer any shard's sub-request and correctness never
depends on shard→worker placement.  What the partition buys is
deterministic fan-out units (a bounded amount of work per dispatched
task), per-shard stability of the grouping, and intra-request
parallelism across the pool.  Note that modulo sharding *strides* the id
space — a shard's CSR rows are spread across the arrays, not contiguous;
a future move to true data partitioning (per-shard sub-bundles) would
swap this for range partitioning so each shard owns a row range.

The merge contract: :meth:`ShardRouter.scatter` records each entity's
original position; :meth:`ShardRouter.gather` puts per-entity results
back in request order.  The merged output is therefore identical to a
single worker answering the unpartitioned request — sharding is invisible
to clients.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro.common import tracing
from repro.common.rng import stable_hash
from repro.serving.requests import Request, sub_request

DEFAULT_NUM_SHARDS = 8


class ShardRouter:
    """Hash-partitions entities over a fixed number of shards."""

    def __init__(
        self,
        num_shards: int = DEFAULT_NUM_SHARDS,
        id_of: Callable[[str], int | None] | None = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.num_shards = num_shards
        # Dictionary lookup into the int32 id space; ``None`` (or an
        # unknown entity) falls back to a stable string hash.
        self._id_of = id_of

    def shard_of(self, entity: str) -> int:
        """The shard owning ``entity`` (stable across processes and runs)."""
        if self._id_of is not None:
            node_id = self._id_of(entity)
            if node_id is not None:
                return node_id % self.num_shards
        return stable_hash(entity, self.num_shards)

    def scatter(
        self, entities: Sequence[str]
    ) -> list[tuple[int, list[int], tuple[str, ...]]]:
        """Partition ``entities`` into per-shard groups.

        Returns ``(shard, positions, members)`` triples — ``positions``
        are the indices of ``members`` in the input sequence — ordered by
        shard id, skipping empty shards.  Entity order *within* a shard
        preserves input order, so a worker's per-entity results line up
        with ``positions`` one-to-one.
        """
        buckets: dict[int, tuple[list[int], list[str]]] = {}
        for position, entity in enumerate(entities):
            shard = self.shard_of(entity)
            bucket = buckets.get(shard)
            if bucket is None:
                bucket = buckets[shard] = ([], [])
            bucket[0].append(position)
            bucket[1].append(entity)
        return [
            (shard, positions, tuple(members))
            for shard, (positions, members) in sorted(buckets.items())
        ]

    def scatter_request(
        self, request: Request
    ) -> list[tuple[list[int], Request]]:
        """Partition a splittable request into per-shard sub-requests.

        The fan-out unit the dispatch submits to the pool: each returned
        ``(positions, sub_request)`` pair narrows the original request to
        one shard's members (every other parameter carried verbatim), so
        any replica can answer it and :meth:`gather` can merge the
        per-entity results back into request order.  Raises ``TypeError``
        for non-splittable request types — the policy lives on the
        request class, not here.
        """
        if not getattr(type(request), "splittable", False):
            raise TypeError(
                f"request type {type(request).__name__} is not splittable"
            )
        parts = [
            (positions, sub_request(request, members))
            for _shard, positions, members in self.scatter(request.entities)
        ]
        tracing.event(
            "router.scatter",
            entities=len(request.entities),
            shards=len(parts),
            num_shards=self.num_shards,
        )
        return parts

    @staticmethod
    def gather(
        total: int,
        shard_results: Sequence[tuple[list[int], Sequence]],
    ) -> list:
        """Merge per-shard result lists back into input order.

        ``shard_results`` pairs each shard's ``positions`` (from
        :meth:`scatter`) with the per-entity results its worker returned.
        Every position must be covered exactly once.
        """
        merged: list = [None] * total
        filled = 0
        for positions, results in shard_results:
            if len(positions) != len(results):
                raise ValueError(
                    f"shard returned {len(results)} results for {len(positions)} entities"
                )
            for position, result in zip(positions, results):
                merged[position] = result
            filled += len(positions)
        if filled != total:
            raise ValueError(f"merged {filled} results for {total} request entities")
        return merged
