"""Serving workers: bundle-backed request executors, in one process or many.

A :class:`WorkerState` is one worker's view of the platform: it
``load_snapshot``\\ s a persisted KG bundle (mmap — arrays land in the
shared OS page cache, so N workers on one host map the *same* physical
pages) and lazily stands up the helpers each request family needs — the
graph engine with the adopted CSR, per-tier annotation pipelines, and the
traversal related-entities backend built over the adopted snapshot.

Three executors share one ``submit(request) -> Future`` surface:

* **inline** — the same-process fallback: one shared state, executed
  synchronously on the caller's thread.  Tests and small deployments need
  no subprocesses, and every other executor must be byte-identical to it.
* **thread** — N threads over one shared state.  Concurrency-correct
  (the columnar layers are immutable and lazy materialisation is
  lock-guarded) but GIL-bound; useful for I/O-ish workloads and for
  hammering the thread-safety contract in tests.
* **process** — a ``ProcessPoolExecutor`` whose initializer loads the
  bundle in each child.  This is the throughput configuration: annotation
  is pure Python/NumPy compute, so only processes scale it across cores.

Serving walk semantics are **per-entity**: each entity's walks replay an
independent substream derived from ``(seed, entity)`` via
:func:`entity_walk_seed`.  That makes a walk request's result invariant
to sharding, worker count and executor mode — the property the router's
"byte-identical through the router" contract rests on.  (A plain
:meth:`GraphEngine.random_walks` call over a *list* threads one stream
through all entities, which no partitioning could reproduce.)
"""

from __future__ import annotations

import contextvars
import threading
import time
from concurrent.futures import Future, ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from pathlib import Path

from repro.common import tracing
from repro.common.metrics import MetricsRegistry
from repro.common.rng import stable_hash
from repro.serving import faults
from repro.serving.resilience import CircuitBreaker, RetryPolicy, is_retryable
from repro.serving.requests import (
    TENANT_REQUEST_TYPES,
    AnnotateRequest,
    FactRankRequest,
    KnnRequest,
    NeighborhoodRequest,
    RelatedRequest,
    Request,
    SimilarityRequest,
    VerifyRequest,
    WalkRequest,
)

WORKER_MODES = ("inline", "thread", "process")

# Seeds live in numpy's accepted range; 2**63 keeps them positive int64.
_WALK_SEED_SPACE = 2**63


def entity_walk_seed(seed: int, entity: str) -> int:
    """Derived, stable per-entity walk seed.

    The serving contract for walks: entity ``e`` of a request with seed
    ``s`` draws from ``substream(entity_walk_seed(s, e), "random-walks")``
    — one independent stream per entity, so any partition of a request
    over any number of workers replays the exact same draws.
    """
    return stable_hash(f"serve-walks:{seed}:{entity}", _WALK_SEED_SPACE)


@dataclass(frozen=True)
class WorkerConfig:
    """Deterministic per-worker build recipe (identical across replicas).

    Every worker must construct byte-identical helpers, so everything a
    lazy build depends on is pinned here rather than defaulted at call
    sites.  ``verify`` mirrors :func:`load_snapshot`'s checksum knob —
    workers re-mapping a bundle the parent already verified can skip the
    hash pass for a faster spawn.
    """

    related_dim: int = 32
    related_walk_length: int = 8
    related_walks_per_entity: int = 6
    related_window: int = 3
    related_seed: int = 0
    verify: bool = True
    # Embedding-family backends (fact ranking / verification / similarity /
    # k-NN) adopt the bundle's persisted ``embeddings/`` layer when its
    # recipe matches these fields, and train from the fact log otherwise.
    # Training is fully seeded and build_dataset orders its vocabulary
    # deterministically, so every replica — thread or subprocess — derives
    # byte-identical vectors from the same bundle either way.
    embedding_model: str = "distmult"
    embedding_dim: int = 32
    embedding_epochs: int = 15
    embedding_seed: int = 0
    calibration_fraction: float = 0.1
    # k-NN index shape: the first four are adopt-match recipe fields, the
    # last two are query-time knobs (see EmbeddingSuiteConfig).
    knn_nlist: int = 16
    knn_kmeans_iterations: int = 8
    knn_seed: int = 0
    knn_quantization: str | None = None
    knn_nprobe: int = 4
    knn_rerank_factor: int = 4

    def embedding_config(self) -> "EmbeddingSuiteConfig":
        """These fields as the embedding-suite build recipe."""
        from repro.embeddings.suite import EmbeddingSuiteConfig

        return EmbeddingSuiteConfig(
            model=self.embedding_model,
            dim=self.embedding_dim,
            epochs=self.embedding_epochs,
            seed=self.embedding_seed,
            calibration_fraction=self.calibration_fraction,
            knn_nlist=self.knn_nlist,
            knn_nprobe=self.knn_nprobe,
            knn_kmeans_iterations=self.knn_kmeans_iterations,
            knn_seed=self.knn_seed,
            knn_quantization=self.knn_quantization,
            knn_rerank_factor=self.knn_rerank_factor,
        )


class WorkerState:
    """One worker's loaded bundle plus lazily-built request helpers."""

    def __init__(self, bundle_dir: str | Path, config: WorkerConfig | None = None) -> None:
        self.bundle_dir = Path(bundle_dir)
        self.config = config or WorkerConfig()
        self.snapshot = load_snapshot_state(self.bundle_dir, verify=self.config.verify)
        self.engine = self.snapshot.engine()
        self.store_version = int(self.snapshot.manifest["store_version"])
        self._pipelines: dict[str, object] = {}
        self._related = None
        self._embedding_suite = None
        # Lazy helper construction must be once-only when worker threads
        # share this state (thread mode).
        self._build_lock = threading.RLock()

    @property
    def dictionary(self):
        """The snapshot dictionary (router id source), or ``None`` if absent."""
        adjacency = self.snapshot.adjacency
        return adjacency.dictionary if adjacency is not None else None

    def pipeline(self, tier: str):
        """The annotation pipeline for ``tier``, built on first use."""
        pipeline = self._pipelines.get(tier)
        if pipeline is None:
            with self._build_lock:
                pipeline = self._pipelines.get(tier)
                if pipeline is None:
                    pipeline = self.snapshot.annotation_pipeline(tier=tier)
                    self._pipelines[tier] = pipeline
        return pipeline

    def related_backend(self):
        """The traversal related-entities backend, built on first use.

        Construction is deterministic in :class:`WorkerConfig`, so every
        replica builds the same vectors; the worker's engine (with the
        mmap-adopted CSR) is reused, skipping the adjacency rebuild.
        """
        if self._related is None:
            with self._build_lock:
                if self._related is None:
                    from repro.services.related_entities import TraversalRelatedEntities

                    config = self.config
                    self._related = TraversalRelatedEntities(
                        self.snapshot.store,
                        dim=config.related_dim,
                        walk_length=config.related_walk_length,
                        walks_per_entity=config.related_walks_per_entity,
                        window=config.related_window,
                        seed=config.related_seed,
                        engine=self.engine,
                    )
        return self._related

    def embedding_suite(self) -> "EmbeddingSuite":
        """The embedding-family backends, adopted (or trained) on first use.

        One deterministic build serves all three newly-servable request
        families: a :class:`FactRanker` (ranking), a calibrated
        :class:`FactVerifier` (verification) and an
        :class:`EmbeddingService` (similarity / k-NN) share one trained
        model, exactly as Figure 1's serving platform shares its
        embedding service across knowledge services.  When the bundle
        carries a fresh ``embeddings/`` layer matching this worker's
        recipe, the suite is reconstructed zero-copy from the mmapped
        arrays — no SGD, no calibration pass, no k-means — so N replicas
        share one page-cache copy of the trained state.
        """
        if self._embedding_suite is None:
            with self._build_lock:
                if self._embedding_suite is None:
                    self._embedding_suite = self.snapshot.embedding_suite(
                        self.config.embedding_config()
                    )
        return self._embedding_suite

    # -- request execution ---------------------------------------------------

    def execute(self, request: Request) -> list:
        """Answer one request; results are per-entity (or per-text) lists.

        The two ``fault_point`` hooks bracket the dispatch: the first can
        kill/stall/flake the worker *before* any compute (a crash mid
        request), the second can corrupt the *result* on its way out (a
        truncated response).  Both are a no-op unless a chaos plan is
        armed.
        """
        wire_type = getattr(type(request), "wire_type", "")
        with tracing.span("worker.execute", request_type=wire_type):
            faults.fault_point(faults.SITE_WORKER_EXECUTE, request_type=wire_type)
            result = self._dispatch(request)
            return faults.fault_point(
                faults.SITE_WORKER_RESULT, result, request_type=wire_type
            )

    def _dispatch(self, request: Request) -> list:
        if isinstance(request, TENANT_REQUEST_TYPES):
            # Isolation at dispatch: the shared fleet serves only shared
            # state.  Tenant writes are handled by the TenantRegistry in
            # the service process and must never reach a worker replica.
            raise TypeError(
                f"{type(request).__name__} targets per-tenant state; "
                "shared workers never serve the tenant request family"
            )
        if isinstance(request, WalkRequest):
            return self._walks(request)
        if isinstance(request, NeighborhoodRequest):
            return self._neighborhoods(request)
        if isinstance(request, RelatedRequest):
            return self._related_entities(request)
        if isinstance(request, AnnotateRequest):
            return self.pipeline(request.tier).annotate_batch(list(request.texts))
        if isinstance(request, FactRankRequest):
            # One batched scoring pass across every subject in this
            # (sub-)request; per-subject output identical to rank().
            return self.embedding_suite().ranker.rank_many(
                list(request.entities), request.predicate
            )
        if isinstance(request, VerifyRequest):
            return self.embedding_suite().verifier.verify_batch(
                list(request.candidates)
            )
        if isinstance(request, SimilarityRequest):
            return self.embedding_suite().embedding_service.batch_similarity(
                list(request.pairs)
            )
        if isinstance(request, KnnRequest):
            # One gathered query matrix through the index; per-entity hits
            # identical to scalar knn(), so results stay shard-invariant.
            return self.embedding_suite().embedding_service.knn_many(
                list(request.entities), k=request.k, exclude_self=request.exclude_self
            )
        raise TypeError(f"unsupported request type: {type(request).__name__}")

    def _walks(self, request: WalkRequest) -> list[list[list[str]]]:
        engine = self.engine
        return [
            engine.random_walks(
                [entity],
                walk_length=request.walk_length,
                walks_per_entity=request.walks_per_entity,
                seed=entity_walk_seed(request.seed, entity),
            )
            for entity in request.entities
        ]

    def _neighborhoods(self, request: NeighborhoodRequest) -> list[list[str]]:
        engine = self.engine
        # Sorted for deterministic merge output (sets have no wire order).
        return [
            sorted(engine.neighborhood(entity, hops=request.hops))
            for entity in request.entities
        ]

    def _related_entities(self, request: RelatedRequest) -> list[list[tuple[str, float]]]:
        backend = self.related_backend()
        return [
            [(hit.entity, hit.score) for hit in backend.related(entity, k=request.k)]
            for entity in request.entities
        ]


def load_snapshot_state(bundle_dir: Path, *, verify: bool):
    """``load_snapshot`` indirection point (kept tiny for test monkeypatching)."""
    from repro.kg.persistence import load_snapshot

    return load_snapshot(bundle_dir, verify=verify)


def build_embedding_suite(store, config: WorkerConfig) -> "EmbeddingSuite":
    """Train + calibrate the embedding-family backends from ``store``.

    Back-compat shim over :func:`repro.embeddings.suite.build_embedding_suite`
    (where the build moved when the persisted embedding layer made it a
    platform concern rather than a worker detail), keeping the historical
    ``WorkerConfig``-flavoured signature.
    """
    from repro.embeddings.suite import build_embedding_suite as build_suite

    return build_suite(store, config.embedding_config())


def _import_embedding_suite():
    from repro.embeddings.suite import EmbeddingSuite

    return EmbeddingSuite


def __getattr__(name: str):
    # EmbeddingSuite historically lived here; keep the import path working
    # without paying the embedding-stack import at worker-module load.
    if name == "EmbeddingSuite":
        return _import_embedding_suite()
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


# -- executors ----------------------------------------------------------------


class InlineExecutor:
    """Same-process fallback: execute synchronously on the caller's thread."""

    def __init__(self, state: WorkerState) -> None:
        self.state = state

    def submit(self, request: Request) -> Future:
        future: Future = Future()
        try:
            future.set_result(self.state.execute(request))
        except BaseException as exc:  # surfaced via future, like real pools
            future.set_exception(exc)
        return future

    def respawn(self) -> bool:
        """Nothing to respawn: the caller's thread cannot die under us."""
        return False

    def live_workers(self) -> int:
        return 1

    def close(self) -> None:
        pass


class ThreadExecutor:
    """N threads sharing one state (immutable snapshot, lock-guarded lazies)."""

    def __init__(self, state: WorkerState, num_workers: int) -> None:
        self.state = state
        self.num_workers = num_workers
        self._pool = ThreadPoolExecutor(
            max_workers=num_workers, thread_name_prefix="kg-serve"
        )

    def submit(self, request: Request) -> Future:
        if tracing.active() is not None:
            # Executor threads do not inherit the caller's contextvars;
            # carry the current span across so worker spans nest right.
            context = contextvars.copy_context()
            return self._pool.submit(context.run, self.state.execute, request)
        return self._pool.submit(self.state.execute, request)

    def respawn(self) -> bool:
        """Thread pools survive task exceptions; no replacement needed."""
        return False

    def live_workers(self) -> int:
        return self.num_workers

    def close(self) -> None:
        self._pool.shutdown(wait=True)


_PROCESS_STATE: WorkerState | None = None


def _process_initializer(
    bundle_dir: str,
    config: WorkerConfig,
    plan: "faults.FaultPlan | None" = None,
    incarnation: int = 1,
) -> None:
    global _PROCESS_STATE
    # Crashes in a subprocess worker must be real process deaths (the pool
    # then reports BrokenProcessPool, exactly like a segfault would).
    faults.mark_worker_process()
    if plan is not None:
        # Re-arm under this incarnation's salt: a replacement replica draws
        # a different (still deterministic) injection schedule, so one
        # scheduled crash can't wedge every respawn forever.
        faults.arm(plan.reseeded(incarnation))
    _PROCESS_STATE = WorkerState(bundle_dir, config)


_COLLECTOR: tracing.Tracer | None = None


class _TracedResult:
    """A worker result riding home with the spans recorded computing it."""

    __slots__ = ("result", "spans")

    def __init__(self, result: list, spans: list[dict]) -> None:
        self.result = result
        self.spans = spans

    def __getstate__(self):
        return (self.result, self.spans)

    def __setstate__(self, state) -> None:
        self.result, self.spans = state


def _process_execute(request: Request, trace_ctx: "tracing.TraceContext | None" = None) -> list:
    assert _PROCESS_STATE is not None, "worker process used before initialization"
    if trace_ctx is None:
        return _PROCESS_STATE.execute(request)
    # The parent shipped its trace position: record this worker's spans
    # into a local collector and return them alongside the result so the
    # parent tracer can stitch them into the live trace.
    global _COLLECTOR
    collector = _COLLECTOR
    if collector is None:
        collector = _COLLECTOR = tracing.arm(tracing.Tracer(ring_capacity=0))
    try:
        with tracing.seeded(trace_ctx):
            result = _PROCESS_STATE.execute(request)
    except BaseException:
        # A failed attempt's spans have no future to ride home on; drop
        # them so they cannot leak into the next request's bundle.
        collector.drain()
        raise
    return _TracedResult(result, collector.drain())


def _unwrap_traced(inner: Future) -> Future:
    """An outer future resolving to the bare result, adopting ridden spans.

    Adoption happens *before* the outer future resolves, so by the time a
    caller observes the result the worker's spans are already in the
    parent trace — the request's root span cannot finish first.
    """
    outer: Future = Future()

    def _done(finished: Future) -> None:
        try:
            value = finished.result()
        except BaseException as exc:
            outer.set_exception(exc)
            return
        if isinstance(value, _TracedResult):
            tracer = tracing.active()
            if tracer is not None and value.spans:
                tracer.adopt(value.spans)
            value = value.result
        outer.set_result(value)

    inner.add_done_callback(_done)
    return outer


class ProcessExecutor:
    """N subprocesses, each mapping the same bundle (shared page cache).

    The executor is *respawnable*: when a child dies (a real crash, an
    OOM kill, or an injected ``os._exit``) the stdlib pool marks itself
    broken and refuses further work — so supervision swaps in a fresh
    pool built from the same pinned ``WorkerConfig`` over the same
    immutable bundle.  Replacement replicas are byte-identical to the
    ones they replace, which is what keeps retried answers identical to
    never-failed ones.
    """

    def __init__(
        self, bundle_dir: Path, num_workers: int, config: WorkerConfig
    ) -> None:
        self.bundle_dir = Path(bundle_dir)
        self.num_workers = num_workers
        self.config = config
        self.respawns = 0
        self._incarnation = 0
        self._lock = threading.Lock()
        self._pool = self._spawn()

    def _spawn(self) -> ProcessPoolExecutor:
        self._incarnation += 1
        return ProcessPoolExecutor(
            max_workers=self.num_workers,
            initializer=_process_initializer,
            initargs=(
                str(self.bundle_dir),
                self.config,
                faults.active_plan(),
                self._incarnation,
            ),
        )

    def submit(self, request: Request) -> Future:
        trace_ctx = tracing.current_context()
        try:
            inner = self._pool.submit(_process_execute, request, trace_ctx)
        except RuntimeError:
            # A BrokenProcessPool (or a racing shutdown) rejects at submit
            # time; heal once and re-dispatch — the caller's retry budget
            # covers anything beyond that.
            self.respawn()
            inner = self._pool.submit(_process_execute, request, trace_ctx)
        if trace_ctx is None:
            return inner
        return _unwrap_traced(inner)

    def respawn(self) -> bool:
        """Replace a broken pool with a fresh fleet; ``True`` if we did.

        Lock-guarded and checked: concurrent failures from one dead child
        must heal the pool once, not stampede N replacements.
        """
        with self._lock:
            if not getattr(self._pool, "_broken", False):
                return False
            dead = self._pool
            self._pool = self._spawn()
            self.respawns += 1
        dead.shutdown(wait=False, cancel_futures=True)
        return True

    def live_workers(self) -> int:
        """Children currently alive (0 while a broken pool awaits respawn)."""
        with self._lock:
            if getattr(self._pool, "_broken", False):
                return 0
            processes = getattr(self._pool, "_processes", None)
        if not processes:
            # Stdlib spawns children lazily on first submit; an idle fresh
            # pool still counts as its full configured width.
            return self.num_workers
        return sum(1 for proc in processes.values() if proc.is_alive())

    def close(self) -> None:
        self._pool.shutdown(wait=True)


class WorkerPool:
    """A fleet of bundle replicas behind one ``submit``/``run`` surface.

    ``mode`` picks the executor (``inline``/``thread``/``process``); all
    three answer identically, so deployments move between them by flag.
    The pool always keeps a parent-side :class:`WorkerState` — inline and
    thread modes execute on it, process mode uses it for the router's
    dictionary and the bundle's ``store_version`` (children map the same
    pages, so the extra load is page-cache cheap).

    Request counts and a bounded latency histogram are tracked in
    ``metrics`` (``pool.requests``, ``pool.requests.<Type>``,
    ``pool.latency``); :meth:`stats` flattens them for the facade.

    Supervision: :meth:`resolve` waits on a future under ``retry_policy``
    — a retryable failure (worker crash, broken pool, transient I/O)
    heals the executor (:meth:`ProcessExecutor.respawn`) and re-dispatches
    until the budget runs out, while the pool-level :class:`CircuitBreaker`
    trips after sustained failure so callers stop hammering a dead fleet.
    Retries are safe because every request is a pure read over an
    immutable snapshot generation, and replacement replicas rebuild from
    the same pinned ``WorkerConfig`` — a retried answer is byte-identical
    to a never-failed one.
    """

    def __init__(
        self,
        bundle_dir: str | Path,
        *,
        num_workers: int = 1,
        mode: str = "inline",
        config: WorkerConfig | None = None,
        metrics: MetricsRegistry | None = None,
        retry_policy: RetryPolicy | None = None,
        breaker: CircuitBreaker | None = None,
    ) -> None:
        if mode not in WORKER_MODES:
            raise ValueError(f"mode must be one of {WORKER_MODES}, got {mode!r}")
        if num_workers <= 0:
            raise ValueError(f"num_workers must be positive, got {num_workers}")
        self.bundle_dir = Path(bundle_dir)
        self.num_workers = num_workers
        self.mode = mode
        self.config = config or WorkerConfig()
        self.retry_policy = retry_policy or RetryPolicy()
        self.metrics = metrics or MetricsRegistry("worker-pool")
        self.breaker = breaker or CircuitBreaker("pool", metrics=self.metrics)
        if self.breaker.metrics is None:
            # Caller-supplied breakers still count transitions here unless
            # they already report somewhere else.
            self.breaker.metrics = self.metrics
        self.local_state = WorkerState(self.bundle_dir, self.config)
        if mode == "inline":
            self._executor = InlineExecutor(self.local_state)
        elif mode == "thread":
            self._executor = ThreadExecutor(self.local_state, num_workers)
        else:
            # The parent-side load above already ran the checksum pass (per
            # config.verify); children re-map the very same verified bundle,
            # so they skip it — exactly the WorkerConfig.verify fast path —
            # instead of paying num_workers redundant full-bundle hashes.
            self._executor = ProcessExecutor(
                self.bundle_dir, num_workers, replace(self.config, verify=False)
            )
        self._closed = False

    @property
    def store_version(self) -> int:
        """The bundle generation every worker serves."""
        return self.local_state.store_version

    def submit(self, request: Request) -> Future:
        """Dispatch one request; the future resolves to its result list."""
        if self._closed:
            raise RuntimeError("worker pool is closed")
        faults.fault_point(
            faults.SITE_POOL_SUBMIT,
            request_type=getattr(type(request), "wire_type", ""),
        )
        self.metrics.incr("pool.requests")
        self.metrics.incr(f"pool.requests.{type(request).__name__}")
        start = time.perf_counter()
        future = self._executor.submit(request)
        future.add_done_callback(
            lambda _: self.metrics.hist("pool.latency", time.perf_counter() - start)
        )
        return future

    def resolve(self, request: Request, future: Future) -> tuple[list, int]:
        """Wait on ``future``, retrying under the policy; ``(result, attempts)``.

        Each failed attempt records into the breaker and heals the
        executor; past the budget (or on a non-retryable error) the last
        exception propagates to the caller's degradation path.  Waiting
        through :meth:`resolve` rather than ``future.result()`` is what
        turns a worker death into a retry instead of a client-visible 500.
        """
        policy = self.retry_policy
        key = repr(request)
        attempts = 0
        while True:
            attempts += 1
            try:
                result = future.result()
            except BaseException as exc:
                self.metrics.incr("pool.failures")
                self.breaker.record_failure()
                self._supervise()
                if attempts >= policy.max_attempts or not is_retryable(exc):
                    raise
                self.metrics.incr("pool.retries")
                tracing.event(
                    "pool.retry", attempt=attempts, error=type(exc).__name__
                )
                time.sleep(policy.backoff_s(attempts, key=key))
                # Re-check the breaker before re-dispatching: sustained
                # failure must stop burning retries on a dead fleet.
                self.breaker.check()
                future = self.submit(request)
                continue
            self.breaker.record_success()
            return result, attempts

    def run_resilient(self, request: Request) -> tuple[list, int]:
        """Breaker-gated dispatch-and-wait; ``(result, attempts)``."""
        self.breaker.check()
        return self.resolve(request, self.submit(request))

    def _supervise(self) -> None:
        """Heal the executor after a failure (respawn dead process fleets).

        A successful respawn also resets the pool breaker: a broken pool
        fails every in-flight future at once (one fault, N recorded
        failures), and that burst must not open the breaker against the
        fresh fleet that just replaced it.
        """
        if self._executor.respawn():
            self.metrics.incr("pool.respawns")
            tracing.event("pool.respawn")
            self.breaker.reset()

    def run(self, request: Request) -> list:
        """Dispatch and wait (retrying under the policy)."""
        result, _ = self.run_resilient(request)
        return result

    def map(self, requests: list[Request]) -> list[list]:
        """Dispatch many requests concurrently, results in request order.

        Each future resolves through the retry loop, so one crashed
        worker mid-fan-out costs a resubmit, not the whole map.
        """
        futures = [self.submit(request) for request in requests]
        return [
            self.resolve(request, future)[0]
            for request, future in zip(requests, futures)
        ]

    def live_workers(self) -> int:
        """Workers currently able to take requests."""
        return self._executor.live_workers()

    def stats(self) -> dict[str, float | str]:
        """Flat metrics snapshot plus pool shape and breaker state."""
        out: dict[str, float | str] = dict(self.metrics.snapshot())
        out["pool.workers"] = float(self.num_workers)
        out["pool.store_version"] = float(self.store_version)
        out["pool.live_workers"] = float(self.live_workers())
        out["pool.executor_respawns"] = float(
            getattr(self._executor, "respawns", 0)
        )
        breaker = self.breaker.snapshot()
        out["pool.breaker.state"] = breaker["state"]
        out["pool.breaker.transitions"] = float(breaker["transitions"])
        return out

    def close(self) -> None:
        """Shut the executor down (idempotent)."""
        if not self._closed:
            self._closed = True
            self._executor.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
