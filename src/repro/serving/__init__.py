"""Sharded, batched KG serving over persisted snapshot bundles (§4–5).

The subsystem that fronts the platform: a :class:`ServingService` facade
with one uniform ``serve(request) -> Response`` dispatch over a
:class:`ShardRouter` (int32 id-space partitioning with deterministic
merges), a :class:`WorkerPool` of bundle replicas (inline / thread /
subprocess executors over mmap-shared snapshot pages), a
:class:`MicroBatcher` (cross-document annotation batching) and a
versioned :class:`QueryCache` (LRU over ``(store_version, request)``).
:mod:`repro.serving.protocol` is the schema-versioned JSON wire codec and
:mod:`repro.serving.gateway` the asyncio/HTTP front door
(``python -m repro.serving.gateway <bundle>``).

Resilience rides the same stack: :mod:`repro.serving.faults` is the
deterministic fault-injection harness (seeded :class:`FaultPlan`,
``fault_point`` hooks at the worker/pool/gateway), and
:mod:`repro.serving.resilience` the primitives the supervision paths are
built from (:class:`RetryPolicy`, :class:`CircuitBreaker`); the facade
degrades gracefully (partial ``degraded`` envelopes, serve-stale-on-error)
instead of failing whole requests.
"""

# NOTE: repro.serving.gateway is deliberately NOT imported here — it is a
# runnable module (`python -m repro.serving.gateway`), and importing it
# from the package __init__ would trigger the double-import RuntimeWarning
# on boot.  Import AsyncGateway/GatewayHTTPServer from the module directly.
from repro.serving.batcher import MicroBatcher
from repro.serving.cache import QueryCache
from repro.serving.faults import (
    FaultPlan,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    InjectedIOError,
    fault_point,
)
from repro.serving.protocol import (
    PROTOCOL_VERSION,
    ProtocolError,
    decode_request,
    decode_response,
    encode_request,
    encode_response,
)
from repro.serving.requests import (
    AnnotateRequest,
    ErrorInfo,
    FactRankRequest,
    KnnRequest,
    NeighborhoodRequest,
    RelatedRequest,
    Request,
    Response,
    ServingError,
    SimilarityRequest,
    VerifyRequest,
    WalkRequest,
    sub_request,
)
from repro.serving.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    RetryPolicy,
    ShardResultError,
    TransientServingError,
    WorkerCrashError,
    is_retryable,
)
from repro.serving.router import ShardRouter
from repro.serving.service import (
    PartialResultError,
    ServingService,
    requests_from_query_log,
    save_and_serve,
)
from repro.serving.worker import (
    WorkerConfig,
    WorkerPool,
    WorkerState,
    entity_walk_seed,
)
