"""Sharded, batched KG serving over persisted snapshot bundles (§4–5).

The subsystem that fronts the platform: a :class:`ServingService` facade
wiring a :class:`ShardRouter` (int32 id-space partitioning with
deterministic merges), a :class:`WorkerPool` of bundle replicas (inline /
thread / subprocess executors over mmap-shared snapshot pages), a
:class:`MicroBatcher` (cross-document annotation batching) and a
versioned :class:`QueryCache` (LRU over ``(store_version, request)``).
"""

from repro.serving.batcher import MicroBatcher
from repro.serving.cache import QueryCache
from repro.serving.requests import (
    AnnotateRequest,
    NeighborhoodRequest,
    RelatedRequest,
    WalkRequest,
    sub_request,
)
from repro.serving.router import ShardRouter
from repro.serving.service import ServingService, save_and_serve
from repro.serving.worker import (
    WorkerConfig,
    WorkerPool,
    WorkerState,
    entity_walk_seed,
)
