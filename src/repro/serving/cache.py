"""Versioned LRU result cache for the serving layer.

Keys are ``(store_version, request)`` — requests are frozen dataclasses,
so the pair hashes directly.  Versioning makes invalidation structural:
results computed against one snapshot generation can never answer a query
against another, and :meth:`QueryCache.adopt_version` purges every entry
of older generations the moment a new bundle is adopted (entries would
otherwise merely age out of the LRU).

The storage mechanism is :class:`repro.common.kvstore.MemoryKVStore` —
the same thread-safe LRU the annotation layer's §3.2 KV cache uses —
with versioned keying and the generation purge layered on top.  Hit,
miss and eviction accounting stays in the store (one source of truth);
the registry only records generation invalidations.

Cached values are returned by reference and must be treated as read-only
— the serving facade hands them straight to clients, exactly like the
mmap-backed arrays underneath.

Serve-stale-on-error: when a generation swap demotes entries, the most
recent result per request survives in a bounded *stale* store instead of
vanishing.  :meth:`QueryCache.get_stale` is the degradation path's last
resort — a previous-generation answer beats a 500, and the serving
envelope flags it ``degraded`` with the stale ``store_version`` so
clients know exactly what they got.
"""

from __future__ import annotations

from typing import Any, Hashable, Iterable

from repro.common import tracing
from repro.common.kvstore import MemoryKVStore
from repro.common.metrics import MetricsRegistry

_SENTINEL = object()


class QueryCache:
    """Thread-safe LRU over ``(store_version, [tenant,] request)`` keys."""

    def __init__(
        self,
        capacity: int = 2048,
        metrics: MetricsRegistry | None = None,
        stale_capacity: int = 256,
    ) -> None:
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if stale_capacity < 0:
            raise ValueError(f"stale_capacity must be >= 0, got {stale_capacity}")
        self.capacity = capacity
        self.stale_capacity = stale_capacity
        self.metrics = metrics or MetricsRegistry("query-cache")
        self._store = MemoryKVStore(capacity=capacity)
        # stale key -> (store_version, value): the newest demoted result
        # per request, kept for serve-stale-on-error (0 disables it).
        self._stale = MemoryKVStore(capacity=max(stale_capacity, 1))
        # The generation this cache currently accepts live writes for;
        # None until the first adopt_version.  Writes tagged with any
        # other version demote straight to the stale store — see put().
        self._adopted_version: int | None = None

    @staticmethod
    def _key(version: int, request: Hashable, tenant) -> tuple:
        # Tenantless keys keep their historical 2-tuple shape (pinned by
        # tests and by adopt_version's key[0] sweep, which works on both
        # shapes).  A tenant entry keys on (tenant_id, tenant_version) so
        # a tenant write invalidates structurally, exactly like a shared
        # generation swap does — and two tenants can never collide even
        # on identical requests.
        if tenant is None:
            return (version, request)
        return (version, tuple(tenant), request)

    @staticmethod
    def _stale_key(request: Hashable, tenant) -> Hashable:
        # Stale fallbacks ignore versions by design but must never cross
        # tenants: key by tenant_id only (any version of *your own* past
        # answer may serve degraded; nobody else's ever can).
        if tenant is None:
            return request
        return (tuple(tenant)[0], request)

    @staticmethod
    def _family(request: Hashable) -> str:
        return getattr(type(request), "wire_type", None) or type(request).__name__

    def get(self, version: int, request: Hashable, tenant=None) -> Any:
        """The cached result, or ``None`` on a miss.

        ``tenant`` is a ``(tenant_id, tenant_version)`` pair scoping the
        entry to one tenant overlay generation, or ``None`` for the
        shared graph.  Aggregate hit/miss accounting lives in the backing
        store (one source of truth); read it via
        :attr:`hits`/:attr:`misses`/:attr:`hit_rate`.  Per-request-family
        counters land in the registry (``cache.hits.<wire_type>`` /
        ``cache.misses.<wire_type>``) for the /metrics exposition.
        """
        value = self._store.get(self._key(version, request, tenant), _SENTINEL)
        family = self._family(request)
        if value is _SENTINEL:
            self.metrics.incr(f"cache.misses.{family}")
            return None
        self.metrics.incr(f"cache.hits.{family}")
        return value

    def put(self, version: int, request: Hashable, value: Any, tenant=None) -> None:
        """Insert a result, evicting the least-recently-used past capacity.

        A write tagged with a generation other than the adopted one — an
        in-flight request that lost a race with :meth:`adopt_version` —
        never lands in the live store: it demotes straight to the stale
        store (newest generation per request wins), closing the window in
        which a straggling old-generation write could be re-read by a
        request that captured the old version before the swap.
        """
        adopted = self._adopted_version
        if adopted is not None and version != adopted:
            self.metrics.incr("cache.swap_races")
            self._demote(version, request, value, tenant)
            return
        self._store.put(self._key(version, request, tenant), value)

    def _demote(self, version: int, request: Hashable, value: Any, tenant=None) -> None:
        """Move one entry into the stale store if it is the newest there."""
        if self.stale_capacity == 0:
            return
        key = self._stale_key(request, tenant)
        existing = self._stale.get(key, _SENTINEL)
        if existing is _SENTINEL or existing[0] < version:
            self._stale.put(key, (version, value))

    def warm(self, version: int, entries: Iterable[tuple[Hashable, Any]]) -> int:
        """Pre-populate the cache with computed ``(request, result)`` pairs.

        The ROADMAP's "cache warming" path: a new generation's cache can
        be seeded from replayed query-log traffic before the fleet takes
        live requests.  Requests that declare themselves non-cacheable
        (``cacheable()`` returning false — e.g. never-repeating annotation
        batches) are skipped, the same admission policy the serving
        dispatch applies.  Returns the number of entries admitted.
        """
        admitted = 0
        for request, value in entries:
            admission = getattr(request, "cacheable", None)
            if callable(admission) and not admission():
                continue
            self.put(version, request, value)
            admitted += 1
        if admitted:
            self.metrics.incr("cache.warmed", admitted)
        return admitted

    def get_stale(self, request: Hashable, tenant=None) -> tuple[int, Any] | None:
        """The newest demoted ``(store_version, result)`` for ``request``.

        The degradation path's last resort: consulted only after fresh
        compute failed past its retry budget.  Returns ``None`` when no
        previous generation ever answered this request (or stale serving
        is disabled).  Tenant-scoped lookups only ever see the same
        tenant's demoted answers.
        """
        if self.stale_capacity == 0:
            return None
        family = self._family(request)
        entry = self._stale.get(self._stale_key(request, tenant), _SENTINEL)
        if entry is _SENTINEL:
            self.metrics.incr("cache.stale_misses")
            self.metrics.incr(f"cache.stale_misses.{family}")
            return None
        self.metrics.incr("cache.stale_hits")
        self.metrics.incr(f"cache.stale_hits.{family}")
        tracing.event("cache.stale_hit", store_version=entry[0])
        return entry

    def family_stats(self) -> dict[str, dict[str, int]]:
        """Per-request-family hit/miss/stale counts, from the registry.

        Shape: ``{wire_type: {"hits": n, "misses": n, "stale_hits": n}}``
        — the structured twin of the ``cache_*_by_type`` Prometheus
        families the service exposes.
        """
        # snapshot() copies under the registry lock — iterating the live
        # counters dict would race a first-of-its-family incr() from a
        # serving thread (dict grows mid-iteration).
        counters = self.metrics.snapshot()
        out: dict[str, dict[str, int]] = {}
        for kind in ("hits", "misses", "stale_hits", "stale_misses"):
            prefix = f"counter.cache.{kind}."
            for key, count in counters.items():
                if key.startswith(prefix) and len(key) > len(prefix):
                    family = key[len(prefix) :]
                    out.setdefault(family, {})[kind] = int(count)
        return out

    def adopt_version(self, version: int) -> int:
        """Drop every entry not built at ``version``; returns count dropped.

        Called when the service adopts a new snapshot generation — stale
        generations must free their memory immediately, not linger until
        LRU pressure pushes them out.

        The adopted version is published *before* the purge sweeps, so a
        put racing this call either lands before a sweep (and is swept)
        or observes the new version and self-demotes (:meth:`put`); a
        second sweep after the first closes the remaining interleaving.
        Either way no old-generation entry survives in the live store.

        Dropped entries are *demoted*, not lost: the newest result per
        request moves into the bounded stale store for
        serve-stale-on-error (:meth:`get_stale`).
        """
        self._adopted_version = version
        dropped = 0
        for _sweep in range(2):
            stale = [key for key in self._store.keys() if key[0] != version]
            for key in stale:
                value = self._store.get(key, _SENTINEL)
                if value is not _SENTINEL:
                    # 2-tuple = shared entry, 3-tuple = (version, tenant,
                    # request) — demote under the matching stale key.
                    if len(key) == 3:
                        self._demote(key[0], key[2], value, key[1])
                    else:
                        self._demote(key[0], key[1], value)
                self._store.delete(key)
            dropped += len(stale)
            if not stale:
                break
        if dropped:
            self.metrics.incr("cache.invalidated", dropped)
            tracing.event(
                "cache.invalidated", store_version=version, dropped=dropped
            )
        return dropped

    def clear(self) -> None:
        """Drop everything, stale entries included (counters are preserved)."""
        self._store.clear()
        self._stale.clear()

    def __len__(self) -> int:
        return len(self._store)

    @property
    def hits(self) -> int:
        """Lookups served from the cache so far."""
        return self._store.hits

    @property
    def misses(self) -> int:
        """Lookups that fell through so far."""
        return self._store.misses

    @property
    def evictions(self) -> int:
        """LRU evictions so far."""
        return self._store.evictions

    @property
    def hit_rate(self) -> float:
        """Hits / (hits + misses) so far (0.0 before any traffic)."""
        return self._store.hit_rate
