"""Corpus-level micro-batching of annotation requests.

The ROADMAP's "document batching" item: ``encode_batch`` and
``rerank_batch`` don't care about document boundaries, so queued texts —
from different clients, different documents — coalesce into *one*
cross-document scoring pass (:meth:`AnnotationPipeline.annotate_batch`)
instead of one matmul per document.

The batcher is synchronous and thread-safe, with two flush triggers:

* **size** — the pending queue reaching ``max_batch`` flushes immediately;
* **time** — a submit arriving after the oldest pending text has waited
  ``max_delay_s`` flushes the backlog first (the arriving text starts the
  next batch), bounding staleness under continuous traffic.

There is no daemon thread: an idle tail is drained by :meth:`flush`,
which :meth:`annotate_many` and the serving facade call at their sync
points.  Each queued text gets a :class:`~concurrent.futures.Future`;
concurrent submitters whose texts land in one batch share a single
downstream call.
"""

from __future__ import annotations

import threading
import time
from collections.abc import Callable, Sequence
from concurrent.futures import Future

from repro.common import tracing
from repro.common.metrics import MetricsRegistry

# flush_fn: texts -> one result per text (order-aligned).
FlushFn = Callable[[list[str]], Sequence]


class MicroBatcher:
    """Coalesces queued texts into batched flush calls."""

    def __init__(
        self,
        flush_fn: FlushFn,
        *,
        max_batch: int = 16,
        max_delay_s: float = 0.005,
        clock: Callable[[], float] = time.monotonic,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {max_batch}")
        if max_delay_s < 0:
            raise ValueError(f"max_delay_s must be >= 0, got {max_delay_s}")
        self.flush_fn = flush_fn
        self.max_batch = max_batch
        self.max_delay_s = max_delay_s
        self.clock = clock
        self.metrics = metrics or MetricsRegistry("micro-batcher")
        self._pending: list[tuple[str, Future]] = []
        self._oldest_enqueued_at: float | None = None
        self._lock = threading.RLock()

    def submit(self, text: str) -> Future:
        """Queue one text; the future resolves when its batch flushes.

        The downstream ``flush_fn`` runs *outside* the queue lock: a slow
        flush (e.g. an IPC round-trip to a process worker) must not block
        other submitters — that window is exactly where cross-client
        coalescing happens, and concurrent batches may flush in parallel
        across a multi-worker pool.
        """
        stale: list[tuple[str, Future]] | None = None
        filled: list[tuple[str, Future]] | None = None
        with self._lock:
            now = self.clock()
            if (
                self._pending
                and self._oldest_enqueued_at is not None
                and now - self._oldest_enqueued_at >= self.max_delay_s
            ):
                # Deadline passed: drain the backlog so no queued text
                # waits longer than max_delay_s plus one flush.
                self.metrics.incr("batcher.deadline_flushes")
                stale = self._take_locked()
            future: Future = Future()
            if not self._pending:
                self._oldest_enqueued_at = now
            self._pending.append((text, future))
            self.metrics.incr("batcher.submitted")
            if len(self._pending) >= self.max_batch:
                self.metrics.incr("batcher.size_flushes")
                filled = self._take_locked()
        if stale:
            self._run_flush(stale)
        if filled:
            self._run_flush(filled)
        return future

    def flush(self) -> int:
        """Flush whatever is pending; returns the number of texts flushed."""
        with self._lock:
            batch = self._take_locked()
        return self._run_flush(batch)

    def annotate_many(self, texts: Sequence[str]) -> list:
        """Submit ``texts``, drain the queue, return results in order.

        Full batches flush as they fill; the final partial batch flushes
        at the end — so ``len(texts)`` documents cost
        ``ceil(len / max_batch)`` downstream calls.
        """
        futures = [self.submit(text) for text in texts]
        self.flush()
        return [future.result() for future in futures]

    @property
    def pending(self) -> int:
        """Texts queued but not yet flushed."""
        return len(self._pending)

    def _take_locked(self) -> list[tuple[str, Future]]:
        """Claim the pending queue (caller must hold the lock)."""
        batch = self._pending
        self._pending = []
        self._oldest_enqueued_at = None
        return batch

    def _run_flush(self, batch: list[tuple[str, Future]]) -> int:
        """Score one claimed batch (no lock held) and resolve its futures."""
        if not batch:
            return 0
        texts = [text for text, _ in batch]
        # Mean batch size is derivable: batcher.submitted / batcher.flushes.
        # The bounded flush-latency histogram gives the per-stage number
        # the serving envelopes' compute_ms aggregates over: how long one
        # coalesced downstream scoring call takes.
        self.metrics.incr("batcher.flushes")
        started = time.perf_counter()
        with tracing.span("batcher.flush", texts=len(texts)):
            try:
                results = self.flush_fn(texts)
            except BaseException as exc:
                self.metrics.hist(
                    "batcher.flush_latency", time.perf_counter() - started
                )
                self._isolate_poisoned(batch, exc)
                return len(batch)
        self.metrics.hist("batcher.flush_latency", time.perf_counter() - started)
        if len(results) != len(batch):
            error = RuntimeError(
                f"flush_fn returned {len(results)} results for {len(batch)} texts"
            )
            for _, future in batch:
                future.set_exception(error)
            return len(batch)
        for (_, future), result in zip(batch, results):
            future.set_result(result)
        return len(batch)

    def _isolate_poisoned(
        self, batch: list[tuple[str, Future]], batch_exc: BaseException
    ) -> None:
        """Fail only the offending text(s) of a failed batch.

        One poisoned text must not take down the whole cross-document
        batch: each entry re-runs *individually*, so healthy texts still
        resolve and only the offender carries the exception.  A
        single-text batch skips the re-run (re-scoring it would fail
        identically — or worse, double-inject a transient fault's side
        effects into metrics).
        """
        if len(batch) == 1:
            batch[0][1].set_exception(batch_exc)
            return
        self.metrics.incr("batcher.batch_poisoned")
        for text, future in batch:
            try:
                results = self.flush_fn([text])
            except BaseException as exc:
                future.set_exception(exc)
                continue
            if len(results) != 1:
                future.set_exception(
                    RuntimeError(
                        f"flush_fn returned {len(results)} results for 1 text"
                    )
                )
                continue
            future.set_result(results[0])
