"""Retry policies and circuit breakers for the serving stack.

The serving layer's requests are pure reads over an immutable snapshot
generation, so retrying is *always safe* — idempotence comes free, and
the only question is budget.  Two primitives encode it:

* :class:`RetryPolicy` — bounded exponential backoff with seeded jitter,
  applied only to *retryable* error classes (:func:`is_retryable`): a
  transient ``IOError`` or a crashed worker is worth a resubmit, a
  deterministic ``ValueError`` would fail identically forever.
* :class:`CircuitBreaker` — the classic closed → open → half-open state
  machine over a sliding outcome window.  When a worker or shard fails
  persistently, the breaker opens and callers fail fast (or degrade)
  instead of burning their latency budget on a dead backend; after
  ``open_duration_s`` a bounded number of half-open probes test recovery.

Both are thread-safe, allocation-light and deterministic under test
(seeded jitter, injectable clocks), matching the fault-injection
harness's replayability contract (:mod:`repro.serving.faults`).
"""

from __future__ import annotations

import threading
import time
from collections import deque
from collections.abc import Callable
from concurrent.futures import BrokenExecutor
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, TypeVar

from repro.common import tracing
from repro.common.rng import stable_hash
from repro.serving.faults import InjectedCrash

if TYPE_CHECKING:
    from repro.common.metrics import MetricsRegistry

T = TypeVar("T")

_JITTER_SPACE = 2**20


class TransientServingError(RuntimeError):
    """A failure worth retrying: the next attempt may land on a healthy
    replica (or a respawned one) and succeed."""


class WorkerCrashError(TransientServingError):
    """A worker died mid-request (broken pool / injected crash), detected
    by supervision; the request was resubmitted or is resubmittable."""


class ShardResultError(TransientServingError):
    """A shard replica returned a malformed (wrong-length / corrupt)
    result — retryable, because a healthy replica will answer correctly."""


class CircuitOpenError(TransientServingError):
    """Fail-fast rejection by an open circuit breaker.  Retryable: a
    backoff that outlives ``open_duration_s`` rides the half-open probe."""

    def __init__(self, name: str) -> None:
        super().__init__(f"circuit breaker {name!r} is open")
        self.breaker = name


def is_retryable(exc: BaseException) -> bool:
    """Whether ``exc`` belongs to a transient, worth-retrying class.

    Retryable: serving-layer transients, broken executors (the pool lost
    its workers — supervision respawns them), injected crashes, and the
    ``OSError`` family (I/O flakes, timeouts, dropped connections).
    Everything else — ``ValueError``, ``TypeError``, ``KeyError``, … — is
    deterministic: the same request replays the same failure, so retrying
    only multiplies load.
    """
    return isinstance(
        exc, (TransientServingError, BrokenExecutor, InjectedCrash, OSError)
    )


def error_fields(exc: BaseException) -> tuple[bool, str]:
    """``(retryable, exception_type)`` for a structured error envelope."""
    return is_retryable(exc), type(exc).__name__


@dataclass(frozen=True)
class RetryPolicy:
    """Bounded exponential backoff with seeded jitter.

    ``max_attempts`` counts the first try: 4 means one attempt plus up to
    three retries.  Backoff for retry *n* (1-based) is
    ``min(base * multiplier**(n-1), max)``, scaled into
    ``[1 - jitter, 1]`` by a deterministic per-(key, attempt) draw — the
    usual thundering-herd jitter, but replayable under test.
    """

    max_attempts: int = 4
    backoff_base_s: float = 0.01
    backoff_multiplier: float = 2.0
    backoff_max_s: float = 0.5
    jitter: float = 0.5
    seed: int = 0

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError(f"jitter must be in [0, 1], got {self.jitter}")

    def backoff_s(self, retry_number: int, key: str = "") -> float:
        """Sleep before retry ``retry_number`` (1-based), jittered."""
        base = min(
            self.backoff_base_s * self.backoff_multiplier ** (retry_number - 1),
            self.backoff_max_s,
        )
        if self.jitter == 0.0:
            return base
        draw = stable_hash(
            f"retry:{self.seed}:{key}:{retry_number}", _JITTER_SPACE
        ) / _JITTER_SPACE
        return base * (1.0 - self.jitter * draw)

    def call(
        self,
        fn: Callable[[int], T],
        *,
        key: str = "",
        classify: Callable[[BaseException], bool] = is_retryable,
        on_retry: Callable[[int, BaseException], None] | None = None,
        sleep: Callable[[float], Any] = time.sleep,
    ) -> tuple[T, int]:
        """Run ``fn(attempt)`` under this policy; returns ``(result, attempts)``.

        Non-retryable failures (per ``classify``) and exhausted budgets
        re-raise the last exception.  ``on_retry(attempt, exc)`` fires
        before each backoff — the hook supervision uses to respawn pools
        and count retries.
        """
        attempt = 1
        while True:
            try:
                return fn(attempt), attempt
            except Exception as exc:
                if attempt >= self.max_attempts or not classify(exc):
                    raise
                if on_retry is not None:
                    on_retry(attempt, exc)
                sleep(self.backoff_s(attempt, key))
                attempt += 1


# -- circuit breaker -----------------------------------------------------------

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Failure-rate circuit breaker over a sliding outcome window.

    *Closed*: traffic flows; outcomes land in a ``window``-sized deque.
    Once at least ``min_volume`` outcomes are present and the failure
    rate exceeds ``failure_threshold``, the breaker opens.

    *Open*: :meth:`allow` returns ``False`` (callers fail fast / degrade)
    until ``open_duration_s`` has elapsed, then the breaker half-opens.

    *Half-open*: up to ``half_open_probes`` concurrent probes pass; one
    success re-closes (window reset), one failure re-opens.

    Thread-safe; the clock is injectable so tests drive transitions
    without sleeping.  :meth:`snapshot` surfaces state + transition
    counts for ``stats()`` and ``/healthz``.
    """

    def __init__(
        self,
        name: str = "breaker",
        *,
        failure_threshold: float = 0.5,
        min_volume: int = 4,
        window: int = 16,
        open_duration_s: float = 1.0,
        half_open_probes: int = 1,
        clock: Callable[[], float] = time.monotonic,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        if not 0.0 < failure_threshold <= 1.0:
            raise ValueError(
                f"failure_threshold must be in (0, 1], got {failure_threshold}"
            )
        if min_volume < 1 or window < min_volume:
            raise ValueError(
                f"need window >= min_volume >= 1, got {window} / {min_volume}"
            )
        self.name = name
        self.failure_threshold = failure_threshold
        self.min_volume = min_volume
        self.window = window
        self.open_duration_s = open_duration_s
        self.half_open_probes = half_open_probes
        self.clock = clock
        self._outcomes: deque[bool] = deque()
        self._failure_count = 0
        self._elided_successes = 0
        self._state = CLOSED
        self._opened_at = 0.0
        self._probes_in_flight = 0
        self._transitions: dict[str, int] = {}
        self._lock = threading.Lock()
        # Optional observability sink: every state transition counts into
        # this registry (and onto the current trace span, when armed).
        self.metrics = metrics

    @property
    def state(self) -> str:
        """Current state, advancing open → half-open when the cooldown is up."""
        with self._lock:
            self._advance_locked()
            return self._state

    def allow(self) -> bool:
        """Whether a call may proceed (half-open admissions count as probes)."""
        # Lock-free fast path for the healthy steady state: a closed
        # breaker with an all-success window sits on every request's hot
        # path, and the dirty read is benign (at worst one call is
        # admitted on a microscopically stale CLOSED).
        if self._state == CLOSED and self._failure_count == 0:
            return True
        with self._lock:
            self._advance_locked()
            if self._state == CLOSED:
                return True
            if self._state == HALF_OPEN and self._probes_in_flight < self.half_open_probes:
                self._probes_in_flight += 1
                return True
            return False

    def check(self) -> None:
        """Raise :class:`CircuitOpenError` instead of returning ``False``."""
        if not self.allow():
            raise CircuitOpenError(self.name)

    def record_success(self) -> None:
        # Healthy steady state: appending a success to an all-success
        # window cannot change the failure rate (it is 0 either way), so
        # count it lock-free and materialise the streak only when a
        # failure needs diluting (same dirty-read argument as allow();
        # a racily lost increment under-counts a streak long past the
        # window size, which changes nothing).
        if self._state == CLOSED and self._failure_count == 0:
            self._elided_successes += 1
            return
        with self._lock:
            self._advance_locked()
            if self._state == HALF_OPEN:
                # Recovery confirmed: close with a clean window (stale
                # failures must not immediately re-open the breaker).
                self._clear_locked()
                self._move_locked(CLOSED)
            self._append_locked(True)

    def record_failure(self) -> None:
        with self._lock:
            self._advance_locked()
            self._append_locked(False)
            if self._state == HALF_OPEN:
                self._probes_in_flight = 0
                self._opened_at = self.clock()
                self._move_locked(OPEN)
            elif self._state == CLOSED and len(self._outcomes) >= self.min_volume:
                if self._failure_count / len(self._outcomes) > self.failure_threshold:
                    self._opened_at = self.clock()
                    self._move_locked(OPEN)

    def reset(self) -> None:
        """Close with a cleared window (supervision replaced the backend).

        A crashed process pool fails every in-flight future at once — one
        fault, N recorded failures.  Once the supervisor has swapped in a
        fresh fleet that evidence is stale, and leaving it in the window
        would open the breaker against healthy replicas.
        """
        with self._lock:
            self._clear_locked()
            self._move_locked(CLOSED)

    @property
    def transitions(self) -> int:
        """Total state transitions so far (any direction)."""
        with self._lock:
            return sum(self._transitions.values())

    def snapshot(self) -> dict[str, float | str]:
        """Flat state for stats surfaces and health endpoints."""
        with self._lock:
            self._advance_locked()
            out: dict[str, float | str] = {
                "state": self._state,
                "window": float(len(self._outcomes)),
                "failures": float(self._failure_count),
                "transitions": float(sum(self._transitions.values())),
            }
            for edge, count in self._transitions.items():
                out[f"transitions.{edge}"] = float(count)
            return out

    def _append_locked(self, ok: bool) -> None:
        # A failure arriving after an elided healthy streak must see the
        # same diluted window it would have with every success appended.
        if not ok and self._elided_successes:
            backfill = min(self._elided_successes, self.window - 1)
            self._elided_successes = 0
            for _ in range(backfill):
                self._append_locked(True)
        if len(self._outcomes) == self.window:
            if not self._outcomes.popleft():
                self._failure_count -= 1
        self._outcomes.append(ok)
        if not ok:
            self._failure_count += 1

    def _clear_locked(self) -> None:
        self._outcomes.clear()
        self._failure_count = 0
        self._elided_successes = 0
        self._probes_in_flight = 0

    def _advance_locked(self) -> None:
        if (
            self._state == OPEN
            and self.clock() - self._opened_at >= self.open_duration_s
        ):
            self._probes_in_flight = 0
            self._move_locked(HALF_OPEN)

    def _move_locked(self, state: str) -> None:
        if state != self._state:
            edge = f"{self._state}->{state}"
            self._transitions[edge] = self._transitions.get(edge, 0) + 1
            self._state = state
            # The metrics registry lock is a leaf (its methods call back
            # into nothing), so incrementing under self._lock is safe.
            if self.metrics is not None:
                self.metrics.incr("breaker.transitions")
                self.metrics.incr(f"breaker.transitions.{edge}")
            tracing.event(
                "breaker.transition", breaker=self.name, to=state, edge=edge
            )
