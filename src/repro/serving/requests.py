"""Typed serving requests and responses — the query vocabulary of the platform.

Every request is a frozen, hashable dataclass:

* hashable → it is directly usable as a :class:`~repro.serving.cache.QueryCache`
  key next to the snapshot's ``store_version``;
* frozen → a request enqueued, shipped to a subprocess worker and merged
  back can never be mutated in flight;
* plain data → it pickles cheaply across the process-pool boundary and
  round-trips through the JSON wire codec (:mod:`repro.serving.protocol`).

Each request class carries its serving *policy* as class attributes the
facade dispatch reads instead of hard-coding per-method behaviour:

* ``wire_type`` — the stable protocol tag (``"walk"``, ``"verify"``, …);
* ``splittable`` — whether the shard router may partition the request's
  ``entities`` tuple and merge per-entity results (walks, neighborhoods,
  related entities, fact ranking, k-NN).  Non-splittable requests ship
  whole: annotation and verification are already *batched* compute (one
  cross-document scoring pass / one embedding score pass), and splitting
  them would undo the batching; similarity pairs are too cheap to route.
* ``cacheable()`` — whether a result may enter the
  :class:`~repro.serving.cache.QueryCache`.  Most requests repeat
  (dashboards re-ask the same walks; assistants re-rank the same facts);
  multi-text annotation batches essentially never repeat byte-identically,
  so caching them would only pin dead memory (the admission policy the
  ROADMAP's "cache warming + admission" item asks for).
* ``cheap_to_recompute`` — whether the gateway may shed this class first
  under overload.  Pure graph lookups and similarity probes are cheap
  for the client to retry (and usually cached); annotation, ranking,
  verification and k-NN burn real compute, so they keep their admission
  slot until the hard limit.

Every request type is paired with a typed :class:`Response` envelope
(status, payload, ``store_version``, per-stage timings, structured error)
— the uniform unit every transport (in-process facade, asyncio gateway,
HTTP) speaks.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Any, ClassVar

DEFAULT_WALK_LENGTH = 8
DEFAULT_WALKS_PER_ENTITY = 4

# Tenant ids name directories under ``tenants/<id>/`` and label cache keys
# and metrics — a conservative charset keeps them path- and wire-safe.
TENANT_ID_PATTERN = re.compile(r"^[A-Za-z0-9][A-Za-z0-9._-]{0,63}$")


def valid_tenant_id(tenant_id: object) -> bool:
    """True when ``tenant_id`` is a well-formed tenant identifier."""
    return isinstance(tenant_id, str) and bool(TENANT_ID_PATTERN.match(tenant_id))

# Status values of a Response envelope.  ``degraded`` is the graceful
# middle ground: a *usable* payload that is incomplete (failed shards
# past the retry budget) or stale (served from a previous generation's
# cache when fresh compute failed) — flagged so clients can decide.
STATUS_OK = "ok"
STATUS_DEGRADED = "degraded"
STATUS_ERROR = "error"

# Stable error codes carried by error envelopes (never raw tracebacks).
ERROR_BAD_REQUEST = "bad_request"
ERROR_UNSUPPORTED_VERSION = "unsupported_version"
ERROR_UNSUPPORTED_TYPE = "unsupported_type"
ERROR_OVERLOADED = "overloaded"
ERROR_DEADLINE_EXCEEDED = "deadline_exceeded"
ERROR_UNAVAILABLE = "unavailable"
ERROR_INTERNAL = "internal"


@dataclass(frozen=True)
class WalkRequest:
    """Random walks for each of ``entities``.

    Serving walk semantics are *per-entity*: each entity's walks are drawn
    from an independent substream derived from ``(seed, entity)`` (see
    :func:`repro.serving.worker.entity_walk_seed`), so the result is
    byte-identical no matter how the request is partitioned across shards
    or how many workers serve it.
    """

    wire_type: ClassVar[str] = "walk"
    cheap_to_recompute: ClassVar[bool] = True
    splittable: ClassVar[bool] = True

    entities: tuple[str, ...]
    walk_length: int = DEFAULT_WALK_LENGTH
    walks_per_entity: int = DEFAULT_WALKS_PER_ENTITY
    seed: int = 0

    def cacheable(self) -> bool:
        return True


@dataclass(frozen=True)
class NeighborhoodRequest:
    """K-hop undirected neighborhoods (sorted) for each of ``entities``."""

    wire_type: ClassVar[str] = "neighborhood"
    cheap_to_recompute: ClassVar[bool] = True
    splittable: ClassVar[bool] = True

    entities: tuple[str, ...]
    hops: int = 1

    def cacheable(self) -> bool:
        return True


@dataclass(frozen=True)
class RelatedRequest:
    """Top-k related entities (traversal embeddings) for each of ``entities``."""

    wire_type: ClassVar[str] = "related"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = True

    entities: tuple[str, ...]
    k: int = 10

    def cacheable(self) -> bool:
        return True


@dataclass(frozen=True)
class AnnotateRequest:
    """Entity links for each of ``texts``, scored as one cross-doc batch.

    Single-text requests are cacheable (clients re-annotate hot snippets);
    multi-text batches essentially never repeat byte-identically, and one
    cache entry would pin every input text plus every link list — the
    admission policy skips them.
    """

    wire_type: ClassVar[str] = "annotate"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = False

    texts: tuple[str, ...]
    tier: str = "full"

    def cacheable(self) -> bool:
        return len(self.texts) == 1


@dataclass(frozen=True)
class FactRankRequest:
    """Importance-ranked values of ``(entity, predicate, ?)`` per entity.

    ``entities`` are the *subjects* (Figure 2: "occupation of LeBron
    James") — per-subject results, so the router may shard them like any
    other entity-keyed request.
    """

    wire_type: ClassVar[str] = "fact_rank"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = True

    entities: tuple[str, ...]
    predicate: str = ""

    def cacheable(self) -> bool:
        return True


@dataclass(frozen=True)
class VerifyRequest:
    """Verdicts for candidate ``(subject, predicate, object)`` triples.

    Dispatched whole: the verifier scores the entire candidate set in one
    batched embedding pass, which sharding would undo.
    """

    wire_type: ClassVar[str] = "verify"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = False

    candidates: tuple[tuple[str, str, str], ...]

    def cacheable(self) -> bool:
        return True


@dataclass(frozen=True)
class SimilarityRequest:
    """Cosine similarity for each ``(left, right)`` entity pair.

    Unknown entities score 0.0 (the embedding service's contract) rather
    than erroring — a similarity matrix query should not fail on one
    missing row.
    """

    wire_type: ClassVar[str] = "similarity"
    cheap_to_recompute: ClassVar[bool] = True
    splittable: ClassVar[bool] = False

    pairs: tuple[tuple[str, str], ...]

    def cacheable(self) -> bool:
        return True


@dataclass(frozen=True)
class KnnRequest:
    """k nearest entities in embedding space for each of ``entities``."""

    wire_type: ClassVar[str] = "knn"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = True

    entities: tuple[str, ...]
    k: int = 10
    exclude_self: bool = True

    def cacheable(self) -> bool:
        return True


# -- the tenant request family -------------------------------------------------
#
# The on-device sync protocol (ondevice/sync.py) exposed through the
# gateway: a device ships its personal records (and tombstones) to its
# tenant's server-side store and gets back what it is missing.  These are
# *writes* against per-tenant state — never dispatched to the shared
# worker fleet, never cached, never shed (losing a sync costs the client
# a full re-send).


@dataclass(frozen=True)
class PersonalRecord:
    """One source record on the wire — the tenant-family payload unit.

    The hashable twin of :class:`repro.ondevice.records.SourceRecord`:
    ``fields`` is a sorted tuple of ``(key, value)`` pairs instead of a
    dict so requests stay frozen/hashable (the cache-key contract every
    request type honours).  ``sequence`` is the last-writer-wins clock.
    """

    record_id: str
    source: str
    fields: tuple[tuple[str, str], ...] = ()
    sequence: int = 0


@dataclass(frozen=True)
class TenantUpsertRequest:
    """Apply ``records`` to the tenant's personal store (last-writer-wins)."""

    wire_type: ClassVar[str] = "tenant_upsert"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = False

    records: tuple[PersonalRecord, ...]

    def cacheable(self) -> bool:
        return False


@dataclass(frozen=True)
class TenantSyncRequest:
    """One device<->server sync round: merge state, return what's missing.

    ``records``/``tombstones`` are the device's full current state (small
    by construction — personal KGs are per-user).  The response carries
    the server records/tombstones that beat the device's, plus the fused
    people and a DP-noised record count (``epsilon``) so aggregate
    telemetry never reveals an exact personal-store size — the
    differential-privacy enrichment stays server-side.
    """

    wire_type: ClassVar[str] = "tenant_sync"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = False

    records: tuple[PersonalRecord, ...] = ()
    tombstones: tuple[tuple[str, str, int], ...] = ()
    epsilon: float = 1.0

    def cacheable(self) -> bool:
        return False


@dataclass(frozen=True)
class TenantDeleteRequest:
    """Tombstone one record in the tenant's personal store."""

    wire_type: ClassVar[str] = "tenant_delete"
    cheap_to_recompute: ClassVar[bool] = False
    splittable: ClassVar[bool] = False

    source: str
    record_id: str
    sequence: int = 0

    def cacheable(self) -> bool:
        return False


REQUEST_TYPES: tuple[type, ...] = (
    WalkRequest,
    NeighborhoodRequest,
    RelatedRequest,
    AnnotateRequest,
    FactRankRequest,
    VerifyRequest,
    SimilarityRequest,
    KnnRequest,
    TenantUpsertRequest,
    TenantSyncRequest,
    TenantDeleteRequest,
)

# The tenant-write family: served by the TenantRegistry in the service
# process, rejected outright by shared-fleet workers (isolation at
# dispatch — a tenant write can never touch shared state).
TENANT_REQUEST_TYPES: tuple[type, ...] = (
    TenantUpsertRequest,
    TenantSyncRequest,
    TenantDeleteRequest,
)

# wire_type tag -> request class (the protocol decode table).
REQUESTS_BY_WIRE_TYPE: dict[str, type] = {cls.wire_type: cls for cls in REQUEST_TYPES}

# Requests whose per-entity results the router may partition and merge.
SPLITTABLE = tuple(cls for cls in REQUEST_TYPES if cls.splittable)

Request = (
    WalkRequest
    | NeighborhoodRequest
    | RelatedRequest
    | AnnotateRequest
    | FactRankRequest
    | VerifyRequest
    | SimilarityRequest
    | KnnRequest
    | TenantUpsertRequest
    | TenantSyncRequest
    | TenantDeleteRequest
)


def sub_request(request: Request, entities: tuple[str, ...]) -> Request:
    """The same request narrowed to ``entities`` (shard fan-out unit)."""
    if not isinstance(request, SPLITTABLE):
        raise TypeError(f"request type {type(request).__name__} is not splittable")
    return replace(request, entities=entities)


# -- response envelopes --------------------------------------------------------


@dataclass(frozen=True)
class ErrorInfo:
    """Structured error detail of a failed request — never a traceback.

    ``retryable`` tells the caller whether the failure class is transient
    (a crashed worker, an I/O flake — worth re-issuing) or deterministic
    (a ``ValueError`` that will fail identically forever);
    ``exception_type`` carries the originating exception *class name*
    across the wire so clients can distinguish the two without the
    server-side exception object.
    """

    code: str
    message: str
    retryable: bool = False
    exception_type: str = ""


#: The stable ``Response.timings`` key vocabulary.  Every value is
#: wall-clock milliseconds measured by the server:
#:
#: - ``total_ms`` — end-to-end time inside ``KGService.serve`` (or, for
#:   gateway-minted rejection envelopes, inside the gateway).  Present on
#:   **every** response: ok, degraded, cached, stale and error alike.
#: - ``cache_ms`` — cache key build + lookup (cacheable requests only).
#: - ``scatter_ms`` — request split + per-shard dispatch (split path).
#: - ``compute_ms`` — worker execution: the whole fan-out window on the
#:   split path, the single dispatch otherwise.
#: - ``gather_ms`` — merging per-shard partials (split path only).
#:
#: Stages that did not run are absent, never zero-filled.  When tracing
#: is armed each stage's span carries the *same* measurement in its
#: ``stage_ms`` attribute, so traces reconcile with envelopes exactly.
TIMING_KEYS = ("total_ms", "cache_ms", "scatter_ms", "compute_ms", "gather_ms")


@dataclass
class Response:
    """The uniform answer envelope every transport speaks.

    ``payload`` is the per-request-type result (``None`` on error);
    ``timings`` carries per-stage wall-clock milliseconds (``total_ms``
    always; ``cache_ms``/``scatter_ms``/``compute_ms``/``gather_ms`` as
    the stages run — see :data:`TIMING_KEYS` for the stable vocabulary);
    ``cached`` marks cache hits.  ``exception`` keeps the
    original in-process exception for delegating facade wrappers to
    re-raise — it never crosses the wire (the codec strips it; clients see
    only the structured :class:`ErrorInfo`).

    ``trace_id`` is set only when the request was served under an armed
    tracer — it names the server-side trace in ``GET /debug/traces``.
    Untraced responses leave it empty and the codec omits it, keeping
    wire bytes identical to pre-tracing builds.

    ``resilience`` is the retry metadata of a request that survived
    faults: JSON-native keys such as ``attempts`` (total dispatch
    attempts beyond the fan-out), ``failed_entities`` (positions degraded
    past the retry budget), ``stale`` / ``stale_version`` (payload served
    from a previous generation's cache) — empty on the clean path.  A
    ``degraded`` response carries *both* a usable payload and an
    ``error`` explaining what is missing or stale.
    """

    request_type: str
    status: str
    store_version: int
    payload: Any = None
    timings: dict[str, float] = field(default_factory=dict)
    cached: bool = False
    error: ErrorInfo | None = None
    exception: BaseException | None = None
    resilience: dict[str, Any] = field(default_factory=dict)
    trace_id: str = ""

    @property
    def ok(self) -> bool:
        return self.status == STATUS_OK

    @property
    def degraded(self) -> bool:
        return self.status == STATUS_DEGRADED

    def result(self) -> Any:
        """The payload, re-raising the original error on failure.

        Degraded responses *return* their (partial or stale) payload —
        the graceful-degradation contract is "an imperfect answer beats
        a 500"; callers that need perfection check :attr:`status`.
        """
        if self.ok or self.degraded:
            return self.payload
        if self.exception is not None:
            raise self.exception
        error = self.error or ErrorInfo(ERROR_INTERNAL, "request failed")
        raise ServingError(error.code, error.message)


class ServingError(RuntimeError):
    """A serving-layer failure reconstructed from an error envelope."""

    def __init__(self, code: str, message: str) -> None:
        super().__init__(f"[{code}] {message}")
        self.code = code


class WalkResponse(Response):
    """Payload: per entity, ``walks_per_entity`` walks of entity ids."""


class NeighborhoodResponse(Response):
    """Payload: per entity, the sorted k-hop neighborhood."""


class RelatedResponse(Response):
    """Payload: per entity, ``(entity, score)`` tuples, best first."""


class AnnotateResponse(Response):
    """Payload: per text, resolved :class:`~repro.annotation.mention.EntityLink`s."""


class FactRankResponse(Response):
    """Payload: per subject, :class:`~repro.services.fact_ranking.RankedFact`s."""


class VerifyResponse(Response):
    """Payload: per candidate, a :class:`~repro.services.fact_verification.Verdict`."""


class SimilarityResponse(Response):
    """Payload: per pair, a cosine similarity float."""


class KnnResponse(Response):
    """Payload: per entity, :class:`~repro.vector.index.SearchHit`s."""


class TenantUpsertResponse(Response):
    """Payload: ``{"applied", "skipped", "tenant_version"}``."""


class TenantSyncResponse(Response):
    """Payload: server records/tombstones the device is missing, the fused
    ``people``, the new ``tenant_version`` and a DP-noised record count."""


class TenantDeleteResponse(Response):
    """Payload: ``{"deleted", "tenant_version"}``."""


# wire_type tag -> typed response class (the codec's decode table).
RESPONSES_BY_WIRE_TYPE: dict[str, type[Response]] = {
    "walk": WalkResponse,
    "neighborhood": NeighborhoodResponse,
    "related": RelatedResponse,
    "annotate": AnnotateResponse,
    "fact_rank": FactRankResponse,
    "verify": VerifyResponse,
    "similarity": SimilarityResponse,
    "knn": KnnResponse,
    "tenant_upsert": TenantUpsertResponse,
    "tenant_sync": TenantSyncResponse,
    "tenant_delete": TenantDeleteResponse,
}


def response_class(wire_type: str) -> type[Response]:
    """The typed envelope class for ``wire_type`` (base class for unknowns)."""
    return RESPONSES_BY_WIRE_TYPE.get(wire_type, Response)
