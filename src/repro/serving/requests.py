"""Typed serving requests — the wire format of the serving subsystem.

Every request is a frozen, hashable dataclass:

* hashable → it is directly usable as a :class:`~repro.serving.cache.QueryCache`
  key next to the snapshot's ``store_version``;
* frozen → a request enqueued, shipped to a subprocess worker and merged
  back can never be mutated in flight;
* plain data → it pickles cheaply across the process-pool boundary.

Multi-entity requests (walks, neighborhoods, related entities) are
*splittable*: the shard router partitions their entity tuple and each
shard worker answers a sub-request carrying the same parameters — results
are per-entity, so the merge is a deterministic re-ordering.  Annotation
requests batch *texts*; they are dispatched whole (a batch is already the
unit of cross-document scoring).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

DEFAULT_WALK_LENGTH = 8
DEFAULT_WALKS_PER_ENTITY = 4


@dataclass(frozen=True)
class WalkRequest:
    """Random walks for each of ``entities``.

    Serving walk semantics are *per-entity*: each entity's walks are drawn
    from an independent substream derived from ``(seed, entity)`` (see
    :func:`repro.serving.worker.entity_walk_seed`), so the result is
    byte-identical no matter how the request is partitioned across shards
    or how many workers serve it.
    """

    entities: tuple[str, ...]
    walk_length: int = DEFAULT_WALK_LENGTH
    walks_per_entity: int = DEFAULT_WALKS_PER_ENTITY
    seed: int = 0


@dataclass(frozen=True)
class NeighborhoodRequest:
    """K-hop undirected neighborhoods (sorted) for each of ``entities``."""

    entities: tuple[str, ...]
    hops: int = 1


@dataclass(frozen=True)
class RelatedRequest:
    """Top-k related entities (traversal embeddings) for each of ``entities``."""

    entities: tuple[str, ...]
    k: int = 10


@dataclass(frozen=True)
class AnnotateRequest:
    """Entity links for each of ``texts``, scored as one cross-doc batch."""

    texts: tuple[str, ...]
    tier: str = "full"


# Requests whose per-entity results the router may partition and merge.
SPLITTABLE = (WalkRequest, NeighborhoodRequest, RelatedRequest)

Request = WalkRequest | NeighborhoodRequest | RelatedRequest | AnnotateRequest


def sub_request(request: Request, entities: tuple[str, ...]) -> Request:
    """The same request narrowed to ``entities`` (shard fan-out unit)."""
    if not isinstance(request, SPLITTABLE):
        raise TypeError(f"request type {type(request).__name__} is not splittable")
    return replace(request, entities=entities)
