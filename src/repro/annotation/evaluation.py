"""Annotation quality evaluation against gold mentions.

A predicted link is *correct* when its span overlaps a gold mention and it
resolves to the gold entity.  Besides micro precision/recall/F1, we report
*disambiguation accuracy* restricted to mentions whose surface is shared by
several KG entities — the "Michael Jordan" metric that motivates contextual
reranking in §3.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.mention import EntityLink
from repro.common.text import normalize_name
from repro.web.document import GoldMention, WebDocument


@dataclass
class AnnotationQualityReport:
    """Micro-averaged linking quality over a document collection."""

    precision: float
    recall: float
    f1: float
    disambiguation_accuracy: float
    num_gold: int
    num_predicted: int
    num_ambiguous_gold: int


def _spans_overlap(a_start: int, a_end: int, b_start: int, b_end: int) -> bool:
    return a_start < b_end and b_start < a_end


def evaluate_document(
    links: list[EntityLink], gold: tuple[GoldMention, ...]
) -> tuple[int, int, int]:
    """(true positives, predicted, gold) for one document."""
    matched_gold: set[int] = set()
    true_positives = 0
    for link in links:
        for gold_index, mention in enumerate(gold):
            if gold_index in matched_gold:
                continue
            if (
                _spans_overlap(link.mention.start, link.mention.end, mention.start, mention.end)
                and link.entity == mention.entity
            ):
                matched_gold.add(gold_index)
                true_positives += 1
                break
    return true_positives, len(links), len(gold)


def evaluate_annotations(
    predictions: dict[str, list[EntityLink]],
    documents: list[WebDocument],
    ambiguous_names: dict[str, list[str]] | None = None,
) -> AnnotationQualityReport:
    """Micro P/R/F1 plus disambiguation accuracy on ambiguous surfaces.

    ``predictions`` maps doc_id → links (offsets in ``doc.text``);
    ``ambiguous_names`` is the generator's name → entities map.
    """
    tp = 0
    predicted = 0
    gold_total = 0
    ambiguous_correct = 0
    ambiguous_total = 0
    ambiguous_keys = {
        normalize_name(name) for name in (ambiguous_names or {})
    }

    for doc in documents:
        links = predictions.get(doc.doc_id, [])
        doc_tp, doc_pred, doc_gold = evaluate_document(links, doc.gold_mentions)
        tp += doc_tp
        predicted += doc_pred
        gold_total += doc_gold

        if ambiguous_keys:
            for mention in doc.gold_mentions:
                if normalize_name(mention.surface) not in ambiguous_keys:
                    continue
                ambiguous_total += 1
                for link in links:
                    if _spans_overlap(
                        link.mention.start, link.mention.end, mention.start, mention.end
                    ):
                        if link.entity == mention.entity:
                            ambiguous_correct += 1
                        break

    precision = tp / predicted if predicted else 0.0
    recall = tp / gold_total if gold_total else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if precision + recall > 0
        else 0.0
    )
    return AnnotationQualityReport(
        precision=precision,
        recall=recall,
        f1=f1,
        disambiguation_accuracy=(
            ambiguous_correct / ambiguous_total if ambiguous_total else 0.0
        ),
        num_gold=gold_total,
        num_predicted=predicted,
        num_ambiguous_gold=ambiguous_total,
    )
