"""Data model of the semantic annotation services.

A :class:`Mention` is a detected span; a :class:`Candidate` is one KG
entity that could be its referent; an :class:`EntityLink` is the resolved
annotation.  An :class:`AnnotatedDocument` aggregates a page's links —
the "edges to open-domain Web content" the paper adds to the KG.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


@dataclass(frozen=True)
class Mention:
    """A detected span of text that may refer to a KG entity."""

    start: int
    end: int
    surface: str

    def __post_init__(self) -> None:
        if self.end <= self.start:
            raise ValueError(f"empty mention span [{self.start}, {self.end})")


@dataclass
class Candidate:
    """One possible referent of a mention, with its feature scores."""

    entity: str
    prior: float = 0.0
    name_similarity: float = 0.0
    context_similarity: float = 0.0
    coherence: float = 0.0
    score: float = 0.0


@dataclass
class EntityLink:
    """A resolved annotation: mention → entity."""

    mention: Mention
    entity: str
    score: float
    entity_type: str = "OTHER"
    candidates: list[Candidate] = field(default_factory=list)

    def to_dict(self) -> dict[str, Any]:
        return {
            "start": self.mention.start,
            "end": self.mention.end,
            "surface": self.mention.surface,
            "entity": self.entity,
            "score": self.score,
            "entity_type": self.entity_type,
        }


@dataclass
class AnnotatedDocument:
    """All annotations of one web document (plus processing metadata)."""

    doc_id: str
    links: list[EntityLink] = field(default_factory=list)
    content_hash: str = ""
    annotated_at: float = 0.0
    pipeline_tier: str = "full"

    @property
    def entities(self) -> set[str]:
        """Distinct entities linked in this document."""
        return {link.entity for link in self.links}

    def to_dict(self) -> dict[str, Any]:
        return {
            "doc_id": self.doc_id,
            "links": [link.to_dict() for link in self.links],
            "content_hash": self.content_hash,
            "annotated_at": self.annotated_at,
            "pipeline_tier": self.pipeline_tier,
        }
