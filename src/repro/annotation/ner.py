"""Coarse named-entity typing of mentions.

The annotation pipeline attaches an entity-type label to each link (§3.1:
pages are annotated "including the corresponding entity types").  The
typer maps the linked entity's ontology types onto coarse NER classes and
falls back to contextual cues when the entity is unknown.
"""

from __future__ import annotations

from repro.kg.store import TripleStore

PERSON = "PERSON"
ORGANIZATION = "ORG"
PLACE = "PLACE"
WORK = "WORK"
OTHER = "OTHER"

_TYPE_TO_LABEL = [
    ("type:person", PERSON),
    ("type:athlete", PERSON),
    ("type:organization", ORGANIZATION),
    ("type:sports_team", ORGANIZATION),
    ("type:university", ORGANIZATION),
    ("type:record_label", ORGANIZATION),
    ("type:place", PLACE),
    ("type:city", PLACE),
    ("type:country", PLACE),
    ("type:creative_work", WORK),
    ("type:film", WORK),
    ("type:album", WORK),
    ("type:tv_show", WORK),
]

_CONTEXT_CUES = {
    PERSON: {"mr", "mrs", "dr", "professor", "player", "actor", "singer"},
    ORGANIZATION: {"team", "club", "university", "label", "company"},
    PLACE: {"city", "town", "country", "visit", "located"},
    WORK: {"film", "movie", "album", "show", "watch", "released"},
}


class EntityTyper:
    """Resolve coarse NER labels from KG types (with context fallback)."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    def label_for_entity(self, entity: str) -> str:
        """Coarse label of a known entity (OTHER when untyped/unknown)."""
        if not self.store.has_entity(entity):
            return OTHER
        types = set(self.store.entity(entity).types)
        for type_id, label in _TYPE_TO_LABEL:
            if type_id in types:
                return label
        return OTHER

    @staticmethod
    def label_from_context(context_tokens: list[str]) -> str:
        """Best-guess label from nearby tokens (used for NIL mentions)."""
        token_set = {token.lower() for token in context_tokens}
        best_label = OTHER
        best_hits = 0
        for label, cues in _CONTEXT_CUES.items():
            hits = len(token_set & cues)
            if hits > best_hits:
                best_label, best_hits = label, hits
        return best_label
