"""Candidate generation: mention → plausible KG entities with priors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.alias_table import AliasTable
from repro.annotation.mention import Candidate, Mention
from repro.common.text import char_ngrams, dice_similarity
from repro.kg.store import TripleStore


@dataclass
class CandidateGeneratorConfig:
    """Knobs of candidate generation."""

    max_candidates: int = 8
    enable_fuzzy: bool = True


class CandidateGenerator:
    """Alias-table candidates enriched with name-similarity features."""

    def __init__(
        self,
        alias_table: AliasTable,
        store: TripleStore,
        config: CandidateGeneratorConfig | None = None,
    ) -> None:
        self.alias_table = alias_table
        self.store = store
        self.config = config or CandidateGeneratorConfig()

    def generate(self, mention: Mention) -> list[Candidate]:
        """Ranked candidates for ``mention`` (empty = NIL so far)."""
        return self.materialize(self.features(mention.surface))

    def features(self, surface: str) -> tuple[tuple[str, float, float], ...]:
        """Ranked ``(entity, prior, name_similarity)`` features for a surface.

        A pure function of the surface form and the current alias-table
        state — lookups, n-gram hashing and Dice similarities depend on
        nothing else.  Batch callers memoise this per distinct surface
        (corpus text repeats the same names constantly) and materialise
        fresh :class:`Candidate` objects per mention, since rerankers
        mutate candidates in place.
        """
        entries = self.alias_table.lookup(surface)
        if not entries and self.config.enable_fuzzy:
            entries = self.alias_table.lookup_fuzzy(surface)
        if not entries:
            return ()
        features: list[tuple[str, float, float]] = []
        # The mention-side n-grams are shared by every candidate's Dice
        # comparison; hash them once per mention, not once per candidate.
        mention_grams = char_ngrams(surface)
        for entry in entries[: self.config.max_candidates]:
            entity_name = (
                self.store.entity(entry.entity).name
                if self.store.has_entity(entry.entity)
                else entry.entity
            )
            features.append(
                (
                    entry.entity,
                    entry.prior,
                    dice_similarity(mention_grams, char_ngrams(entity_name)),
                )
            )
        return tuple(features)

    @staticmethod
    def materialize(
        features: tuple[tuple[str, float, float], ...],
    ) -> list[Candidate]:
        """Fresh, mutable :class:`Candidate` objects from a feature tuple."""
        return [
            Candidate(entity=entity, prior=prior, name_similarity=name_similarity)
            for entity, prior, name_similarity in features
        ]
