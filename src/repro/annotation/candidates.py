"""Candidate generation: mention → plausible KG entities with priors."""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.alias_table import AliasTable
from repro.annotation.mention import Candidate, Mention
from repro.common.text import char_ngrams, dice_similarity
from repro.kg.store import TripleStore


@dataclass
class CandidateGeneratorConfig:
    """Knobs of candidate generation."""

    max_candidates: int = 8
    enable_fuzzy: bool = True


class CandidateGenerator:
    """Alias-table candidates enriched with name-similarity features."""

    def __init__(
        self,
        alias_table: AliasTable,
        store: TripleStore,
        config: CandidateGeneratorConfig | None = None,
    ) -> None:
        self.alias_table = alias_table
        self.store = store
        self.config = config or CandidateGeneratorConfig()

    def generate(self, mention: Mention) -> list[Candidate]:
        """Ranked candidates for ``mention`` (empty = NIL so far)."""
        entries = self.alias_table.lookup(mention.surface)
        if not entries and self.config.enable_fuzzy:
            entries = self.alias_table.lookup_fuzzy(mention.surface)
        if not entries:
            return []
        candidates: list[Candidate] = []
        # The mention-side n-grams are shared by every candidate's Dice
        # comparison; hash them once per mention, not once per candidate.
        mention_grams = char_ngrams(mention.surface)
        for entry in entries[: self.config.max_candidates]:
            entity_name = (
                self.store.entity(entry.entity).name
                if self.store.has_entity(entry.entity)
                else entry.entity
            )
            candidates.append(
                Candidate(
                    entity=entry.entity,
                    prior=entry.prior,
                    name_similarity=dice_similarity(
                        mention_grams, char_ngrams(entity_name)
                    ),
                )
            )
        return candidates
