"""The modular annotation pipeline: detect → candidates → rerank → type.

§3.2: the service is "(1) modular, allowing custom deployments for
different use-cases; for example, to balance the requirements for quality
(precision and recall) and performance (latency and throughput)".

:func:`make_pipeline` wires the standard tiers:

* ``full`` — context reranking (+ optional graph-embedding coherence),
* ``lite`` — prior + name similarity only (faster, for bulk passes),

and custom deployments can hand-assemble the stages.
"""

from __future__ import annotations

import time
from dataclasses import dataclass

from repro.annotation.alias_table import AliasTable
from repro.annotation.candidates import CandidateGenerator, CandidateGeneratorConfig
from repro.annotation.context_encoder import EntityContextIndex, HashingContextEncoder
from repro.annotation.mention import AnnotatedDocument, Candidate, EntityLink, Mention
from repro.annotation.mention_detection import (
    DictionaryMentionDetector,
    MentionDetectorConfig,
)
from repro.annotation.ner import EntityTyper
from repro.annotation.reranker import ContextualReranker, RerankerConfig
from repro.common.metrics import MetricsRegistry
from repro.common.text import tokenize
from repro.kg.store import TripleStore
from repro.vector.service import EmbeddingService
from repro.web.document import WebDocument

FULL_TIER = "full"
LITE_TIER = "lite"


@dataclass
class AnnotationPipelineConfig:
    """Assembled pipeline configuration."""

    tier: str = FULL_TIER
    context_window_chars: int = 160
    detector: MentionDetectorConfig | None = None
    candidates: CandidateGeneratorConfig | None = None
    reranker: RerankerConfig | None = None


class AnnotationPipeline:
    """Annotates raw text or web documents with KG entity links."""

    def __init__(
        self,
        store: TripleStore,
        alias_table: AliasTable,
        detector: DictionaryMentionDetector,
        candidate_generator: CandidateGenerator,
        reranker: ContextualReranker,
        typer: EntityTyper,
        encoder: HashingContextEncoder | None = None,
        tier: str = FULL_TIER,
        context_window_chars: int = 160,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        self.store = store
        self.alias_table = alias_table
        self.detector = detector
        self.candidate_generator = candidate_generator
        self.reranker = reranker
        self.typer = typer
        self.encoder = encoder
        self.tier = tier
        self.context_window_chars = context_window_chars
        self.metrics = metrics or MetricsRegistry("annotation")

    def annotate(self, text: str) -> list[EntityLink]:
        """Entity links for raw text (the query-annotation use case)."""
        with self.metrics.timed("annotate"):
            links = self._annotate_text(text)
        self.metrics.incr("texts")
        self.metrics.incr("links", len(links))
        return links

    def annotate_batch(self, texts: list[str]) -> list[list[EntityLink]]:
        """Entity links for many texts, scored in one cross-document batch.

        The corpus-level batching hook (the serving layer's
        :class:`~repro.serving.batcher.MicroBatcher` flushes through it):
        mention detection and candidate generation stay per document, but
        *all* mention windows across the batch are hashed in a single
        :meth:`HashingContextEncoder.encode_batch` call and all (mention,
        candidate) pairs scored in one
        :meth:`ContextualReranker.rerank_batch` call — context similarity
        and coherence don't care about document boundaries.  The coherence
        second pass (when enabled) remains per document, because its
        evidence set is the document's own first-pass winners.

        Spans, chosen entities and candidate orders are identical to
        per-document :meth:`annotate` calls; full-tier scores agree to
        float64 rounding (one larger matmul vs several smaller ones).
        """
        with self.metrics.timed("annotate_batch"):
            results = self._annotate_texts(texts)
        self.metrics.incr("texts", len(texts))
        self.metrics.incr("batches")
        self.metrics.incr("links", sum(len(links) for links in results))
        return results

    def annotate_document(self, doc: WebDocument, annotated_at: float = 0.0) -> AnnotatedDocument:
        """Annotate a web document's title + body."""
        links = self.annotate(doc.full_text)
        # Offsets in full_text are shifted by the title + newline prefix;
        # keep only body links and rebase them onto doc.text offsets.
        prefix = len(doc.title) + 1
        body_links: list[EntityLink] = []
        for link in links:
            if link.mention.start >= prefix:
                rebased = Mention(
                    start=link.mention.start - prefix,
                    end=link.mention.end - prefix,
                    surface=link.mention.surface,
                )
                body_links.append(
                    EntityLink(
                        mention=rebased,
                        entity=link.entity,
                        score=link.score,
                        entity_type=link.entity_type,
                        candidates=link.candidates,
                    )
                )
        return AnnotatedDocument(
            doc_id=doc.doc_id,
            links=body_links,
            content_hash=doc.content_hash,
            annotated_at=annotated_at or time.time(),
            pipeline_tier=self.tier,
        )

    # -- internals ----------------------------------------------------------

    def _annotate_text(self, text: str) -> list[EntityLink]:
        if self.alias_table.is_stale:
            self.alias_table.refresh()
        mentions = self.detector.detect(text)
        self.metrics.incr("mentions", len(mentions))

        first_pass: list[tuple[Mention, list[Candidate]]] = []
        for mention in mentions:
            candidates = self.candidate_generator.generate(mention)
            if not candidates:
                self.metrics.incr("nil.no_candidates")
                continue
            first_pass.append((mention, candidates))
        if not first_pass:
            return []

        # All mention windows hashed into one query matrix, all (mention,
        # candidate) pairs scored in one batched rerank.
        query_matrix = None
        if self.encoder is not None:
            query_matrix = self.encoder.encode_batch(
                [self._window_tokens(text, mention) for mention, _ in first_pass]
            )
        candidate_lists = [candidates for _, candidates in first_pass]
        self.reranker.rerank_batch(candidate_lists, query_matrix=query_matrix)

        document_entities = [candidates[0].entity for candidates in candidate_lists]
        if self.reranker.config.use_coherence and len(document_entities) > 1:
            # Second pass: re-score with the coherence feature against the
            # first-pass winners.  No query matrix — the candidates already
            # carry their first-pass context similarities, which the batch
            # reranker reuses unchanged (only the coherence term moves).
            self.reranker.rerank_batch(
                candidate_lists, document_entities=document_entities
            )

        resolved: list[EntityLink] = []
        for mention, candidates in first_pass:
            best = candidates[0]
            if not self.reranker.accepts(best):
                self.metrics.incr("nil.below_threshold")
                continue
            resolved.append(
                EntityLink(
                    mention=mention,
                    entity=best.entity,
                    score=best.score,
                    entity_type=self.typer.label_for_entity(best.entity),
                    candidates=candidates,
                )
            )
        return resolved

    def _annotate_texts(self, texts: list[str]) -> list[list[EntityLink]]:
        if self.alias_table.is_stale:
            self.alias_table.refresh()
        # Corpus text repeats the same names constantly: candidate features
        # (alias lookups, n-gram Dice) are a pure function of the surface
        # form, so they are computed once per distinct surface across the
        # whole batch.  The memo is batch-scoped — the alias table cannot
        # move mid-batch, so no invalidation is needed.
        feature_memo: dict[str, tuple] = {}
        generator = self.candidate_generator
        docs: list[list[tuple[Mention, list[Candidate]]]] = []
        for text in texts:
            mentions = self.detector.detect(text)
            self.metrics.incr("mentions", len(mentions))
            first_pass: list[tuple[Mention, list[Candidate]]] = []
            for mention in mentions:
                features = feature_memo.get(mention.surface)
                if features is None:
                    features = feature_memo[mention.surface] = generator.features(
                        mention.surface
                    )
                if not features:
                    self.metrics.incr("nil.no_candidates")
                    continue
                first_pass.append((mention, generator.materialize(features)))
            docs.append(first_pass)

        # One encode + one rerank across every mention of every document.
        flat = [
            (doc_index, mention, candidates)
            for doc_index, first_pass in enumerate(docs)
            for mention, candidates in first_pass
        ]
        if flat:
            query_matrix = None
            if self.encoder is not None:
                query_matrix = self.encoder.encode_batch(
                    [
                        self._window_tokens(texts[doc_index], mention)
                        for doc_index, mention, _ in flat
                    ]
                )
            self.reranker.rerank_batch(
                [candidates for _, _, candidates in flat], query_matrix=query_matrix
            )
            if self.reranker.config.use_coherence:
                # Coherence scores a candidate against *its document's*
                # first-pass winners, so this pass groups by document.
                for first_pass in docs:
                    document_entities = [
                        candidates[0].entity for _, candidates in first_pass
                    ]
                    if len(document_entities) > 1:
                        self.reranker.rerank_batch(
                            [candidates for _, candidates in first_pass],
                            document_entities=document_entities,
                        )

        results: list[list[EntityLink]] = []
        for first_pass in docs:
            resolved: list[EntityLink] = []
            for mention, candidates in first_pass:
                best = candidates[0]
                if not self.reranker.accepts(best):
                    self.metrics.incr("nil.below_threshold")
                    continue
                resolved.append(
                    EntityLink(
                        mention=mention,
                        entity=best.entity,
                        score=best.score,
                        entity_type=self.typer.label_for_entity(best.entity),
                        candidates=candidates,
                    )
                )
            results.append(resolved)
        return results

    def _window_tokens(self, text: str, mention: Mention) -> list[str]:
        """Tokens of the text window around ``mention`` (mention excluded)."""
        radius = self.context_window_chars
        lo = max(0, mention.start - radius)
        hi = min(len(text), mention.end + radius)
        window = text[lo : mention.start] + " " + text[mention.end : hi]
        return tokenize(window)

    def _query_vector(self, text: str, mention: Mention):
        """Hashed embedding of the text window around ``mention``."""
        if self.encoder is None:
            return None
        return self.encoder.encode_tokens(self._window_tokens(text, mention))


def make_pipeline(
    store: TripleStore,
    tier: str = FULL_TIER,
    embedding_service: EmbeddingService | None = None,
    context_index: EntityContextIndex | None = None,
    alias_table: AliasTable | None = None,
    config: AnnotationPipelineConfig | None = None,
    metrics: MetricsRegistry | None = None,
) -> AnnotationPipeline:
    """Assemble a standard pipeline for ``tier`` over ``store``.

    ``full`` builds (or reuses) an :class:`EntityContextIndex` and enables
    context reranking; passing an ``embedding_service`` additionally
    enables the graph-embedding coherence feature.  ``lite`` uses priors
    and name similarity only.  A pre-built ``alias_table`` or
    ``context_index`` (e.g. adopted from a persisted snapshot) skips the
    corresponding cold-start rebuild.
    """
    config = config or AnnotationPipelineConfig(tier=tier)
    if alias_table is None:
        alias_table = AliasTable(store)
    elif alias_table.is_stale:
        alias_table.refresh()
    detector = DictionaryMentionDetector(alias_table, config.detector)
    candidate_generator = CandidateGenerator(alias_table, store, config.candidates)
    typer = EntityTyper(store)

    encoder: HashingContextEncoder | None = None
    if tier == FULL_TIER:
        if context_index is None:
            context_index = EntityContextIndex(store)
            context_index.build()
        elif context_index.is_stale:
            context_index.build()
        encoder = context_index.encoder
        reranker_config = config.reranker or RerankerConfig(
            use_context=True, use_coherence=embedding_service is not None
        )
    else:
        reranker_config = config.reranker or RerankerConfig(
            use_context=False, use_coherence=False, weight_context=0.0
        )
        context_index = None

    reranker = ContextualReranker(
        context_index=context_index,
        embedding_service=embedding_service,
        config=reranker_config,
    )
    return AnnotationPipeline(
        store=store,
        alias_table=alias_table,
        detector=detector,
        candidate_generator=candidate_generator,
        reranker=reranker,
        typer=typer,
        encoder=encoder,
        tier=tier,
        context_window_chars=config.context_window_chars,
        metrics=metrics,
    )
