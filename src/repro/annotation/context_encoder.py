"""Context embeddings via feature hashing.

§3: contextual disambiguation "can be achieved by computing embeddings on
the textual features of the KG entities (e.g., name, description,
popularity) and computing a similarity with the query embedding".

The encoder hashes content tokens into a fixed-dimension signed bag-of-
words vector (deterministic across processes — see
:func:`repro.common.rng.stable_hash`).  Entity context vectors are built
from the entity's description, type names and neighbour names, then cached
in a low-latency KV store exactly as §3.2 prescribes, so query-time work
is one text hash + dot products.
"""

from __future__ import annotations

import numpy as np

from repro.common.kvstore import KVStore, MemoryKVStore
from repro.common.rng import stable_hash
from repro.common.text import content_tokens
from repro.kg.store import TripleStore
from repro.vector.similarity import normalize_rows


class HashingContextEncoder:
    """Signed feature-hashing text encoder (a fast linear 'model')."""

    def __init__(self, dim: int = 256) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim

    def encode_tokens(self, tokens: list[str]) -> np.ndarray:
        """Unit-norm hashed embedding of a token list (zeros when empty)."""
        vector = np.zeros(self.dim, dtype=np.float64)
        for token in tokens:
            slot = stable_hash(token, self.dim)
            sign = 1.0 if stable_hash("sign:" + token, 2) else -1.0
            vector[slot] += sign
        return normalize_rows(vector[None, :])[0]

    def encode_text(self, text: str) -> np.ndarray:
        """Hashed embedding of raw text (stopwords removed)."""
        return self.encode_tokens(content_tokens(text))


class EntityContextIndex:
    """Precomputed, cached context embeddings of KG entities.

    The §3.2 price/performance optimisation: entity vectors are computed
    once per KG version and served from the KV cache; only the *query*
    side is embedded at annotation time.
    """

    def __init__(
        self,
        store: TripleStore,
        encoder: HashingContextEncoder | None = None,
        cache: KVStore | None = None,
        neighbor_limit: int = 16,
    ) -> None:
        self.store = store
        self.encoder = encoder or HashingContextEncoder()
        self.cache = cache or MemoryKVStore()
        self.neighbor_limit = neighbor_limit
        self._built_version = -1

    def build(self) -> int:
        """(Re)compute vectors for every entity; returns count built."""
        count = 0
        for record in self.store.entities():
            self.cache.put(record.entity, self._compute(record.entity))
            count += 1
        self._built_version = self.store.version
        return count

    @property
    def is_stale(self) -> bool:
        """True when the store changed since the last build."""
        return self._built_version != self.store.version

    def vector(self, entity: str) -> np.ndarray:
        """Cached context vector (computed on miss)."""
        cached = self.cache.get(entity)
        if cached is not None:
            return cached
        vector = self._compute(entity)
        self.cache.put(entity, vector)
        return vector

    def _compute(self, entity: str) -> np.ndarray:
        """Description + type names + neighbour names, hashed."""
        if not self.store.has_entity(entity):
            return np.zeros(self.encoder.dim)
        record = self.store.entity(entity)
        tokens = content_tokens(record.description)
        for type_id in record.types:
            tokens.extend(type_id.split(":")[-1].split("_"))
        neighbors = sorted(self.store.neighbors(entity))[: self.neighbor_limit]
        for neighbor in neighbors:
            if self.store.has_entity(neighbor):
                tokens.extend(content_tokens(self.store.entity(neighbor).name))
        return self.encoder.encode_tokens(tokens)

    def similarity(self, query_vector: np.ndarray, entity: str) -> float:
        """Cosine between a query vector and an entity's context vector."""
        entity_vector = self.vector(entity)
        return float(np.dot(query_vector, entity_vector))
