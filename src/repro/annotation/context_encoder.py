"""Context embeddings via feature hashing.

§3: contextual disambiguation "can be achieved by computing embeddings on
the textual features of the KG entities (e.g., name, description,
popularity) and computing a similarity with the query embedding".

The encoder hashes content tokens into a fixed-dimension signed bag-of-
words vector (deterministic across processes — see
:func:`repro.common.rng.stable_hash`).  Token → (slot, sign) pairs are
memoised — the two SHA digests per token are paid once per distinct token,
not once per occurrence — and all mention windows of a document can be
encoded into one matrix with :meth:`HashingContextEncoder.encode_batch`.
Because each pre-normalisation vector is a sum of ±1 contributions (exact
in float64 regardless of accumulation order), batched encodings are
bitwise identical to one-at-a-time encodings.

Entity context vectors are built from the entity's description, type names
and neighbour names.  :class:`EntityContextIndex` keeps them in a growable
float64 row matrix keyed by a dense entity→row map — the columnar view the
batched reranker does its one-matmul scoring against — while the
low-latency KV store of §3.2 remains the persistence-facing view.
"""

from __future__ import annotations

import threading
from pathlib import Path

import numpy as np

from repro.common.errors import StoreError
from repro.common.growable import GrowableMatrix
from repro.common.kvstore import KVStore, MemoryKVStore
from repro.common.rng import stable_hash
from repro.common.snapshot_io import load_arrays, pack_strings, unpack_strings, write_arrays
from repro.common.text import content_tokens
from repro.kg.store import TripleStore
from repro.vector.similarity import normalize_rows


class HashingContextEncoder:
    """Signed feature-hashing text encoder (a fast linear 'model')."""

    def __init__(self, dim: int = 256) -> None:
        if dim <= 0:
            raise ValueError(f"dim must be positive, got {dim}")
        self.dim = dim
        self._slot_sign: dict[str, tuple[int, float]] = {}

    # Open-ended web vocabularies must not grow encoder state without
    # bound; the memo is a pure function of the token, so a wholesale
    # drop only costs recomputation.
    _MEMO_LIMIT = 1_000_000

    def _feature(self, token: str) -> tuple[int, float]:
        """Memoised (slot, sign) of one token."""
        cached = self._slot_sign.get(token)
        if cached is None:
            slot = stable_hash(token, self.dim)
            sign = 1.0 if stable_hash("sign:" + token, 2) else -1.0
            cached = (slot, sign)
            if len(self._slot_sign) >= self._MEMO_LIMIT:
                self._slot_sign.clear()
            self._slot_sign[token] = cached
        return cached

    def encode_tokens(self, tokens: list[str]) -> np.ndarray:
        """Unit-norm hashed embedding of a token list (zeros when empty)."""
        vector = np.zeros(self.dim, dtype=np.float64)
        for token in tokens:
            slot, sign = self._feature(token)
            vector[slot] += sign
        return normalize_rows(vector[None, :])[0]

    def encode_batch(self, token_lists: list[list[str]]) -> np.ndarray:
        """One unit-norm row per token list — bitwise equal to per-list
        :meth:`encode_tokens` (±1 accumulation is exact in float64)."""
        matrix = np.zeros((len(token_lists), self.dim), dtype=np.float64)
        for row, tokens in enumerate(token_lists):
            for token in tokens:
                slot, sign = self._feature(token)
                matrix[row, slot] += sign
        return normalize_rows(matrix)

    def encode_text(self, text: str) -> np.ndarray:
        """Hashed embedding of raw text (stopwords removed)."""
        return self.encode_tokens(content_tokens(text))


class EntityContextIndex:
    """Precomputed context embeddings of KG entities, stored columnar.

    The §3.2 price/performance optimisation: entity vectors are computed
    once per KG version and served from a dense row matrix; only the
    *query* side is embedded at annotation time.  The KV cache mirrors the
    matrix as the persistence-facing view (and absorbs vectors adopted
    from it on a row-map miss).  Rows are float64 on purpose: the batched
    reranker's scores are parity-checked against the scalar reference
    implementation, which never leaves float64.
    """

    def __init__(
        self,
        store: TripleStore,
        encoder: HashingContextEncoder | None = None,
        cache: KVStore | None = None,
        neighbor_limit: int = 16,
    ) -> None:
        self.store = store
        self.encoder = encoder or HashingContextEncoder()
        self.cache = cache or MemoryKVStore()
        self.neighbor_limit = neighbor_limit
        self._matrix = GrowableMatrix(dtype=np.float64)
        self._row_of: dict[str, int] = {}
        self._built_version = -1
        # Row adoption appends to the matrix and the row map as one unit;
        # concurrent misses from serving worker threads must not interleave
        # (two entities claiming the same row id corrupts the mapping).
        self._row_lock = threading.RLock()

    def build(self) -> int:
        """(Re)compute vectors for every entity; returns count built."""
        self._matrix.clear()
        self._row_of = {}
        count = 0
        for record in self.store.entities():
            vector = self._compute(record.entity)
            self._adopt(record.entity, vector)
            self.cache.put(record.entity, vector)
            count += 1
        self._built_version = self.store.version
        return count

    @property
    def is_stale(self) -> bool:
        """True when the store changed since the last build."""
        return self._built_version != self.store.version

    def adopt(
        self, matrix: np.ndarray, entities: list[str], built_version: int
    ) -> bool:
        """Adopt a persisted (matrix, row-order entities) pair; True on success.

        Adoption only succeeds when ``built_version`` equals the store's
        current version — the same adopt-or-rebuild contract as
        :meth:`AdjacencyIndex.adopt`.  The matrix is served zero-copy
        (it may be a read-only mmap); vectors appended afterwards —
        entities interned after the load — copy into a writable buffer
        on first growth, never into the mapped base.
        """
        if built_version != self.store.version:
            return False
        if matrix.ndim != 2 or matrix.shape[0] != len(entities):
            raise StoreError(
                f"context snapshot shape {matrix.shape} does not match "
                f"{len(entities)} row entities"
            )
        self._matrix = GrowableMatrix(dtype=matrix.dtype)
        if len(entities):
            self._matrix.adopt(matrix)
        self._row_of = {entity: row for row, entity in enumerate(entities)}
        if len(self._row_of) != len(entities):
            raise StoreError("corrupt context snapshot: duplicate row entities")
        self._built_version = built_version
        return True

    def row_entities(self) -> list[str]:
        """Entities in row order (the inverse of the entity→row map)."""
        ordered: list[str] = [""] * len(self._row_of)
        for entity, row in self._row_of.items():
            ordered[row] = entity
        return ordered

    def clear(self) -> None:
        """Forget all vectors (rows and KV mirror); the index reads cold."""
        self._matrix.clear()
        self._row_of = {}
        self.cache.clear()
        self._built_version = -1

    def __len__(self) -> int:
        return len(self._row_of)

    def _adopt(self, entity: str, vector: np.ndarray) -> int:
        """Append ``vector`` as ``entity``'s row; returns the row id.

        The row map entry is published *last*: :meth:`_row`'s lock-free
        fast path treats its presence as "the matrix row exists", so the
        append must complete first.
        """
        row = len(self._row_of)
        self._matrix.append(vector)
        self._row_of[entity] = row
        return row

    def _row(self, entity: str) -> int:
        """Row id of ``entity``, materialising a vector on miss.

        Miss order mirrors the historical KV lookup: a vector already in
        the cache (e.g. written before a rebuild) is adopted as-is;
        otherwise one is computed from the live store and persisted.
        """
        row = self._row_of.get(entity)
        if row is not None:
            return row
        with self._row_lock:
            row = self._row_of.get(entity)
            if row is not None:
                return row
            vector = self.cache.get(entity)
            if vector is None:
                vector = self._compute(entity)
                self.cache.put(entity, vector)
            return self._adopt(entity, np.asarray(vector, dtype=np.float64))

    def vector(self, entity: str) -> np.ndarray:
        """Context vector of ``entity`` (computed and adopted on miss)."""
        row = self._row(entity)
        return self._matrix.view()[row]

    def rows(self, entities: list[str]) -> np.ndarray:
        """Context vectors of ``entities`` as one (len, dim) matrix."""
        if not entities:
            return np.zeros((0, self.encoder.dim), dtype=np.float64)
        row_of = self._row_of
        for entity in entities:
            if entity not in row_of:
                self._row(entity)
        index = np.array([row_of[entity] for entity in entities], dtype=np.intp)
        return self._matrix.view()[index]

    def _compute(self, entity: str) -> np.ndarray:
        """Description + type names + neighbour names, hashed."""
        if not self.store.has_entity(entity):
            return np.zeros(self.encoder.dim)
        record = self.store.entity(entity)
        tokens = content_tokens(record.description)
        for type_id in record.types:
            tokens.extend(type_id.split(":")[-1].split("_"))
        neighbors = sorted(self.store.neighbors(entity))[: self.neighbor_limit]
        for neighbor in neighbors:
            if self.store.has_entity(neighbor):
                tokens.extend(content_tokens(self.store.entity(neighbor).name))
        return self.encoder.encode_tokens(tokens)

    def similarity(self, query_vector: np.ndarray, entity: str) -> float:
        """Cosine between a query vector and an entity's context vector."""
        entity_vector = self.vector(entity)
        return float(np.dot(query_vector, entity_vector))


def save_context_index(index: EntityContextIndex, directory: str | Path) -> dict:
    """Persist an index's row matrix + entity→row map; returns the manifest.

    The index must be fresh (``not index.is_stale``) — persisting a stale
    matrix would stamp the wrong ``store_version`` into the manifest.
    Layout: ``matrix`` (float64 rows), ``entity_blob``/``entity_offsets``
    (row-order entity ids); ``extra`` records the encoder dimension so a
    load can refuse a mismatched encoder.
    """
    if index.is_stale:
        raise StoreError("refusing to persist a stale context index")
    blob, offsets = pack_strings(index.row_entities())
    return write_arrays(
        directory,
        {
            "matrix": index._matrix.view()
            if len(index)
            else np.zeros((0, index.encoder.dim), dtype=np.float64),
            "entity_blob": blob,
            "entity_offsets": offsets,
        },
        kind="context",
        store_version=index._built_version,
        extra={"dim": index.encoder.dim, "neighbor_limit": index.neighbor_limit},
    )


def load_context_arrays(
    directory: str | Path,
    *,
    expected_store_version: int | None = None,
    mmap: bool = True,
    verify: bool = True,
) -> tuple[np.ndarray, list[str], int, dict]:
    """Load a context snapshot: (matrix, row entities, built_version, extra).

    The matrix stays memory-mapped read-only; feed the result to
    :meth:`EntityContextIndex.adopt`.  Raises :class:`StoreError` on
    corruption, :class:`SnapshotStaleError` on a version mismatch.
    """
    manifest, arrays = load_arrays(
        directory,
        kind="context",
        expected_store_version=expected_store_version,
        mmap=mmap,
        verify=verify,
    )
    entities = unpack_strings(arrays["entity_blob"], arrays["entity_offsets"])
    matrix = arrays["matrix"]
    if matrix.shape[0] != len(entities):
        raise StoreError(
            f"corrupt context snapshot {directory}: {matrix.shape[0]} rows "
            f"for {len(entities)} entities"
        )
    return matrix, entities, int(manifest["store_version"]), manifest["extra"]
