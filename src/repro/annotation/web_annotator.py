"""Web-scale annotation: sharded, incremental corpus processing.

§3.1's "linking the Web".  The :class:`WebAnnotator` drives an annotation
pipeline over a crawl snapshot:

* **sharding** — documents are stably hashed into shards (the stand-in for
  the paper's distributed workers); per-shard metrics merge into fleet
  totals;
* **incrementality** — a state map of content hashes lets re-annotation
  runs process *only changed or new pages* (§3.2: "able to efficiently
  process only the changed webpages at a given frequency");
* **output** — an :class:`AnnotationStore`, the doc↔entity edge set that
  extends the KG to web content (Figure 4), queryable in both directions.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.annotation.mention import AnnotatedDocument
from repro.annotation.pipeline import AnnotationPipeline
from repro.common.metrics import MetricsRegistry
from repro.common.rng import stable_hash
from repro.web.corpus import WebCorpus


@dataclass
class AnnotationStore:
    """Doc→links and entity→docs projections of the annotated web.

    Mutate through :meth:`put` only — it maintains the entity→docs
    projection and the O(1) link counter; writing ``documents`` directly
    desyncs both.
    """

    documents: dict[str, AnnotatedDocument] = field(default_factory=dict)
    _entity_docs: dict[str, set[str]] = field(default_factory=lambda: defaultdict(set))
    _num_links: int = 0

    def put(self, annotated: AnnotatedDocument) -> None:
        """Insert or replace a document's annotations."""
        previous = self.documents.get(annotated.doc_id)
        if previous is not None:
            for entity in previous.entities:
                self._entity_docs[entity].discard(annotated.doc_id)
            self._num_links -= len(previous.links)
        self.documents[annotated.doc_id] = annotated
        for entity in annotated.entities:
            self._entity_docs[entity].add(annotated.doc_id)
        self._num_links += len(annotated.links)

    def docs_mentioning(self, entity: str) -> set[str]:
        """Documents whose annotations include ``entity``."""
        return set(self._entity_docs.get(entity, ()))

    def links_of(self, doc_id: str) -> AnnotatedDocument | None:
        """Annotations of one document, or None."""
        return self.documents.get(doc_id)

    @property
    def num_links(self) -> int:
        """Total entity links across all documents (O(1), kept by ``put``)."""
        return self._num_links

    def __len__(self) -> int:
        return len(self.documents)


@dataclass
class AnnotationRunReport:
    """Outcome of one (full or incremental) annotation run."""

    docs_seen: int
    docs_processed: int
    docs_skipped_unchanged: int
    links_produced: int
    elapsed_s: float

    @property
    def docs_per_second(self) -> float:
        return self.docs_processed / self.elapsed_s if self.elapsed_s > 0 else 0.0


class WebAnnotator:
    """Sharded, incremental corpus annotator."""

    def __init__(
        self,
        pipeline: AnnotationPipeline,
        num_shards: int = 4,
        metrics: MetricsRegistry | None = None,
    ) -> None:
        if num_shards <= 0:
            raise ValueError(f"num_shards must be positive, got {num_shards}")
        self.pipeline = pipeline
        self.num_shards = num_shards
        self.metrics = metrics or MetricsRegistry("web-annotator")
        self.store = AnnotationStore()
        # doc_id -> content hash at last successful annotation.
        self._state: dict[str, str] = {}

    def shard_of(self, doc_id: str) -> int:
        """Stable shard assignment of a document."""
        return stable_hash(doc_id, self.num_shards)

    def annotate_corpus(
        self, corpus: WebCorpus, incremental: bool = True, timestamp: float = 0.0
    ) -> AnnotationRunReport:
        """Annotate a snapshot.

        With ``incremental=True`` documents whose content hash matches the
        recorded state are skipped; a full run re-processes everything.
        """
        import time

        start = time.perf_counter()
        seen = 0
        processed = 0
        skipped = 0
        links = 0
        # Deterministic shard-major order (mirrors per-worker batching).
        ordered = sorted(corpus, key=lambda d: (self.shard_of(d.doc_id), d.doc_id))
        for doc in ordered:
            seen += 1
            content_hash = doc.content_hash
            if incremental and self._state.get(doc.doc_id) == content_hash:
                skipped += 1
                self.metrics.incr("docs.skipped")
                continue
            annotated = self.pipeline.annotate_document(doc, annotated_at=timestamp)
            self.store.put(annotated)
            self._state[doc.doc_id] = content_hash
            processed += 1
            links += len(annotated.links)
            self.metrics.incr("docs.processed")
            self.metrics.incr(f"shard.{self.shard_of(doc.doc_id)}.docs")
        elapsed = time.perf_counter() - start
        self.metrics.observe("run", elapsed)
        return AnnotationRunReport(
            docs_seen=seen,
            docs_processed=processed,
            docs_skipped_unchanged=skipped,
            links_produced=links,
            elapsed_s=elapsed,
        )

    def reset_state(self) -> None:
        """Forget incremental state (next run is a full pass)."""
        self._state.clear()
