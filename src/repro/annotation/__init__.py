"""§3 — Semantic annotation services (mention detection → entity linking)."""

from repro.annotation.alias_table import AliasEntry, AliasTable
from repro.annotation.candidates import CandidateGenerator, CandidateGeneratorConfig
from repro.annotation.context_encoder import EntityContextIndex, HashingContextEncoder
from repro.annotation.evaluation import (
    AnnotationQualityReport,
    evaluate_annotations,
    evaluate_document,
)
from repro.annotation.mention import (
    AnnotatedDocument,
    Candidate,
    EntityLink,
    Mention,
)
from repro.annotation.mention_detection import (
    DictionaryMentionDetector,
    MentionDetectorConfig,
)
from repro.annotation.ner import EntityTyper
from repro.annotation.pipeline import (
    FULL_TIER,
    LITE_TIER,
    AnnotationPipeline,
    AnnotationPipelineConfig,
    make_pipeline,
)
from repro.annotation.reranker import ContextualReranker, RerankerConfig
from repro.annotation.web_annotator import (
    AnnotationRunReport,
    AnnotationStore,
    WebAnnotator,
)

__all__ = [
    "FULL_TIER",
    "LITE_TIER",
    "AliasEntry",
    "AliasTable",
    "AnnotatedDocument",
    "AnnotationPipeline",
    "AnnotationPipelineConfig",
    "AnnotationQualityReport",
    "AnnotationRunReport",
    "AnnotationStore",
    "Candidate",
    "CandidateGenerator",
    "CandidateGeneratorConfig",
    "ContextualReranker",
    "DictionaryMentionDetector",
    "EntityContextIndex",
    "EntityLink",
    "EntityTyper",
    "HashingContextEncoder",
    "Mention",
    "MentionDetectorConfig",
    "RerankerConfig",
    "WebAnnotator",
    "evaluate_annotations",
    "evaluate_document",
    "make_pipeline",
]
