"""Contextual reranking: choose the right entity among name-sharing ones.

§3: "Michael Jordan stats" must link the basketball player while "Michael
Jordan students" links the professor — "lexical similarity-based features
alone cannot disambiguate".  The reranker scores candidates with:

* ``prior``              — popularity-derived alias prior,
* ``name_similarity``    — surface vs. canonical name,
* ``context_similarity`` — hashed query-context vs. cached entity-context
  embedding (§3's "similarity with the query embedding"),
* ``coherence``          — optional: graph-embedding similarity to the
  other entities linked in the same document (the §2 claim that graph
  embeddings "support entity linking").

Tiers: the ``full`` configuration uses all features; ``lite`` drops the
context/coherence features for throughput — the price/performance knob of
§3.2, ablated in the entity-linking benchmark.

The pipeline scores through :meth:`ContextualReranker.rerank_batch`: every
(mention, candidate) pair of a document is scored at once — context
similarity is one ``queries @ context_rows.T`` matmul against the columnar
context index, coherence one matmul against the embedding-service vectors,
and the linear combination is vectorised.  :meth:`rerank` remains the
one-mention entry point with identical semantics.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.context_encoder import EntityContextIndex
from repro.annotation.mention import Candidate
from repro.vector.service import EmbeddingService
from repro.vector.similarity import normalize_rows


def _score_order(candidate: Candidate) -> tuple[float, str]:
    """Sort key: best score first, entity id as the deterministic tiebreak."""
    return (-candidate.score, candidate.entity)


@dataclass
class RerankerConfig:
    """Feature weights (a simple linear model, as deployable rerankers are)."""

    weight_prior: float = 1.0
    weight_name: float = 0.5
    weight_context: float = 2.0
    weight_coherence: float = 1.0
    use_context: bool = True
    use_coherence: bool = False
    nil_threshold: float = 0.05


class ContextualReranker:
    """Linear reranker over candidate features."""

    def __init__(
        self,
        context_index: EntityContextIndex | None = None,
        embedding_service: EmbeddingService | None = None,
        config: RerankerConfig | None = None,
    ) -> None:
        self.config = config or RerankerConfig()
        self.context_index = context_index
        self.embedding_service = embedding_service
        if self.config.use_context and context_index is None:
            raise ValueError("use_context requires a context index")

    def rerank(
        self,
        candidates: list[Candidate],
        query_vector: np.ndarray | None = None,
        document_entities: list[str] | None = None,
    ) -> list[Candidate]:
        """Score and sort candidates (best first); scores are attached.

        ``query_vector`` is the hashed context of the mention's window;
        ``document_entities`` are first-pass entities of the same document
        for the coherence feature.
        """
        cfg = self.config
        for candidate in candidates:
            if cfg.use_context and query_vector is not None:
                candidate.context_similarity = self.context_index.similarity(
                    query_vector, candidate.entity
                )
            if (
                cfg.use_coherence
                and self.embedding_service is not None
                and document_entities
            ):
                candidate.coherence = self._coherence(
                    candidate.entity, document_entities
                )
            candidate.score = (
                cfg.weight_prior * candidate.prior
                + cfg.weight_name * candidate.name_similarity
                + cfg.weight_context * candidate.context_similarity
                + cfg.weight_coherence * candidate.coherence
            )
        candidates.sort(key=lambda c: (-c.score, c.entity))
        return candidates

    def rerank_batch(
        self,
        candidate_lists: list[list[Candidate]],
        query_matrix: np.ndarray | None = None,
        document_entities: list[str] | None = None,
    ) -> list[list[Candidate]]:
        """Score every (mention, candidate) pair of a document at once.

        ``candidate_lists[i]`` holds the candidates of mention *i* and
        ``query_matrix`` (one row per mention) its hashed context windows;
        each list is score-sorted in place, exactly as per-mention
        :meth:`rerank` calls would.  Context similarity is one
        ``queries @ context_rows.T`` matmul over the document's unique
        candidate entities, coherence one matmul against the embedding
        service (see :meth:`_coherence_means`); the linear combination
        stays in plain floats, so it is the same IEEE arithmetic the
        scalar path performs.  Feature terms that are inactive for this
        configuration keep whatever values the candidates already carry,
        mirroring the scalar path.
        """
        cfg = self.config
        use_context = cfg.use_context and query_matrix is not None
        use_coherence = (
            cfg.use_coherence
            and self.embedding_service is not None
            and bool(document_entities)
        )
        weight_prior = cfg.weight_prior
        weight_name = cfg.weight_name
        weight_context = cfg.weight_context
        weight_coherence = cfg.weight_coherence

        similarity_rows: list[list[float]] = []
        column_of: dict[str, int] = {}
        if use_context:
            for candidates in candidate_lists:
                for candidate in candidates:
                    entity = candidate.entity
                    if entity not in column_of:
                        column_of[entity] = len(column_of)
            rows = self.context_index.rows(list(column_of))
            similarity_rows = (query_matrix @ rows.T).tolist()
        coherence_of: dict[str, float] = {}
        if use_coherence:
            coherence_of = self._coherence_means(candidate_lists, document_entities)

        for row_id, candidates in enumerate(candidate_lists):
            similarity_row = similarity_rows[row_id] if use_context else None
            for candidate in candidates:
                if similarity_row is not None:
                    context = similarity_row[column_of[candidate.entity]]
                    candidate.context_similarity = context
                else:
                    context = candidate.context_similarity
                if use_coherence:
                    coherence = coherence_of.get(candidate.entity, 0.0)
                    candidate.coherence = coherence
                else:
                    coherence = candidate.coherence
                candidate.score = (
                    weight_prior * candidate.prior
                    + weight_name * candidate.name_similarity
                    + weight_context * context
                    + weight_coherence * coherence
                )
            if len(candidates) > 1:
                candidates.sort(key=_score_order)
        return candidate_lists

    def _coherence_means(
        self, candidate_lists: list[list[Candidate]], document_entities: list[str]
    ) -> dict[str, float]:
        """Coherence per unique candidate entity vs the document's entities.

        One matmul between the (unit-normalised) embedding-service vectors
        of the unique candidate entities and of the unique document
        entities; the per-candidate mean then excludes self matches and
        respects document-entity multiplicity, as the scalar
        :meth:`_coherence` does.  Entities unknown to the service are
        absent from the returned map (their coherence is 0.0).
        """
        service = self.embedding_service
        assert service is not None
        known_docs = [
            entity for entity in document_entities if service.has_entity(entity)
        ]
        unique_candidates = list(
            dict.fromkeys(
                candidate.entity
                for candidates in candidate_lists
                for candidate in candidates
                if service.has_entity(candidate.entity)
            )
        )
        if not known_docs or not unique_candidates:
            return {}
        unique_docs = list(dict.fromkeys(known_docs))
        doc_column_of = {entity: col for col, entity in enumerate(unique_docs)}
        candidate_rows = normalize_rows(
            np.stack([service.vector(entity) for entity in unique_candidates])
        )
        doc_rows = normalize_rows(
            np.stack([service.vector(entity) for entity in unique_docs])
        )
        similarities = candidate_rows @ doc_rows.T
        means: dict[str, float] = {}
        for row, entity in enumerate(unique_candidates):
            columns = [doc_column_of[other] for other in known_docs if other != entity]
            means[entity] = (
                float(np.mean(similarities[row, columns])) if columns else 0.0
            )
        return means

    def _coherence(self, entity: str, document_entities: list[str]) -> float:
        """Mean graph-embedding similarity to the document's other entities."""
        service = self.embedding_service
        assert service is not None
        if not service.has_entity(entity):
            return 0.0
        similarities = [
            service.similarity(entity, other)
            for other in document_entities
            if other != entity and service.has_entity(other)
        ]
        return float(np.mean(similarities)) if similarities else 0.0

    def accepts(self, best: Candidate) -> bool:
        """NIL gate: link only when the best score clears the threshold."""
        return best.score >= self.config.nil_threshold
