"""Contextual reranking: choose the right entity among name-sharing ones.

§3: "Michael Jordan stats" must link the basketball player while "Michael
Jordan students" links the professor — "lexical similarity-based features
alone cannot disambiguate".  The reranker scores candidates with:

* ``prior``              — popularity-derived alias prior,
* ``name_similarity``    — surface vs. canonical name,
* ``context_similarity`` — hashed query-context vs. cached entity-context
  embedding (§3's "similarity with the query embedding"),
* ``coherence``          — optional: graph-embedding similarity to the
  other entities linked in the same document (the §2 claim that graph
  embeddings "support entity linking").

Tiers: the ``full`` configuration uses all features; ``lite`` drops the
context/coherence features for throughput — the price/performance knob of
§3.2, ablated in the entity-linking benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.annotation.context_encoder import EntityContextIndex
from repro.annotation.mention import Candidate
from repro.vector.service import EmbeddingService


@dataclass
class RerankerConfig:
    """Feature weights (a simple linear model, as deployable rerankers are)."""

    weight_prior: float = 1.0
    weight_name: float = 0.5
    weight_context: float = 2.0
    weight_coherence: float = 1.0
    use_context: bool = True
    use_coherence: bool = False
    nil_threshold: float = 0.05


class ContextualReranker:
    """Linear reranker over candidate features."""

    def __init__(
        self,
        context_index: EntityContextIndex | None = None,
        embedding_service: EmbeddingService | None = None,
        config: RerankerConfig | None = None,
    ) -> None:
        self.config = config or RerankerConfig()
        self.context_index = context_index
        self.embedding_service = embedding_service
        if self.config.use_context and context_index is None:
            raise ValueError("use_context requires a context index")

    def rerank(
        self,
        candidates: list[Candidate],
        query_vector: np.ndarray | None = None,
        document_entities: list[str] | None = None,
    ) -> list[Candidate]:
        """Score and sort candidates (best first); scores are attached.

        ``query_vector`` is the hashed context of the mention's window;
        ``document_entities`` are first-pass entities of the same document
        for the coherence feature.
        """
        cfg = self.config
        for candidate in candidates:
            if cfg.use_context and query_vector is not None:
                candidate.context_similarity = self.context_index.similarity(
                    query_vector, candidate.entity
                )
            if (
                cfg.use_coherence
                and self.embedding_service is not None
                and document_entities
            ):
                candidate.coherence = self._coherence(
                    candidate.entity, document_entities
                )
            candidate.score = (
                cfg.weight_prior * candidate.prior
                + cfg.weight_name * candidate.name_similarity
                + cfg.weight_context * candidate.context_similarity
                + cfg.weight_coherence * candidate.coherence
            )
        candidates.sort(key=lambda c: (-c.score, c.entity))
        return candidates

    def _coherence(self, entity: str, document_entities: list[str]) -> float:
        """Mean graph-embedding similarity to the document's other entities."""
        service = self.embedding_service
        assert service is not None
        if not service.has_entity(entity):
            return 0.0
        similarities = [
            service.similarity(entity, other)
            for other in document_entities
            if other != entity and service.has_entity(other)
        ]
        return float(np.mean(similarities)) if similarities else 0.0

    def accepts(self, best: Candidate) -> bool:
        """NIL gate: link only when the best score clears the threshold."""
        return best.score >= self.config.nil_threshold
