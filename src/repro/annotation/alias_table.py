"""Alias table: surface form → candidate KG entities.

The first stage of candidate generation.  Built from entity names and
aliases in the store, keyed by :func:`repro.common.text.normalize_name`.
Each candidate carries a popularity-derived *prior* — the baseline signal
contextual reranking must beat on ambiguous names.

The table is *dynamic* (§3.2: annotations must "surface new and updated
entities from the KG"): ``refresh`` rebuilds from the live store, and the
annotation service calls it when the KG version moves.
"""

from __future__ import annotations

import json
from collections import Counter, defaultdict
from dataclasses import dataclass
from pathlib import Path

from repro.common.errors import StoreError
from repro.common.snapshot_io import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    SnapshotStaleError,
    read_manifest,
    read_marshal,
    write_marshal,
)
from repro.common.text import char_ngrams, dice_similarity, normalize_name
from repro.kg.store import TripleStore


@dataclass(frozen=True)
class AliasEntry:
    """One (entity, prior) candidate for a surface form."""

    entity: str
    prior: float
    exact: bool = True


# Terminal marker inside trie nodes.  Trie edges are normalised words
# (strings), so ``None`` can never collide with an edge label.
TRIE_KEY = None


class AliasTable:
    """Normalised-name lookup with optional fuzzy fallback."""

    def __init__(
        self,
        store: TripleStore,
        fuzzy_threshold: float = 0.75,
        *,
        refresh: bool = True,
    ) -> None:
        self.store = store
        self.fuzzy_threshold = fuzzy_threshold
        self._exact: dict[str, list[AliasEntry]] = {}
        self._by_first_char: dict[str, list[str]] = {}
        self._key_grams: dict[str, Counter[str]] = {}
        self._trie: dict = {}
        self._max_key_tokens = 1
        self._built_version = -1
        # ``refresh=False`` defers the first build for callers about to
        # adopt persisted state (a snapshot load); the table reads as
        # stale until adopted or refreshed.
        if refresh:
            self.refresh()

    def refresh(self) -> None:
        """Rebuild from the store (no-op when the store hasn't changed)."""
        if self._built_version == self.store.version:
            return
        exact: dict[str, list[AliasEntry]] = defaultdict(list)
        for record in self.store.entities():
            surfaces = {record.name, *record.aliases}
            for surface in surfaces:
                key = normalize_name(surface)
                if not key:
                    continue
                # Aliases are weaker evidence than the primary name.
                weight = 1.0 if surface == record.name else 0.6
                exact[key].append(
                    AliasEntry(entity=record.entity, prior=record.popularity * weight)
                )
        # Normalise priors within each key so they form a distribution.
        self._exact = {}
        for key, entries in exact.items():
            total = sum(entry.prior for entry in entries) or 1.0
            self._exact[key] = sorted(
                (
                    AliasEntry(entity=e.entity, prior=e.prior / total, exact=True)
                    for e in entries
                ),
                key=lambda e: (-e.prior, e.entity),
            )
        by_first: dict[str, list[str]] = defaultdict(list)
        for key in self._exact:
            by_first[key[0]].append(key)
        self._by_first_char = dict(by_first)
        # Trigram multisets per key, computed once here: fuzzy lookup
        # compares the query against every same-initial key, and recomputing
        # key grams per query made each miss O(total key characters).
        self._key_grams = {key: char_ngrams(key) for key in self._exact}
        # Token-level longest-match trie over the normalised keys, walked by
        # the mention detector: one dict hop per normalised word instead of
        # re-normalising every token window (keys are non-empty, so the root
        # never carries a terminal).  ``max_key_tokens`` is cached alongside
        # it — the detector reads it once per document.
        trie: dict = {}
        max_key_tokens = 1
        for key in self._exact:
            words = key.split(" ")
            max_key_tokens = max(max_key_tokens, len(words))
            node = trie
            for word in words:
                node = node.setdefault(word, {})
            node[TRIE_KEY] = True
        self._trie = trie
        self._max_key_tokens = max_key_tokens
        self._built_version = self.store.version

    @property
    def is_stale(self) -> bool:
        """True when the store changed since the last refresh."""
        return self._built_version != self.store.version

    def state(self) -> dict:
        """The refresh products as marshal-able builtin containers.

        Everything :meth:`refresh` derives — normalised keys, entry
        tuples, trigram multisets, the word trie, ``max_key_tokens`` —
        in plain dict/list/tuple form, so a snapshot can persist it and
        :meth:`adopt_state` can restore it bit-for-bit (floats round-trip
        exactly; dict insertion order is preserved, which keeps fuzzy
        scoring's float accumulation order identical).
        """
        return {
            "exact": {
                key: [(e.entity, e.prior, e.exact) for e in entries]
                for key, entries in self._exact.items()
            },
            "by_first_char": self._by_first_char,
            "key_grams": {key: dict(grams) for key, grams in self._key_grams.items()},
            "trie": self._trie,
            "max_key_tokens": self._max_key_tokens,
        }

    def adopt_state(self, state: dict, built_version: int) -> bool:
        """Adopt persisted :meth:`state` output; True on success.

        Only succeeds when ``built_version`` equals the store's current
        version — otherwise the caller falls back to :meth:`refresh`,
        the usual adopt-or-rebuild contract.
        """
        if built_version != self.store.version:
            return False
        self._exact = {
            key: [
                AliasEntry(entity=entity, prior=prior, exact=exact)
                for entity, prior, exact in entries
            ]
            for key, entries in state["exact"].items()
        }
        self._by_first_char = {
            first: list(keys) for first, keys in state["by_first_char"].items()
        }
        self._key_grams = {
            key: Counter(grams) for key, grams in state["key_grams"].items()
        }
        self._trie = state["trie"]
        self._max_key_tokens = int(state["max_key_tokens"])
        self._built_version = built_version
        return True

    def __len__(self) -> int:
        return len(self._exact)

    def lookup(self, surface: str) -> list[AliasEntry]:
        """Exact-normalised candidates for ``surface`` (possibly empty)."""
        return list(self._exact.get(normalize_name(surface), ()))

    def lookup_fuzzy(self, surface: str, limit: int = 5) -> list[AliasEntry]:
        """Fuzzy candidates via char-trigram Dice over same-initial keys.

        Only used when exact lookup fails (typos, partial names); priors are
        scaled by the similarity so fuzzy matches rank below exact ones.
        """
        key = normalize_name(surface)
        if not key:
            return []
        exact = self._exact.get(key)
        if exact:
            return list(exact[:limit])
        grams = char_ngrams(surface)
        key_grams = self._key_grams
        candidates: list[tuple[float, AliasEntry]] = []
        for other_key in self._by_first_char.get(key[0], ()):
            similarity = dice_similarity(grams, key_grams[other_key])
            if similarity >= self.fuzzy_threshold:
                for entry in self._exact[other_key]:
                    candidates.append(
                        (
                            similarity,
                            AliasEntry(
                                entity=entry.entity,
                                prior=entry.prior * similarity,
                                exact=False,
                            ),
                        )
                    )
        candidates.sort(key=lambda item: (-item[1].prior, item[1].entity))
        return [entry for _, entry in candidates[:limit]]

    def contains(self, surface: str) -> bool:
        """True when an exact-normalised entry exists for ``surface``."""
        return normalize_name(surface) in self._exact

    @property
    def trie(self) -> dict:
        """Word-level trie over normalised keys (built at refresh).

        Nested dicts: edge labels are normalised words; a ``TRIE_KEY``
        entry marks that the path from the root spells a complete key.
        """
        return self._trie

    def max_key_tokens(self) -> int:
        """Longest key length in tokens (bounds the detector's n-grams)."""
        return self._max_key_tokens


def save_alias_table(table: AliasTable, directory: str | Path) -> dict:
    """Persist a fresh table's state as a marshalled sidecar + manifest.

    The state is nested builtin containers (not flat arrays), so it rides
    in one ``state.marshal`` blob — checksummed like the array layers, and
    stamped with the writer's python/marshal version so an incompatible
    reader rebuilds instead of guessing.
    """
    if table.is_stale:
        raise StoreError("refusing to persist a stale alias table")
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    sidecar = write_marshal(directory / "state.marshal", table.state())
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": "alias",
        "store_version": table._built_version,
        "arrays": {},
        "sidecar": sidecar,
        "extra": {"fuzzy_threshold": table.fuzzy_threshold, "keys": len(table)},
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return manifest


def load_alias_state(
    directory: str | Path,
    *,
    expected_store_version: int | None = None,
) -> tuple[dict, int, dict]:
    """Load (state, built_version, extra) written by :func:`save_alias_table`.

    Raises :class:`StoreError` on corruption and :class:`SnapshotStaleError`
    on a version (store or python/marshal) mismatch — callers fall back to
    :meth:`AliasTable.refresh`.
    """
    directory = Path(directory)
    manifest = read_manifest(directory, kind="alias")
    if (
        expected_store_version is not None
        and manifest.get("store_version") != expected_store_version
    ):
        raise SnapshotStaleError(
            f"alias snapshot {directory} built at store version "
            f"{manifest.get('store_version')!r}, expected {expected_store_version}"
        )
    state = read_marshal(directory / "state.marshal", manifest.get("sidecar", {}))
    if not isinstance(state, dict) or "exact" not in state:
        raise StoreError(f"corrupt alias snapshot state in {directory}")
    return state, int(manifest["store_version"]), manifest.get("extra", {})


def apply_alias_updates(state: dict, updates: dict) -> dict:
    """Apply one delta generation's key updates to a :meth:`AliasTable.state`.

    ``updates`` carries fully recomputed entry lists per touched key —
    ``{"updated": {key: entries}, "added": {key: entries}, "removed":
    [keys]}`` — produced by the generation publisher replaying
    :meth:`AliasTable.refresh`'s accumulation for exactly the keys a
    changed entity record touches.  Updated keys replace their entries in
    place (preserving ``_exact``'s insertion order, which fixes fuzzy
    scoring's float-accumulation order); added keys append, matching where
    a full refresh would put keys introduced by newly catalogued entities;
    removed keys drop out of every derived structure (first-char buckets,
    trigram memos, the word trie).  ``max_key_tokens`` only ever grows —
    it bounds the mention detector's n-gram window, so a loose upper bound
    after removals stays correct.

    The state dict is modified in place and returned.
    """
    exact = state["exact"]
    by_first = state["by_first_char"]
    key_grams = state["key_grams"]
    trie = state["trie"]
    max_key_tokens = int(state["max_key_tokens"])

    def insert(key: str, entries: list) -> None:
        exact[key] = [(entity, prior, flag) for entity, prior, flag in entries]
        bucket = by_first.setdefault(key[0], [])
        if key not in bucket:
            bucket.append(key)
        key_grams[key] = dict(char_ngrams(key))
        words = key.split(" ")
        node = trie
        for word in words:
            node = node.setdefault(word, {})
        node[TRIE_KEY] = True

    for key, entries in updates.get("updated", {}).items():
        if key in exact:
            exact[key] = [(entity, prior, flag) for entity, prior, flag in entries]
        else:
            insert(key, entries)
            max_key_tokens = max(max_key_tokens, len(key.split(" ")))
    for key, entries in updates.get("added", {}).items():
        insert(key, entries)
        max_key_tokens = max(max_key_tokens, len(key.split(" ")))
    for key in updates.get("removed", ()):
        if key not in exact:
            continue
        del exact[key]
        bucket = by_first.get(key[0])
        if bucket is not None:
            if key in bucket:
                bucket.remove(key)
            if not bucket:
                del by_first[key[0]]
        key_grams.pop(key, None)
        words = key.split(" ")
        path = [trie]
        for word in words:
            node = path[-1].get(word)
            if node is None:
                path = []
                break
            path.append(node)
        if path:
            path[-1].pop(TRIE_KEY, None)
            for depth in range(len(words), 0, -1):
                if path[depth]:
                    break
                path[depth - 1].pop(words[depth - 1], None)

    state["max_key_tokens"] = max_key_tokens
    return state
