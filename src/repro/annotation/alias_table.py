"""Alias table: surface form → candidate KG entities.

The first stage of candidate generation.  Built from entity names and
aliases in the store, keyed by :func:`repro.common.text.normalize_name`.
Each candidate carries a popularity-derived *prior* — the baseline signal
contextual reranking must beat on ambiguous names.

The table is *dynamic* (§3.2: annotations must "surface new and updated
entities from the KG"): ``refresh`` rebuilds from the live store, and the
annotation service calls it when the KG version moves.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass

from repro.common.text import char_ngrams, dice_similarity, normalize_name
from repro.kg.store import TripleStore


@dataclass(frozen=True)
class AliasEntry:
    """One (entity, prior) candidate for a surface form."""

    entity: str
    prior: float
    exact: bool = True


# Terminal marker inside trie nodes.  Trie edges are normalised words
# (strings), so ``None`` can never collide with an edge label.
TRIE_KEY = None


class AliasTable:
    """Normalised-name lookup with optional fuzzy fallback."""

    def __init__(self, store: TripleStore, fuzzy_threshold: float = 0.75) -> None:
        self.store = store
        self.fuzzy_threshold = fuzzy_threshold
        self._exact: dict[str, list[AliasEntry]] = {}
        self._by_first_char: dict[str, list[str]] = {}
        self._key_grams: dict[str, Counter[str]] = {}
        self._trie: dict = {}
        self._max_key_tokens = 1
        self._built_version = -1
        self.refresh()

    def refresh(self) -> None:
        """Rebuild from the store (no-op when the store hasn't changed)."""
        if self._built_version == self.store.version:
            return
        exact: dict[str, list[AliasEntry]] = defaultdict(list)
        for record in self.store.entities():
            surfaces = {record.name, *record.aliases}
            for surface in surfaces:
                key = normalize_name(surface)
                if not key:
                    continue
                # Aliases are weaker evidence than the primary name.
                weight = 1.0 if surface == record.name else 0.6
                exact[key].append(
                    AliasEntry(entity=record.entity, prior=record.popularity * weight)
                )
        # Normalise priors within each key so they form a distribution.
        self._exact = {}
        for key, entries in exact.items():
            total = sum(entry.prior for entry in entries) or 1.0
            self._exact[key] = sorted(
                (
                    AliasEntry(entity=e.entity, prior=e.prior / total, exact=True)
                    for e in entries
                ),
                key=lambda e: (-e.prior, e.entity),
            )
        by_first: dict[str, list[str]] = defaultdict(list)
        for key in self._exact:
            by_first[key[0]].append(key)
        self._by_first_char = dict(by_first)
        # Trigram multisets per key, computed once here: fuzzy lookup
        # compares the query against every same-initial key, and recomputing
        # key grams per query made each miss O(total key characters).
        self._key_grams = {key: char_ngrams(key) for key in self._exact}
        # Token-level longest-match trie over the normalised keys, walked by
        # the mention detector: one dict hop per normalised word instead of
        # re-normalising every token window (keys are non-empty, so the root
        # never carries a terminal).  ``max_key_tokens`` is cached alongside
        # it — the detector reads it once per document.
        trie: dict = {}
        max_key_tokens = 1
        for key in self._exact:
            words = key.split(" ")
            max_key_tokens = max(max_key_tokens, len(words))
            node = trie
            for word in words:
                node = node.setdefault(word, {})
            node[TRIE_KEY] = True
        self._trie = trie
        self._max_key_tokens = max_key_tokens
        self._built_version = self.store.version

    @property
    def is_stale(self) -> bool:
        """True when the store changed since the last refresh."""
        return self._built_version != self.store.version

    def __len__(self) -> int:
        return len(self._exact)

    def lookup(self, surface: str) -> list[AliasEntry]:
        """Exact-normalised candidates for ``surface`` (possibly empty)."""
        return list(self._exact.get(normalize_name(surface), ()))

    def lookup_fuzzy(self, surface: str, limit: int = 5) -> list[AliasEntry]:
        """Fuzzy candidates via char-trigram Dice over same-initial keys.

        Only used when exact lookup fails (typos, partial names); priors are
        scaled by the similarity so fuzzy matches rank below exact ones.
        """
        key = normalize_name(surface)
        if not key:
            return []
        exact = self._exact.get(key)
        if exact:
            return list(exact[:limit])
        grams = char_ngrams(surface)
        key_grams = self._key_grams
        candidates: list[tuple[float, AliasEntry]] = []
        for other_key in self._by_first_char.get(key[0], ()):
            similarity = dice_similarity(grams, key_grams[other_key])
            if similarity >= self.fuzzy_threshold:
                for entry in self._exact[other_key]:
                    candidates.append(
                        (
                            similarity,
                            AliasEntry(
                                entity=entry.entity,
                                prior=entry.prior * similarity,
                                exact=False,
                            ),
                        )
                    )
        candidates.sort(key=lambda item: (-item[1].prior, item[1].entity))
        return [entry for _, entry in candidates[:limit]]

    def contains(self, surface: str) -> bool:
        """True when an exact-normalised entry exists for ``surface``."""
        return normalize_name(surface) in self._exact

    @property
    def trie(self) -> dict:
        """Word-level trie over normalised keys (built at refresh).

        Nested dicts: edge labels are normalised words; a ``TRIE_KEY``
        entry marks that the path from the root spells a complete key.
        """
        return self._trie

    def max_key_tokens(self) -> int:
        """Longest key length in tokens (bounds the detector's n-grams)."""
        return self._max_key_tokens
