"""Mention detection: find spans that may refer to KG entities.

A dictionary-driven detector: scans token n-grams (longest first) against
the alias table, with a capitalisation gate so common lowercase words
("root" the noun vs. "Root" the cricketer) don't fire spurious mentions.
Modular per §3.2 — the pipeline accepts any detector implementing
``detect(text)``.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.annotation.alias_table import AliasTable
from repro.annotation.mention import Mention
from repro.common.text import tokenize_with_offsets


@dataclass
class MentionDetectorConfig:
    """Knobs of the dictionary detector."""

    max_ngram: int = 4
    require_capitalized: bool = True
    min_surface_chars: int = 2


class DictionaryMentionDetector:
    """Greedy longest-match detection against the alias table."""

    def __init__(
        self, alias_table: AliasTable, config: MentionDetectorConfig | None = None
    ) -> None:
        self.alias_table = alias_table
        self.config = config or MentionDetectorConfig()

    def detect(self, text: str) -> list[Mention]:
        """Non-overlapping mentions, left to right, longest match first."""
        tokens = tokenize_with_offsets(text)
        config = self.config
        max_ngram = min(config.max_ngram, self.alias_table.max_key_tokens())
        mentions: list[Mention] = []
        i = 0
        while i < len(tokens):
            matched = False
            for n in range(min(max_ngram, len(tokens) - i), 0, -1):
                window = tokens[i : i + n]
                surface = text[window[0][1] : window[-1][2]]
                if len(surface) < config.min_surface_chars:
                    continue
                if config.require_capitalized and not any(
                    tok[0][:1].isupper() for tok in window
                ):
                    continue
                if self.alias_table.contains(surface):
                    mentions.append(
                        Mention(start=window[0][1], end=window[-1][2], surface=surface)
                    )
                    i += n
                    matched = True
                    break
            if not matched:
                i += 1
        return mentions
