"""Mention detection: find spans that may refer to KG entities.

A dictionary-driven detector: scans token n-grams (longest first) against
the alias table, with a capitalisation gate so common lowercase words
("root" the noun vs. "Root" the cricketer) don't fire spurious mentions.
Modular per §3.2 — the pipeline accepts any detector implementing
``detect(text)``.

The scan walks the alias table's word-level trie: each token is normalised
once (memoised across documents) and a candidate window advances one dict
hop per word, so detection is O(tokens · trie depth) with zero per-window
substring slicing or re-normalisation.  The historical per-window
``normalize_name`` path survives only as a fallback for the rare spans
whose inter-token characters themselves normalise to word characters
(accented names like "José"), where per-token normalisation cannot
reproduce :func:`repro.common.text.normalize_name` of the joined surface.
"""

from __future__ import annotations

import re
import unicodedata
from dataclasses import dataclass

from repro.annotation.alias_table import TRIE_KEY, AliasTable
from repro.annotation.mention import Mention
from repro.common.text import tokenize_with_offsets

_WORD_RE = re.compile(r"\w")

# Memo bounds: an open-ended web vocabulary must not grow detector state
# without limit in a long-lived serving process.  The maps are pure
# functions of their key, so dropping them wholesale only costs
# recomputation.
_TOKEN_MEMO_LIMIT = 500_000
_GAP_MEMO_LIMIT = 100_000


def _token_words(token: str) -> list[str]:
    """Normalised words of one token (as ``normalize_name`` would emit).

    Tokens match ``[A-Za-z0-9']+`` so NFKD and the ASCII round-trip are
    identity; only lowercasing and the apostrophe→space substitution of
    ``normalize_name`` apply.  A token can normalise to several words
    ("O'Brien" → ["o", "brien"]) or to none ("'''").
    """
    return token.lower().replace("'", " ").split()


def _gap_is_separator(gap: str) -> bool:
    """True when the text between two tokens normalises to pure whitespace.

    Such a gap contributes exactly the word boundary the trie walk assumes.
    A gap that normalises to nothing at all would glue neighbouring words
    ("Joe\\u0301Root" → "joeroot"), and one that normalises to word
    characters ("é" → "e") would extend them — both are flagged dirty and
    routed to the exact per-window fallback.
    """
    decomposed = unicodedata.normalize("NFKD", gap)
    ascii_only = decomposed.encode("ascii", "ignore").decode("ascii").lower()
    cleaned = re.sub(r"[^\w\s]", " ", ascii_only)
    return bool(cleaned) and _WORD_RE.search(cleaned) is None


@dataclass
class MentionDetectorConfig:
    """Knobs of the dictionary detector."""

    max_ngram: int = 4
    require_capitalized: bool = True
    min_surface_chars: int = 2


class DictionaryMentionDetector:
    """Greedy longest-match detection against the alias table's trie."""

    def __init__(
        self, alias_table: AliasTable, config: MentionDetectorConfig | None = None
    ) -> None:
        self.alias_table = alias_table
        self.config = config or MentionDetectorConfig()
        # Memoised normalisations: token vocabularies and separator strings
        # repeat massively across a corpus; both maps are pure functions of
        # their key so they survive alias-table refreshes.  The token memo
        # stores ``(single_word_or_None, words, is_capitalised)`` — the
        # overwhelmingly common one-word case advances the trie with a
        # single dict hop, no list iteration.
        self._token_memo: dict[str, tuple[str | None, list[str], bool]] = {}
        self._gap_sep: dict[str, bool] = {}

    def detect(self, text: str) -> list[Mention]:
        """Non-overlapping mentions, left to right, longest match first."""
        tokens = tokenize_with_offsets(text)
        if not tokens:
            return []
        config = self.config
        table = self.alias_table
        trie = table.trie
        max_ngram = min(config.max_ngram, table.max_key_tokens())
        min_chars = config.min_surface_chars
        require_cap = config.require_capitalized

        memo = self._token_memo
        singles: list[str | None] = []
        words: list[list[str]] = []
        caps: list[bool] = []
        for token, _, _ in tokens:
            cached = memo.get(token)
            if cached is None:
                token_words = _token_words(token)
                single = token_words[0] if len(token_words) == 1 else None
                cached = (single, token_words, token[:1].isupper())
                if len(memo) >= _TOKEN_MEMO_LIMIT:
                    memo.clear()
                memo[token] = cached
            singles.append(cached[0])
            words.append(cached[1])
            caps.append(cached[2])

        # Gap classification.  Pure-ASCII text without underscores cannot
        # contain a dirty gap (every non-token ASCII char normalises to
        # whitespace), which skips per-gap work for almost every document.
        clean_gap: list[bool] | None = None
        all_clean = True
        if not (text.isascii() and "_" not in text):
            gap_memo = self._gap_sep
            clean_gap = []
            for idx in range(len(tokens) - 1):
                gap = text[tokens[idx][2] : tokens[idx + 1][1]]
                flag = gap_memo.get(gap)
                if flag is None:
                    flag = _gap_is_separator(gap)
                    if len(gap_memo) >= _GAP_MEMO_LIMIT:
                        gap_memo.clear()
                    gap_memo[gap] = flag
                clean_gap.append(flag)
            all_clean = all(clean_gap)

        mentions: list[Mention] = []
        num_tokens = len(tokens)
        i = 0
        while i < num_tokens:
            limit = min(max_ngram, num_tokens - i)
            matched_n = 0
            # A window of n tokens consumes gaps i .. i+n-2; if any of them
            # is dirty the per-token word lists misrepresent the surface
            # (glued or extended words), so the whole position goes through
            # the exact per-window scan.
            if not all_clean and not all(clean_gap[i : i + limit - 1]):
                matched_n = self._match_at_slow(text, tokens, i, limit)
                start_char = tokens[i][1]
            else:
                # First hop out of the root, before any window state.
                single = singles[i]
                if single is not None:
                    node = trie.get(single)
                else:
                    node = trie
                    for word in words[i]:
                        node = node.get(word)
                        if node is None:
                            break
                if node is None:
                    i += 1
                    continue
                start_char = tokens[i][1]
                any_cap = caps[i]
                if (
                    TRIE_KEY in node
                    and tokens[i][2] - start_char >= min_chars
                    and (any_cap or not require_cap)
                ):
                    matched_n = 1
                for j in range(i + 1, i + limit):
                    single = singles[j]
                    if single is not None:
                        node = node.get(single)
                    else:
                        for word in words[j]:
                            node = node.get(word)
                            if node is None:
                                break
                    if node is None:
                        break
                    if caps[j]:
                        any_cap = True
                    if TRIE_KEY in node:
                        if tokens[j][2] - start_char < min_chars:
                            continue
                        if require_cap and not any_cap:
                            continue
                        matched_n = j - i + 1
            if matched_n:
                end_char = tokens[i + matched_n - 1][2]
                mentions.append(
                    Mention(
                        start=start_char,
                        end=end_char,
                        surface=text[start_char:end_char],
                    )
                )
                i += matched_n
            else:
                i += 1
        return mentions

    def _match_at_slow(
        self, text: str, tokens: list[tuple[str, int, int]], i: int, limit: int
    ) -> int:
        """Exact per-window scan at position ``i`` (the historical path).

        Only reached when a window spans a dirty inter-token gap; returns
        the longest matching window length in tokens, or 0.
        """
        config = self.config
        for n in range(limit, 0, -1):
            window = tokens[i : i + n]
            surface = text[window[0][1] : window[-1][2]]
            if len(surface) < config.min_surface_chars:
                continue
            if config.require_capitalized and not any(
                tok[0][:1].isupper() for tok in window
            ):
                continue
            if self.alias_table.contains(surface):
                return n
        return 0
