"""Materialized graph views with automatic staleness tracking.

Views are how Saga tailors the KG to a consumer:

* the embedding pipeline trains on a view with numeric/identifier facts and
  rare predicates removed (§2),
* the static on-device knowledge asset "is implemented as a Graph Engine
  view … automatically maintained and shipped to devices" (§5),
* annotation freshness relies on views exposing new/updated entities (§3.2).

A :class:`ViewDefinition` is declarative (composable filter clauses); the
:class:`ViewRegistry` materializes definitions into plain
:class:`~repro.kg.store.TripleStore` instances and re-materializes them when
the base store's version moves.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common.errors import ViewError
from repro.kg.graph_engine import GraphEngine
from repro.kg.store import TripleStore
from repro.kg.triple import Fact, LiteralType, ObjectKind


@dataclass(frozen=True)
class ViewDefinition:
    """Declarative description of a KG view.

    All configured clauses must pass for a fact to enter the view (a fact
    must also connect entities both of which survive any entity filter).

    Attributes:
        name: registry key of the view.
        drop_literals: remove all literal-valued facts.
        drop_numeric: remove number-typed literal facts (height, followers).
        drop_identifiers: remove external-identifier facts (library ids).
        predicate_allowlist: when non-empty, keep only these predicates.
        predicate_denylist: always remove these predicates.
        min_predicate_frequency: remove predicates with fewer facts than
            this in the *base* store (rare-predicate pruning, §2).
        min_confidence: remove facts below this confidence.
        entity_types: when non-empty, keep only facts whose subject (and
            entity-valued object) has at least one of these types.
        top_k_entities_by_popularity: when set, keep only facts among the
            k most popular entities (static knowledge asset, §5).
    """

    name: str
    drop_literals: bool = False
    drop_numeric: bool = False
    drop_identifiers: bool = False
    predicate_allowlist: frozenset[str] = frozenset()
    predicate_denylist: frozenset[str] = frozenset()
    min_predicate_frequency: int = 0
    min_confidence: float = 0.0
    entity_types: frozenset[str] = frozenset()
    top_k_entities_by_popularity: int | None = None

    def describe(self) -> dict[str, object]:
        """Human-readable summary for DESIGN/EXPERIMENTS reporting."""
        return {
            "name": self.name,
            "drop_literals": self.drop_literals,
            "drop_numeric": self.drop_numeric,
            "drop_identifiers": self.drop_identifiers,
            "allowlist": sorted(self.predicate_allowlist),
            "denylist": sorted(self.predicate_denylist),
            "min_predicate_frequency": self.min_predicate_frequency,
            "min_confidence": self.min_confidence,
            "entity_types": sorted(self.entity_types),
            "top_k_entities": self.top_k_entities_by_popularity,
        }


@dataclass
class MaterializedView:
    """A materialized view plus the base version it was built from."""

    definition: ViewDefinition
    store: TripleStore
    base_version: int
    facts_in: int = 0
    facts_kept: int = 0

    @property
    def selectivity(self) -> float:
        """Fraction of base facts kept by the view."""
        return self.facts_kept / self.facts_in if self.facts_in else 0.0


def materialize(
    definition: ViewDefinition,
    base: TripleStore,
    engine: GraphEngine | None = None,
) -> MaterializedView:
    """Build ``definition`` over ``base`` into a fresh store.

    Entity descriptors of surviving entities are copied so downstream
    consumers (alias tables, popularity priors) work off the view alone.

    When ``engine`` (over ``base``) is provided and its CSR snapshot is
    already warm for the current base version, predicate frequencies come
    from that snapshot for free.  A cold engine is left alone — building a
    full snapshot dwarfs the plain count sweep it would replace.
    """
    predicate_counts: dict[str, int] | None = None
    if engine is not None and engine.store is base:
        snapshot = engine.peek_snapshot()
        if snapshot is not None:
            predicate_counts = snapshot.predicate_counts
    if predicate_counts is None:
        predicate_counts = base.predicate_counts()
    allowed_entities = _allowed_entities(definition, base)

    view_store = TripleStore(name=f"view:{definition.name}")
    facts_in = 0
    kept: list[Fact] = []
    for fact in base.scan():
        facts_in += 1
        if _keeps(definition, fact, predicate_counts, allowed_entities):
            kept.append(fact)

    surviving_entities: set[str] = set()
    for fact in kept:
        surviving_entities.add(fact.subject)
        if fact.obj_kind is ObjectKind.ENTITY:
            surviving_entities.add(fact.obj)
    # One bulk upsert: a single version bump instead of one per fact.
    view_store.add_all(kept)
    # Entity-scoped views (type / popularity clauses) ship descriptors for
    # every allowed entity even when none of its facts survive — the §5
    # static asset is "popular entities and facts", entities first.
    if allowed_entities is not None:
        surviving_entities |= allowed_entities
    view_store.copy_entities_from(base, only=surviving_entities)

    return MaterializedView(
        definition=definition,
        store=view_store,
        base_version=base.version,
        facts_in=facts_in,
        facts_kept=len(kept),
    )


def _allowed_entities(definition: ViewDefinition, base: TripleStore) -> set[str] | None:
    """Entity filter implied by type / popularity clauses (None = no filter)."""
    allowed: set[str] | None = None
    if definition.entity_types:
        allowed = {
            record.entity
            for record in base.entities()
            if set(record.types) & definition.entity_types
        }
    if definition.top_k_entities_by_popularity is not None:
        ranked = sorted(
            base.entities(), key=lambda record: (-record.popularity, record.entity)
        )
        top = {
            record.entity
            for record in ranked[: definition.top_k_entities_by_popularity]
        }
        allowed = top if allowed is None else allowed & top
    return allowed


def _keeps(
    definition: ViewDefinition,
    fact: Fact,
    predicate_counts: dict[str, int],
    allowed_entities: set[str] | None,
) -> bool:
    """Whether ``fact`` passes every clause of ``definition``."""
    if definition.drop_literals and fact.is_literal:
        return False
    if definition.drop_numeric and fact.literal_type is LiteralType.NUMBER:
        return False
    if definition.drop_identifiers and fact.literal_type is LiteralType.IDENTIFIER:
        return False
    if definition.predicate_allowlist and fact.predicate not in definition.predicate_allowlist:
        return False
    if fact.predicate in definition.predicate_denylist:
        return False
    if predicate_counts.get(fact.predicate, 0) < definition.min_predicate_frequency:
        return False
    if fact.confidence < definition.min_confidence:
        return False
    if allowed_entities is not None:
        if fact.subject not in allowed_entities:
            return False
        if fact.obj_kind is ObjectKind.ENTITY and fact.obj not in allowed_entities:
            return False
    return True


class ViewRegistry:
    """Named views over one base store, refreshed on demand.

    ``get`` transparently re-materializes a stale view, mirroring the
    paper's automatically-maintained views.
    """

    def __init__(self, base: TripleStore, engine: GraphEngine | None = None) -> None:
        self.base = base
        # An engine shared by the caller lets view refreshes reuse its warm
        # CSR snapshot (predicate counts come for free); without one, views
        # fall back to plain store sweeps rather than forcing CSR builds.
        self._engine = engine
        self._definitions: dict[str, ViewDefinition] = {}
        self._materialized: dict[str, MaterializedView] = {}
        self.refresh_count = 0

    def define(self, definition: ViewDefinition) -> None:
        """Register a view definition (name must be unused)."""
        if definition.name in self._definitions:
            raise ViewError(f"view {definition.name!r} already defined")
        self._definitions[definition.name] = definition

    def names(self) -> list[str]:
        """Registered view names."""
        return list(self._definitions)

    def is_stale(self, name: str) -> bool:
        """True when the view was never built or the base has moved."""
        self._require(name)
        view = self._materialized.get(name)
        return view is None or view.base_version != self.base.version

    def get(self, name: str) -> MaterializedView:
        """The materialized view, rebuilt first if stale."""
        self._require(name)
        if self.is_stale(name):
            self._materialized[name] = materialize(
                self._definitions[name], self.base, engine=self._engine
            )
            self.refresh_count += 1
        return self._materialized[name]

    def _require(self, name: str) -> None:
        if name not in self._definitions:
            raise ViewError(f"unknown view {name!r}")


def embedding_training_view(
    name: str = "embedding-training",
    min_predicate_frequency: int = 5,
    min_confidence: float = 0.4,
    denylist: frozenset[str] = frozenset(),
) -> ViewDefinition:
    """The §2 training view: drop numeric/identifier facts, rare predicates
    and low-confidence noise edges ("vectors being trained on non-relevant
    or noisy data that may exist in the KG")."""
    return ViewDefinition(
        name=name,
        drop_numeric=True,
        drop_identifiers=True,
        min_predicate_frequency=min_predicate_frequency,
        min_confidence=min_confidence,
        predicate_denylist=denylist,
    )


def static_knowledge_asset_view(top_k: int, name: str = "static-asset") -> ViewDefinition:
    """The §5 static asset: popular entities and their facts, shipped to devices."""
    return ViewDefinition(
        name=name,
        drop_identifiers=True,
        top_k_entities_by_popularity=top_k,
    )
