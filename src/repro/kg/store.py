"""Triple store: the physical layer under the Graph Query Engine.

An in-memory store with three permutation indexes (SPO, POS, OSP) supporting
wildcard pattern scans in time proportional to the result size.  Metadata
(confidence, provenance, timestamps) lives alongside each fact; re-asserting
a fact merges provenance and keeps the freshest metadata, which is how the
batch/streaming construction pipeline performs fusion-by-upsert.

Entity descriptors (name, aliases, types, popularity, description) are kept
in the store as well — they are what the annotation service's candidate
generation and the embedding service's text features read.
"""

from __future__ import annotations

from collections import defaultdict
from collections.abc import Iterable, Iterator
from dataclasses import dataclass
from typing import Any

from repro.common import ids
from repro.common.errors import StoreError
from repro.kg.triple import Fact, ObjectKind


@dataclass
class EntityRecord:
    """Descriptor of one entity: the non-edge data the services need."""

    entity: str
    name: str
    types: tuple[str, ...] = ()
    aliases: tuple[str, ...] = ()
    description: str = ""
    popularity: float = 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "entity": self.entity,
            "name": self.name,
            "types": list(self.types),
            "aliases": list(self.aliases),
            "description": self.description,
            "popularity": self.popularity,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "EntityRecord":
        return cls(
            entity=payload["entity"],
            name=payload["name"],
            types=tuple(payload.get("types", ())),
            aliases=tuple(payload.get("aliases", ())),
            description=payload.get("description", ""),
            popularity=payload.get("popularity", 0.0),
        )


@dataclass
class StoreStats:
    """Size summary of a store, used by profiling and benchmarks."""

    num_entities: int
    num_facts: int
    num_predicates: int
    num_literal_facts: int


class TripleStore:
    """In-memory triple store with SPO/POS/OSP indexes.

    The write path is upsert-oriented: :meth:`add` merges metadata for an
    existing (s, p, o) key rather than duplicating the edge.  A monotonically
    increasing ``version`` lets materialized views detect staleness cheaply.
    """

    def __init__(self, name: str = "kg") -> None:
        self.name = name
        self._facts: dict[tuple[str, str, str], Fact] = {}
        self._spo: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._pos: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._osp: dict[str, dict[str, set[str]]] = defaultdict(lambda: defaultdict(set))
        self._entities: dict[str, EntityRecord] = {}
        self.version = 0

    # -- entities -----------------------------------------------------------

    def upsert_entity(self, record: EntityRecord) -> None:
        """Insert or replace an entity descriptor."""
        if not ids.is_entity(record.entity):
            raise StoreError(f"not an entity id: {record.entity!r}")
        self._entities[record.entity] = record
        self.version += 1

    def entity(self, entity: str) -> EntityRecord:
        """Descriptor of ``entity`` (raises for unknown entities)."""
        try:
            return self._entities[entity]
        except KeyError:
            raise StoreError(f"unknown entity {entity!r}") from None

    def has_entity(self, entity: str) -> bool:
        """True when a descriptor for ``entity`` exists."""
        return entity in self._entities

    def entities(self) -> Iterator[EntityRecord]:
        """Iterate over all entity descriptors."""
        return iter(list(self._entities.values()))

    def entity_ids(self) -> list[str]:
        """All entity ids with descriptors."""
        return list(self._entities)

    # -- facts ----------------------------------------------------------------

    def add(self, fact: Fact) -> Fact:
        """Upsert ``fact``; returns the stored (possibly merged) fact.

        Re-asserting an existing key unions provenance, keeps the maximum
        confidence and the newest timestamp — the fusion semantics the
        construction pipeline relies on.
        """
        stored = self._upsert(fact)
        self.version += 1
        return stored

    def _upsert(self, fact: Fact) -> Fact:
        """Upsert without touching ``version`` (shared by add/add_all)."""
        existing = self._facts.get(fact.key)
        if existing is not None:
            merged = existing.with_metadata(
                confidence=max(existing.confidence, fact.confidence),
                sources=tuple(dict.fromkeys(existing.sources + fact.sources)),
                updated_at=max(existing.updated_at, fact.updated_at),
            )
            self._facts[fact.key] = merged
            return merged
        self._facts[fact.key] = fact
        subject, predicate, obj = fact.key
        self._spo[subject][predicate].add(obj)
        self._pos[predicate][obj].add(subject)
        self._osp[obj][subject].add(predicate)
        return fact

    def add_all(self, facts: Iterable[Fact]) -> int:
        """Upsert many facts; returns the number processed.

        The whole batch advances ``version`` once (not once per fact), so
        bulk loads don't make version-watching consumers (views, alias
        tables, adjacency snapshots) look hundreds of rebuilds behind.
        The bump happens even when the iterable raises mid-batch —
        whatever was upserted before the error must still invalidate
        version-watching caches.
        """
        count = 0
        try:
            for fact in facts:
                self._upsert(fact)
                count += 1
        finally:
            if count:
                self.version += 1
        return count

    def remove(self, subject: str, predicate: str, obj: str) -> bool:
        """Delete the fact with key (s, p, o); returns whether it existed.

        Inner index entries emptied by the delete are pruned so long
        add/remove churn doesn't bloat the permutation indexes or skew
        ``predicates()``/``predicate_counts()`` iteration cost.
        """
        key = (subject, predicate, obj)
        if key not in self._facts:
            return False
        del self._facts[key]
        by_pred = self._spo[subject]
        by_pred[predicate].discard(obj)
        if not by_pred[predicate]:
            del by_pred[predicate]
            if not by_pred:
                del self._spo[subject]
        by_obj = self._pos[predicate]
        by_obj[obj].discard(subject)
        if not by_obj[obj]:
            del by_obj[obj]
            if not by_obj:
                del self._pos[predicate]
        by_subj = self._osp[obj]
        by_subj[subject].discard(predicate)
        if not by_subj[subject]:
            del by_subj[subject]
            if not by_subj:
                del self._osp[obj]
        self.version += 1
        return True

    def get(self, subject: str, predicate: str, obj: str) -> Fact | None:
        """The stored fact for key (s, p, o), or ``None``."""
        return self._facts.get((subject, predicate, obj))

    def __contains__(self, key: tuple[str, str, str]) -> bool:
        return key in self._facts

    def __len__(self) -> int:
        return len(self._facts)

    # -- pattern scans ---------------------------------------------------------

    def scan(
        self,
        subject: str | None = None,
        predicate: str | None = None,
        obj: str | None = None,
    ) -> Iterator[Fact]:
        """Yield facts matching the pattern; ``None`` positions are wildcards.

        Picks the index that binds the most constants, so cost is
        proportional to the number of results plus index fan-out.
        """
        if subject is not None and predicate is not None and obj is not None:
            fact = self._facts.get((subject, predicate, obj))
            if fact is not None:
                yield fact
            return
        if subject is not None:
            by_pred = self._spo.get(subject, {})
            predicates = [predicate] if predicate is not None else list(by_pred)
            for pred in predicates:
                for candidate in by_pred.get(pred, ()):
                    if obj is None or candidate == obj:
                        yield self._facts[(subject, pred, candidate)]
            return
        if predicate is not None:
            by_obj = self._pos.get(predicate, {})
            objects = [obj] if obj is not None else list(by_obj)
            for candidate_obj in objects:
                for subj in by_obj.get(candidate_obj, ()):
                    yield self._facts[(subj, predicate, candidate_obj)]
            return
        if obj is not None:
            by_subj = self._osp.get(obj, {})
            for subj, preds in list(by_subj.items()):
                for pred in preds:
                    yield self._facts[(subj, pred, obj)]
            return
        yield from list(self._facts.values())

    def objects(self, subject: str, predicate: str) -> list[str]:
        """Objects of all (subject, predicate, ?) facts."""
        return sorted(self._spo.get(subject, {}).get(predicate, ()))

    def subjects(self, predicate: str, obj: str) -> list[str]:
        """Subjects of all (?, predicate, obj) facts."""
        return sorted(self._pos.get(predicate, {}).get(obj, ()))

    def facts_of(self, subject: str) -> list[Fact]:
        """All facts with ``subject`` as subject."""
        return list(self.scan(subject=subject))

    def predicates_of(self, subject: str) -> set[str]:
        """Distinct predicates on ``subject``'s outgoing facts (O(result)).

        Reads the SPO index directly instead of materialising facts — the
        profiler's per-entity coverage check runs on this.
        """
        by_pred = self._spo.get(subject)
        if not by_pred:
            return set()
        return {pred for pred, objs in by_pred.items() if objs}

    def predicates(self) -> list[str]:
        """Distinct predicates with at least one fact."""
        return [p for p, by_obj in self._pos.items() if any(by_obj.values())]

    def predicate_counts(self) -> dict[str, int]:
        """Fact count per predicate (rare-predicate filtering input, §2)."""
        counts: dict[str, int] = {}
        for predicate, by_obj in self._pos.items():
            total = sum(len(subjects) for subjects in by_obj.values())
            if total:
                counts[predicate] = total
        return counts

    def out_degree(self, subject: str) -> int:
        """Number of facts with ``subject`` as subject."""
        return sum(len(objs) for objs in self._spo.get(subject, {}).values())

    def in_degree(self, entity: str) -> int:
        """Number of entity-valued facts with ``entity`` as object."""
        return sum(len(preds) for preds in self._osp.get(entity, {}).values())

    def stats(self) -> StoreStats:
        """Size summary of the store."""
        literal_count = sum(1 for fact in self._facts.values() if fact.is_literal)
        return StoreStats(
            num_entities=len(self._entities),
            num_facts=len(self._facts),
            num_predicates=len(self.predicates()),
            num_literal_facts=literal_count,
        )

    # -- bulk ----------------------------------------------------------------

    def copy_entities_from(self, other: "TripleStore", only: set[str] | None = None) -> int:
        """Copy entity descriptors from ``other`` (optionally a subset)."""
        count = 0
        for record in other.entities():
            if only is None or record.entity in only:
                self.upsert_entity(record)
                count += 1
        return count

    def neighbors(self, entity: str) -> set[str]:
        """Entity ids adjacent to ``entity`` via entity-valued facts."""
        out: set[str] = set()
        for fact in self.scan(subject=entity):
            if fact.obj_kind is ObjectKind.ENTITY:
                out.add(fact.obj)
        for subj, preds in self._osp.get(entity, {}).items():
            if preds:
                out.add(subj)
        out.discard(entity)
        return out
