"""Knowledge-graph substrate: store, ontology, engine, views, construction."""

from repro.kg.adjacency import AdjacencyIndex, CSRAdjacency, build_csr
from repro.kg.deltas import (
    DeltaOverlay,
    GenerationInfo,
    GenerationPublisher,
    published_version,
)
from repro.kg.encoding import Dictionary
from repro.kg.generator import (
    SyntheticKG,
    SyntheticKGConfig,
    generate_kg,
    hold_out_facts,
)
from repro.kg.graph_engine import GraphEngine, TriplePattern
from repro.kg.ontology import Ontology, PredicateSchema
from repro.kg.persistence import load_store, save_store
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import Fact, LiteralType, ObjectKind, entity_fact, literal_fact
from repro.kg.views import (
    ViewDefinition,
    ViewRegistry,
    embedding_training_view,
    materialize,
    static_knowledge_asset_view,
)

__all__ = [
    "AdjacencyIndex",
    "CSRAdjacency",
    "DeltaOverlay",
    "Dictionary",
    "EntityRecord",
    "Fact",
    "GenerationInfo",
    "GenerationPublisher",
    "GraphEngine",
    "LiteralType",
    "ObjectKind",
    "Ontology",
    "PredicateSchema",
    "SyntheticKG",
    "SyntheticKGConfig",
    "TriplePattern",
    "TripleStore",
    "ViewDefinition",
    "ViewRegistry",
    "build_csr",
    "embedding_training_view",
    "entity_fact",
    "generate_kg",
    "hold_out_facts",
    "literal_fact",
    "load_store",
    "materialize",
    "published_version",
    "save_store",
    "static_knowledge_asset_view",
]
