"""Synthetic open-domain knowledge graph generator.

The paper's substrate is Apple's production KG (billions of facts), which we
cannot use.  This module generates a deterministic, laptop-scale open-domain
KG with the structural properties the paper's techniques depend on:

* **multiple domains** (sports, film, music, academia, geography) under one
  ontology — the "union of multiple schemata" of §2;
* **Zipfian popularity** — a short head of celebrities, a long tail;
* **multi-valued predicates with an importance order** (occupations) —
  ground truth for fact ranking (Figure 2);
* **ambiguous names** — distinct entities sharing a surface form ("Michael
  Jordan" the player vs. the professor) — ground truth for entity linking;
* **numeric / identifier / rare-predicate noise** — what §2's view
  filtering removes before embedding training;
* **volatile facts with stale values** — what ODKE's freshness path hunts.

Everything is derived from a single seed, so benchmarks are reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common import ids
from repro.common.rng import substream, zipf_weights
from repro.kg.ontology import Ontology, PredicateSchema
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import Fact, LiteralType, entity_fact, literal_fact

# A fixed "now" for the synthetic world: 2023-05-16 (paper's arXiv date).
SYNTHETIC_NOW = 1684195200.0
_YEAR = 365.25 * 24 * 3600.0

FIRST_NAMES = [
    "James", "Maria", "Wei", "Aisha", "Carlos", "Yuki", "Liam", "Fatima",
    "Noah", "Sofia", "Raj", "Elena", "Omar", "Grace", "Hugo", "Priya",
    "Ivan", "Chloe", "Diego", "Hana", "Marcus", "Ingrid", "Tariq", "Lucia",
    "Andre", "Mei", "Samuel", "Nadia", "Felix", "Amara", "Jonas", "Rosa",
    "Kwame", "Vera", "Mateo", "Leila", "Oscar", "Dana", "Pavel", "Iris",
    "Tim", "Michelle", "Michael", "Jordan", "Taylor", "Morgan", "Alex", "Sam",
]

LAST_NAMES = [
    "Smith", "Garcia", "Chen", "Khan", "Silva", "Tanaka", "Brown", "Ali",
    "Johnson", "Rossi", "Patel", "Petrov", "Hassan", "Lee", "Dubois", "Sharma",
    "Novak", "Martin", "Lopez", "Sato", "Wright", "Larsen", "Aziz", "Romano",
    "Costa", "Wang", "Baker", "Haddad", "Weber", "Okafor", "Berg", "Moreno",
    "Mensah", "Koval", "Ruiz", "Nasser", "Lind", "Ford", "Orlov", "Quinn",
    "Root", "Williams", "Jordan", "James", "Curry", "Bryant", "Parker", "Stone",
]

CITY_NAMES = [
    "Lakemont", "Rivergate", "Ashford", "Northhaven", "Stonebridge", "Eastvale",
    "Clearwater", "Maplewood", "Harborview", "Westfield", "Goldcrest", "Pinehurst",
    "Silverton", "Oakdale", "Brightwater", "Fairmont", "Redhill", "Glenrock",
    "Summerside", "Winterfell", "Springvale", "Autumnridge", "Seacliff", "Highport",
]

COUNTRY_NAMES = [
    "Avaloria", "Borduria", "Caledonia", "Drakmar", "Elbonia", "Florin",
    "Genovia", "Havenreach", "Illyria", "Jotunland", "Krakozhia", "Latveria",
]

TEAM_SUFFIXES = [
    "Hawks", "Tigers", "Wolves", "Comets", "Titans", "Raptors", "Storm",
    "Knights", "Falcons", "Bears", "Sharks", "Lions",
]

FILM_WORDS = [
    "Midnight", "Crimson", "Silent", "Golden", "Broken", "Electric", "Hidden",
    "Burning", "Frozen", "Savage", "Endless", "Shattered", "Velvet", "Iron",
    "Echo", "River", "Empire", "Shadow", "Horizon", "Garden", "Winter", "Glass",
    "Thunder", "Paper", "Neon", "Crystal", "Scarlet", "Hollow",
]

ALBUM_WORDS = [
    "Dreams", "Roads", "Lights", "Waves", "Letters", "Stories", "Nights",
    "Colors", "Seasons", "Mirrors", "Voices", "Shadows", "Rhythms", "Skies",
]

GENRE_NAMES = [
    "rock", "jazz", "hip hop", "classical", "electronic", "folk",
    "drama", "comedy", "thriller", "documentary", "science fiction", "romance",
]

AWARD_NAMES = [
    "Most Valuable Player Award", "Championship Ring", "Golden Reel Award",
    "Platinum Microphone Award", "Distinguished Researcher Medal",
    "Best Director Trophy", "Rising Star Prize", "Lifetime Achievement Honor",
    "Golden Bat Award", "Critics Circle Award",
]

UNIVERSITY_NAMES = [
    "Lakemont University", "Ashford Institute of Technology",
    "Northhaven College", "Stonebridge University", "Harborview Polytechnic",
    "Westfield State University", "Silverton Academy", "Fairmont University",
]

RECORD_LABELS = [
    "Bluebird Records", "Neon Tower Music", "Crescent Sound", "Atlas Audio",
]

TV_SHOW_NAMES = [
    "Carpool Sessions", "The Late Window", "Morning Court", "Beyond the Game",
    "Studio Nine", "The Draft Room",
]

OCCUPATIONS = [
    ("basketball_player", "basketball player"),
    ("actor", "actor"),
    ("television_actor", "television actor"),
    ("musician", "musician"),
    ("singer", "singer"),
    ("professor", "university professor"),
    ("cricketer", "cricketer"),
    ("film_director", "film director"),
    ("screenwriter", "screenwriter"),
    ("writer", "writer"),
    ("politician", "politician"),
    ("chef", "chef"),
]

# Primary occupations drive which domain edges a person gets.
_PRIMARY_OCCUPATIONS = [
    "basketball_player", "actor", "musician", "professor",
    "cricketer", "film_director", "singer", "writer",
]


@dataclass
class SyntheticKGConfig:
    """Scale knobs of the generated world.

    ``scale=1.0`` gives roughly 1.3k entities and 10k facts — large enough
    to exercise every code path, small enough for CI.  Benchmarks sweep
    ``scale`` upward.
    """

    seed: int = 7
    scale: float = 1.0
    num_people: int = 400
    num_films: int = 120
    num_albums: int = 80
    num_teams: int = 24
    num_cities: int = 24
    ambiguous_name_pairs: int = 12
    noise_fact_fraction: float = 0.02
    stale_fact_fraction: float = 0.15
    now: float = SYNTHETIC_NOW

    def scaled(self) -> "SyntheticKGConfig":
        """Copy with entity counts multiplied by ``scale``."""
        if self.scale == 1.0:
            return self
        return SyntheticKGConfig(
            seed=self.seed,
            scale=1.0,
            num_people=max(20, int(self.num_people * self.scale)),
            num_films=max(10, int(self.num_films * self.scale)),
            num_albums=max(8, int(self.num_albums * self.scale)),
            num_teams=max(6, int(self.num_teams * self.scale)),
            num_cities=max(6, int(self.num_cities * self.scale)),
            ambiguous_name_pairs=max(4, int(self.ambiguous_name_pairs * self.scale)),
            noise_fact_fraction=self.noise_fact_fraction,
            stale_fact_fraction=self.stale_fact_fraction,
            now=self.now,
        )


@dataclass
class GroundTruth:
    """Labels the generator knows because it built the world.

    Benchmarks evaluate against these; production systems would use human
    judgements instead.
    """

    # person -> occupations ordered by importance (primary first).
    occupation_order: dict[str, list[str]] = field(default_factory=dict)
    # entity -> genuinely related entities (teammates, co-stars, spouse, ...).
    related: dict[str, set[str]] = field(default_factory=dict)
    # surface name -> entity ids sharing that exact name.
    ambiguous_names: dict[str, list[str]] = field(default_factory=dict)
    # facts asserted with deliberately wrong objects (low-confidence noise).
    noise_facts: list[Fact] = field(default_factory=list)
    # (subject, predicate) pairs whose stored value is stale.
    stale_facts: list[tuple[str, str]] = field(default_factory=list)
    # person -> the person's true date of birth (ISO) for ODKE checks.
    birth_dates: dict[str, str] = field(default_factory=dict)


@dataclass
class SyntheticKG:
    """The generated world: store + ontology + ground truth + config."""

    store: TripleStore
    ontology: Ontology
    truth: GroundTruth
    config: SyntheticKGConfig

    @property
    def now(self) -> float:
        """The synthetic world's current timestamp."""
        return self.config.now


def build_ontology() -> Ontology:
    """The unified ontology all generated facts conform to."""
    onto = Ontology()
    t = ids.type_id
    onto.add_type(t("thing"))
    onto.add_type(t("person"), t("thing"))
    onto.add_type(t("athlete"), t("person"))
    onto.add_type(t("basketball_player"), t("athlete"))
    onto.add_type(t("cricketer"), t("athlete"))
    onto.add_type(t("creative_work"), t("thing"))
    onto.add_type(t("film"), t("creative_work"))
    onto.add_type(t("album"), t("creative_work"))
    onto.add_type(t("tv_show"), t("creative_work"))
    onto.add_type(t("organization"), t("thing"))
    onto.add_type(t("sports_team"), t("organization"))
    onto.add_type(t("university"), t("organization"))
    onto.add_type(t("record_label"), t("organization"))
    onto.add_type(t("place"), t("thing"))
    onto.add_type(t("city"), t("place"))
    onto.add_type(t("country"), t("place"))
    onto.add_type(t("award"), t("thing"))
    onto.add_type(t("genre"), t("thing"))
    onto.add_type(t("occupation"), t("thing"))

    p = ids.predicate_id

    def entity_pred(local: str, domain: str, range_type: str, **kwargs: bool) -> None:
        onto.add_predicate(
            PredicateSchema(p(local), t(domain), range_type=t(range_type), **kwargs)
        )

    def literal_pred(
        local: str, domain: str, literal_type: LiteralType, **kwargs: bool
    ) -> None:
        onto.add_predicate(
            PredicateSchema(p(local), t(domain), literal_type=literal_type, **kwargs)
        )

    entity_pred("occupation", "person", "occupation", expected=True)
    entity_pred("member_of_sports_team", "athlete", "sports_team")
    entity_pred("award_received", "person", "award")
    entity_pred("spouse", "person", "person", functional=True, volatile=True)
    entity_pred("place_of_birth", "person", "city", functional=True, expected=True)
    entity_pred("citizen_of", "person", "country", expected=True)
    entity_pred("educated_at", "person", "university")
    entity_pred("employer", "person", "university")
    entity_pred("starred_in", "person", "film")
    entity_pred("directed", "person", "film")
    entity_pred("performer_of", "person", "album")
    entity_pred("signed_to", "person", "record_label")
    entity_pred("appears_on", "person", "tv_show")
    entity_pred("film_genre", "film", "genre")
    entity_pred("album_genre", "album", "genre")
    entity_pred("located_in", "place", "country")
    entity_pred("home_city", "organization", "city")

    literal_pred("date_of_birth", "person", LiteralType.DATE, functional=True, expected=True)
    literal_pred("height_cm", "person", LiteralType.NUMBER, functional=True)
    literal_pred("social_media_followers", "person", LiteralType.NUMBER, functional=True, volatile=True)
    literal_pred("net_worth_musd", "person", LiteralType.NUMBER, functional=True, volatile=True)
    literal_pred("marital_status", "person", LiteralType.STRING, functional=True, volatile=True)
    literal_pred("library_id", "creative_work", LiteralType.IDENTIFIER, functional=True)
    literal_pred("population", "city", LiteralType.NUMBER, functional=True)
    literal_pred("release_year", "creative_work", LiteralType.NUMBER, functional=True)
    return onto


class _WorldBuilder:
    """Stateful builder used by :func:`generate_kg` (one pass, deterministic)."""

    def __init__(self, config: SyntheticKGConfig) -> None:
        self.config = config.scaled()
        self.store = TripleStore()
        self.ontology = build_ontology()
        self.truth = GroundTruth()
        self.rng = substream(self.config.seed, "world")
        self.now = self.config.now
        # id pools filled as we create entities
        self.occupation_entities: dict[str, str] = {}
        self.cities: list[str] = []
        self.countries: list[str] = []
        self.teams_basketball: list[str] = []
        self.teams_cricket: list[str] = []
        self.films: list[str] = []
        self.albums: list[str] = []
        self.awards: list[str] = []
        self.universities: list[str] = []
        self.labels: list[str] = []
        self.tv_shows: list[str] = []
        self.genres: list[str] = []
        self.people: list[str] = []

    # -- helpers ---------------------------------------------------------------

    def _entity(
        self,
        local: str,
        name: str,
        types: tuple[str, ...],
        popularity: float,
        aliases: tuple[str, ...] = (),
        description: str = "",
    ) -> str:
        entity = ids.entity_id(local)
        self.store.upsert_entity(
            EntityRecord(
                entity=entity,
                name=name,
                types=types,
                aliases=aliases,
                description=description,
                popularity=popularity,
            )
        )
        return entity

    def _fact(self, subject: str, predicate_local: str, obj: str, age_years: float = 1.0) -> Fact:
        fact = entity_fact(
            subject,
            ids.predicate_id(predicate_local),
            obj,
            sources=("source:seed-kb",),
            updated_at=self.now - age_years * _YEAR,
        )
        return self.store.add(fact)

    def _literal(
        self,
        subject: str,
        predicate_local: str,
        value: object,
        literal_type: LiteralType,
        age_years: float = 1.0,
    ) -> Fact:
        fact = literal_fact(
            subject,
            ids.predicate_id(predicate_local),
            value,
            literal_type,
            sources=("source:seed-kb",),
            updated_at=self.now - age_years * _YEAR,
        )
        return self.store.add(fact)

    def _relate(self, a: str, b: str) -> None:
        self.truth.related.setdefault(a, set()).add(b)
        self.truth.related.setdefault(b, set()).add(a)

    # -- world pieces -----------------------------------------------------------

    def build_static_world(self) -> None:
        """Occupations, places, teams, works, awards, institutions."""
        cfg = self.config
        t = ids.type_id
        for key, label in OCCUPATIONS:
            self.occupation_entities[key] = self._entity(
                f"occupation/{key}", label, (t("occupation"),), popularity=0.3,
                description=f"The occupation of {label}.",
            )
        for i, name in enumerate(COUNTRY_NAMES):
            self.countries.append(
                self._entity(f"country/{i:03d}", name, (t("country"), t("place")), 0.5,
                             description=f"{name} is a country.")
            )
        city_pops = zipf_weights(cfg.num_cities, 0.8)
        for i in range(cfg.num_cities):
            name = CITY_NAMES[i % len(CITY_NAMES)]
            if i >= len(CITY_NAMES):
                name = f"{name} {i // len(CITY_NAMES) + 1}"
            city = self._entity(
                f"city/{i:03d}", name, (t("city"), t("place")), float(city_pops[i]),
                description=f"{name} is a city.",
            )
            self.cities.append(city)
            country = self.countries[i % len(self.countries)]
            self._fact(city, "located_in", country)
            self._literal(city, "population", int(50_000 + 9e6 * city_pops[i]), LiteralType.NUMBER)

        half = max(1, cfg.num_teams // 2)
        for i in range(cfg.num_teams):
            city = self.cities[i % len(self.cities)]
            city_name = self.store.entity(city).name
            suffix = TEAM_SUFFIXES[i % len(TEAM_SUFFIXES)]
            name = f"{city_name} {suffix}"
            team = self._entity(
                f"team/{i:03d}", name, (t("sports_team"), t("organization")), 0.4,
                aliases=(suffix,),
                description=f"The {name} are a professional "
                            f"{'basketball' if i < half else 'cricket'} team.",
            )
            self._fact(team, "home_city", city)
            (self.teams_basketball if i < half else self.teams_cricket).append(team)

        for i, name in enumerate(AWARD_NAMES):
            self.awards.append(
                self._entity(f"award/{i:03d}", name, (t("award"),), 0.3,
                             description=f"The {name} is an award.")
            )
        for i, name in enumerate(UNIVERSITY_NAMES):
            uni = self._entity(
                f"university/{i:03d}", name, (t("university"), t("organization")), 0.3,
                description=f"{name} is a university.",
            )
            self.universities.append(uni)
            self._fact(uni, "home_city", self.cities[i % len(self.cities)])
        for i, name in enumerate(RECORD_LABELS):
            self.labels.append(
                self._entity(f"label/{i:03d}", name, (t("record_label"), t("organization")), 0.2,
                             description=f"{name} is a record label.")
            )
        for i, name in enumerate(TV_SHOW_NAMES):
            self.tv_shows.append(
                self._entity(f"tvshow/{i:03d}", name, (t("tv_show"), t("creative_work")), 0.25,
                             description=f"{name} is a television show.")
            )
        for i, name in enumerate(GENRE_NAMES):
            self.genres.append(
                self._entity(f"genre/{i:03d}", name, (t("genre"),), 0.2,
                             description=f"{name} is a genre.")
            )

    def build_works(self) -> None:
        """Films and albums (creators attached later)."""
        cfg = self.config
        t = ids.type_id
        rng = substream(cfg.seed, "works")
        film_pops = zipf_weights(cfg.num_films, 1.0)
        for i in range(cfg.num_films):
            a, b = rng.choice(len(FILM_WORDS), size=2, replace=False)
            name = f"The {FILM_WORDS[a]} {FILM_WORDS[b]}"
            film = self._entity(
                f"film/{i:04d}", name, (t("film"), t("creative_work")), float(film_pops[i]),
                description=f"{name} is a film.",
            )
            self.films.append(film)
            self._fact(film, "film_genre", self.genres[int(rng.integers(6, len(self.genres)))])
            self._literal(film, "release_year", int(1980 + rng.integers(0, 43)), LiteralType.NUMBER)
            self._literal(film, "library_id", f"LIB-F-{i:06d}", LiteralType.IDENTIFIER)
        album_pops = zipf_weights(cfg.num_albums, 1.0)
        for i in range(cfg.num_albums):
            a, b = rng.choice(len(ALBUM_WORDS), size=2, replace=False)
            name = f"{ALBUM_WORDS[a]} and {ALBUM_WORDS[b]}"
            album = self._entity(
                f"album/{i:04d}", name, (t("album"), t("creative_work")), float(album_pops[i]),
                description=f"{name} is a music album.",
            )
            self.albums.append(album)
            self._fact(album, "album_genre", self.genres[int(rng.integers(0, 6))])
            self._literal(album, "release_year", int(1990 + rng.integers(0, 33)), LiteralType.NUMBER)
            self._literal(album, "library_id", f"LIB-A-{i:06d}", LiteralType.IDENTIFIER)

    def _person_name(self, index: int, rng: np.random.Generator) -> str:
        first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))]
        last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))]
        return f"{first} {last}"

    def build_people(self) -> None:
        """People with occupations, domain edges and literal attributes."""
        cfg = self.config
        rng = substream(cfg.seed, "people")
        # Zipfian, rescaled so head people are the KG's most popular
        # entities (celebrities outrank countries and teams).
        pops = zipf_weights(cfg.num_people, 1.1)
        pops = pops / pops[0] * 0.95

        # Pre-plan ambiguous pairs: pairs of person indices forced to share a
        # name while having different primary occupations.
        ambiguous_assignments: dict[int, tuple[str, str]] = {}
        n_pairs = min(cfg.ambiguous_name_pairs, cfg.num_people // 4)
        # Pick head-ish indices so ambiguous entities are popular enough to be
        # mentioned in the corpus (mirrors "Michael Jordan").
        pair_indices = list(range(2, 2 + 2 * n_pairs))
        for pair in range(n_pairs):
            i, j = pair_indices[2 * pair], pair_indices[2 * pair + 1]
            first = FIRST_NAMES[int(rng.integers(len(FIRST_NAMES)))]
            last = LAST_NAMES[int(rng.integers(len(LAST_NAMES)))]
            shared = f"{first} {last}"
            occ_a, occ_b = _PRIMARY_OCCUPATIONS[pair % len(_PRIMARY_OCCUPATIONS)], \
                _PRIMARY_OCCUPATIONS[(pair + 3) % len(_PRIMARY_OCCUPATIONS)]
            ambiguous_assignments[i] = (shared, occ_a)
            ambiguous_assignments[j] = (shared, occ_b)

        for i in range(cfg.num_people):
            if i in ambiguous_assignments:
                name, primary = ambiguous_assignments[i]
            else:
                name = self._person_name(i, rng)
                primary = _PRIMARY_OCCUPATIONS[int(rng.integers(len(_PRIMARY_OCCUPATIONS)))]
            person = self._build_person(i, name, primary, float(pops[i]), rng)
            self.people.append(person)
            if i in ambiguous_assignments:
                self.truth.ambiguous_names.setdefault(name, []).append(person)

        self._build_spouses(rng)

    def _build_person(
        self, index: int, name: str, primary: str,
        popularity: float, rng: np.random.Generator,
    ) -> str:
        t = ids.type_id
        cfg = self.config
        person_types: list[str] = [t("person")]
        if primary in ("basketball_player", "cricketer"):
            person_types = [t(primary), t("athlete"), t("person")]
        occupation_label = dict(OCCUPATIONS)[primary]
        description = f"{name} is a {occupation_label}."
        first = name.split()[0]
        last = name.split()[-1]
        person = self._entity(
            f"person/{index:05d}", name, tuple(person_types), popularity,
            aliases=(f"{first[0]}. {last}", last),
            description=description,
        )

        # Occupations: primary plus 0-2 secondary, importance = edge support.
        occupations = [primary]
        n_secondary = int(rng.integers(0, 3))
        secondary_pool = [key for key, _ in OCCUPATIONS if key != primary]
        for pick in rng.choice(len(secondary_pool), size=n_secondary, replace=False):
            occupations.append(secondary_pool[int(pick)])
        for occ in occupations:
            self._fact(person, "occupation", self.occupation_entities[occ])
        self.truth.occupation_order[person] = [
            self.occupation_entities[occ] for occ in occupations
        ]

        self._attach_domain_edges(person, primary, rng, support=int(rng.integers(2, 5)))
        for occ in occupations[1:]:
            self._attach_domain_edges(person, occ, rng, support=1)

        # Universal person facts.
        birth_city = self.cities[int(rng.integers(len(self.cities)))]
        self._fact(person, "place_of_birth", birth_city)
        country = self.store.objects(birth_city, ids.predicate_id("located_in"))
        if country:
            self._fact(person, "citizen_of", country[0])
        year = int(1950 + rng.integers(0, 55))
        month = int(1 + rng.integers(0, 12))
        day = int(1 + rng.integers(0, 28))
        dob = f"{year:04d}-{month:02d}-{day:02d}"
        self.truth.birth_dates[person] = dob
        self._literal(person, "date_of_birth", dob, LiteralType.DATE)
        self._literal(person, "height_cm", int(150 + rng.integers(0, 60)), LiteralType.NUMBER)
        followers = int(1000 * (1 + 1e5 * popularity) * (0.5 + rng.random()))
        stale = rng.random() < cfg.stale_fact_fraction
        self._literal(
            person, "social_media_followers", followers, LiteralType.NUMBER,
            age_years=3.0 if stale else 0.1,
        )
        if stale:
            self.truth.stale_facts.append(
                (person, ids.predicate_id("social_media_followers"))
            )
        return person

    def _attach_domain_edges(
        self, person: str, occupation: str, rng: np.random.Generator, support: int
    ) -> None:
        """Edges justifying an occupation; ``support`` scales how many."""
        if occupation == "basketball_player" and self.teams_basketball:
            team = self.teams_basketball[int(rng.integers(len(self.teams_basketball)))]
            self._fact(person, "member_of_sports_team", team)
            for teammate in self.store.subjects(ids.predicate_id("member_of_sports_team"), team):
                if teammate != person:
                    self._relate(person, teammate)
            for _ in range(support - 1):
                award = self.awards[int(rng.integers(0, 2))]
                self._fact(person, "award_received", award)
        elif occupation == "cricketer" and self.teams_cricket:
            team = self.teams_cricket[int(rng.integers(len(self.teams_cricket)))]
            self._fact(person, "member_of_sports_team", team)
            for teammate in self.store.subjects(ids.predicate_id("member_of_sports_team"), team):
                if teammate != person:
                    self._relate(person, teammate)
            if support > 1:
                self._fact(person, "award_received", self.awards[8])
        elif occupation in ("actor", "television_actor"):
            for _ in range(support):
                if occupation == "television_actor" or rng.random() < 0.15:
                    show = self.tv_shows[int(rng.integers(len(self.tv_shows)))]
                    self._fact(person, "appears_on", show)
                else:
                    film = self.films[int(rng.integers(len(self.films)))]
                    self._fact(person, "starred_in", film)
                    for costar in self.store.subjects(ids.predicate_id("starred_in"), film):
                        if costar != person:
                            self._relate(person, costar)
        elif occupation in ("musician", "singer") and self.albums:
            for _ in range(support):
                album = self.albums[int(rng.integers(len(self.albums)))]
                self._fact(person, "performer_of", album)
            self._fact(person, "signed_to", self.labels[int(rng.integers(len(self.labels)))])
            if support > 1:
                self._fact(person, "award_received", self.awards[3])
        elif occupation == "professor":
            uni = self.universities[int(rng.integers(len(self.universities)))]
            self._fact(person, "employer", uni)
            self._fact(person, "educated_at",
                       self.universities[int(rng.integers(len(self.universities)))])
            for colleague in self.store.subjects(ids.predicate_id("employer"), uni):
                if colleague != person:
                    self._relate(person, colleague)
            if support > 1:
                self._fact(person, "award_received", self.awards[4])
        elif occupation == "film_director" and self.films:
            for _ in range(support):
                film = self.films[int(rng.integers(len(self.films)))]
                self._fact(person, "directed", film)
            if support > 1:
                self._fact(person, "award_received", self.awards[5])
        elif occupation in ("screenwriter", "writer", "politician", "chef"):
            # Low-structure occupations: at most a generic award.
            if support > 1:
                self._fact(person, "award_received", self.awards[7])

    def _build_spouses(self, rng: np.random.Generator) -> None:
        """Marry ~20% of adjacent people pairs; record relatedness + status."""
        married: set[str] = set()
        for i in range(0, len(self.people) - 1, 2):
            if rng.random() < 0.2:
                a, b = self.people[i], self.people[i + 1]
                self._fact(a, "spouse", b)
                self._fact(b, "spouse", a)
                self._relate(a, b)
                married.update((a, b))
        for person in self.people:
            status = "married" if person in married else "single"
            self._literal(person, "marital_status", status, LiteralType.STRING)

    def add_noise_facts(self) -> None:
        """Low-confidence wrong facts (the §2 'noisy data' the views handle)."""
        cfg = self.config
        rng = substream(cfg.seed, "noise")
        n_noise = int(len(self.store) * cfg.noise_fact_fraction)
        occupations = list(self.occupation_entities.values())
        for k in range(n_noise):
            person = self.people[int(rng.integers(len(self.people)))]
            wrong_occ = occupations[int(rng.integers(len(occupations)))]
            truth_occs = set(self.truth.occupation_order.get(person, []))
            if wrong_occ in truth_occs:
                continue
            fact = entity_fact(
                person, ids.predicate_id("occupation"), wrong_occ,
                confidence=0.25,
                sources=("source:noisy-feed",),
                updated_at=self.now - 0.5 * _YEAR,
            )
            self.store.add(fact)
            self.truth.noise_facts.append(fact)

    def build(self) -> SyntheticKG:
        """Run every stage and return the finished world."""
        self.build_static_world()
        self.build_works()
        self.build_people()
        self.add_noise_facts()
        return SyntheticKG(
            store=self.store,
            ontology=self.ontology,
            truth=self.truth,
            config=self.config,
        )


def generate_kg(config: SyntheticKGConfig | None = None) -> SyntheticKG:
    """Generate the synthetic world (deterministic in ``config.seed``)."""
    return _WorldBuilder(config or SyntheticKGConfig()).build()


def hold_out_facts(
    kg: SyntheticKG,
    predicates: list[str] | None = None,
    fraction: float = 0.2,
    seed: int = 99,
) -> tuple[TripleStore, list[Fact]]:
    """Split the world into a deployed KG with coverage gaps + held-out truth.

    Removes ``fraction`` of the facts of the given predicates (default:
    date_of_birth and place_of_birth, the Figure 6 examples) from a copy of
    the store.  ODKE benchmarks measure how many held-out facts the
    extraction pipeline recovers from the synthetic web corpus.
    """
    if predicates is None:
        predicates = [
            ids.predicate_id("date_of_birth"),
            ids.predicate_id("place_of_birth"),
        ]
    rng = substream(seed, "holdout")
    removable: list[Fact] = []
    for predicate in predicates:
        removable.extend(kg.store.scan(predicate=predicate))
    removable.sort(key=lambda fact: fact.key)
    n_remove = int(len(removable) * fraction)
    chosen = set(
        int(i) for i in rng.choice(len(removable), size=n_remove, replace=False)
    ) if n_remove else set()

    deployed = TripleStore(name="deployed-kg")
    deployed.copy_entities_from(kg.store)
    held_out: list[Fact] = []
    removed_keys = {removable[i].key for i in chosen}
    for fact in kg.store.scan():
        if fact.key in removed_keys:
            held_out.append(fact)
        else:
            deployed.add(fact)
    return deployed, held_out
