"""Tenant overlay graphs: a personal KG spliced over the shared bundle.

The delta machinery in :mod:`repro.kg.deltas` chains generations of *one*
store: every :class:`DeltaPayload`'s base is the previous generation of the
same graph.  This module generalises the base away from "prior generation"
to "shared open-domain bundle" — the Saga shape (Ilyas et al., 2022) where
thousands of per-user personal graphs layer over a single immutable
snapshot.  A tenant overlay is one synthetic in-memory delta built from a
personal :class:`TripleStore`, merged through the existing
:class:`DeltaOverlay` splice so every read-side invariant (append-only id
space, string-sorted rows, tip-stamped versions) holds by construction:

* the shared base CSR is referenced, never copied or mutated — every
  resident tenant shares one mmap;
* personal nodes take ids past ``base.num_nodes``, so a shared-bundle
  generation swap (which only ever *appends* to the dictionary) leaves
  overlay row contents meaningful — the overlay is simply rebuilt against
  the new base and personal facts land on the same strings;
* the collapsed snapshot is stamped at the personal store's version, so a
  :class:`~repro.kg.graph_engine.GraphEngine` over the (frozen) personal
  store adopts it and never silently rebuilds a shared-graph-free CSR.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.common.errors import StoreError
from repro.kg.adjacency import CSRAdjacency
from repro.kg.deltas import DeltaOverlay, DeltaPayload
from repro.kg.graph_engine import GraphEngine
from repro.kg.store import TripleStore
from repro.kg.triple import ObjectKind

OVERLAY_DIRECTORY = Path("<tenant-overlay>")


def overlay_payload(base: CSRAdjacency, personal: TripleStore) -> DeltaPayload:
    """One synthetic delta layering ``personal``'s facts over ``base``.

    Mirrors :func:`~repro.kg.adjacency.build_csr` edge semantics exactly
    (entity facts edge both ways, every fact edges object->subject,
    self-loops drop from rows but still count toward entity-edge degrees),
    so a walk over the collapsed overlay visits the same neighbor sets a
    from-scratch build of shared+personal would.  Strings absent from the
    base dictionary append in sorted order — deterministic, so two builds
    of the same (base, personal) pair are byte-identical.
    """
    entity_kind = ObjectKind.ENTITY
    additions: dict[str, set[str]] = {}
    degree_add: dict[str, int] = {}
    nodes: set[str] = set(personal.entity_ids())
    for fact in personal.scan():
        subject, obj = fact.subject, fact.obj
        nodes.add(subject)
        nodes.add(obj)
        if fact.obj_kind is entity_kind:
            if subject != obj:
                additions.setdefault(subject, set()).add(obj)
                additions.setdefault(obj, set()).add(subject)
            degree_add[subject] = degree_add.get(subject, 0) + 1
            degree_add[obj] = degree_add.get(obj, 0) + 1
        if subject != obj:
            additions.setdefault(obj, set()).add(subject)

    base_dictionary = base.dictionary
    base_n = base.num_nodes
    new_strings = sorted(n for n in nodes if base_dictionary.get(n) is None)
    extra_id_of = {string: base_n + i for i, string in enumerate(new_strings)}

    def node_id(string: str) -> int:
        known = base_dictionary.get(string)
        return extra_id_of[string] if known is None else known

    base_strings = base_dictionary._strings_view()
    changed: list[tuple[int, str]] = sorted((node_id(n), n) for n in nodes)
    changed_nodes = np.asarray([nid for nid, _ in changed], dtype=np.int64)
    rows: list[np.ndarray] = []
    degrees: list[int] = []
    for nid, node in changed:
        combined = set(additions.get(node, ()))
        degree = degree_add.get(node, 0)
        if nid < base_n:
            combined.update(base_strings[i] for i in base.neighbors_of(nid))
            degree += int(base.entity_edge_degrees[nid])
        rows.append(
            np.asarray([node_id(n) for n in sorted(combined)], dtype=np.int32)
        )
        degrees.append(degree)

    row_offsets = np.zeros(len(rows) + 1, dtype=np.int64)
    if rows:
        np.cumsum([len(row) for row in rows], out=row_offsets[1:])
    row_indices = (
        np.concatenate(rows).astype(np.int32) if rows else np.empty(0, dtype=np.int32)
    )

    predicate_counts = dict(base.predicate_counts)
    for predicate, count in personal.predicate_counts().items():
        predicate_counts[predicate] = predicate_counts.get(predicate, 0) + count

    return DeltaPayload(
        directory=OVERLAY_DIRECTORY,
        seq=1,
        store_version=personal.version,
        parent_version=base.built_version,
        new_strings=new_strings,
        changed_nodes=changed_nodes,
        row_offsets=row_offsets,
        row_indices=row_indices,
        changed_degrees=np.asarray(degrees, dtype=np.int64),
        ctx_entities=[],
        ctx_matrix=np.zeros((0, 0), dtype=np.float64),
        alias_updates={},
        predicate_counts=predicate_counts,
        removed=[],
        extra={"overlay": True},
    )


def collapse_overlay(base: CSRAdjacency, personal: TripleStore) -> CSRAdjacency:
    """The merged shared+personal CSR, stamped at ``personal.version``."""
    return DeltaOverlay(base, [overlay_payload(base, personal)]).collapse()


class TenantOverlay:
    """One tenant's merged read view: shared base + frozen personal store.

    The personal store must not mutate while the overlay lives — writes go
    through the tenant's durable record store, which derives a *new*
    personal store and a new overlay (the same adopt-or-rebuild contract
    every physical layer in this repo follows).  ``engine()`` raises rather
    than degrade: a version drift would otherwise silently rebuild a CSR
    from the personal store alone, answering without the shared graph.
    """

    def __init__(self, base: CSRAdjacency, personal: TripleStore) -> None:
        self.base = base
        self.personal = personal
        self.personal_version = personal.version
        self.snapshot = collapse_overlay(base, personal)
        self._engine: GraphEngine | None = None

    @property
    def base_version(self) -> int:
        return self.base.built_version

    @property
    def num_personal_nodes(self) -> int:
        return self.snapshot.num_nodes - self.base.num_nodes

    def engine(self) -> GraphEngine:
        """A :class:`GraphEngine` serving the merged view (cached)."""
        if self._engine is None:
            if self.personal.version != self.personal_version:
                raise StoreError(
                    f"tenant personal store moved ({self.personal_version} -> "
                    f"{self.personal.version}) under a live overlay; rebuild it"
                )
            engine = GraphEngine(self.personal)
            if not engine.adopt_snapshot(self.snapshot):
                raise StoreError(
                    "tenant overlay snapshot rejected by the personal store "
                    f"(built {self.snapshot.built_version}, store "
                    f"{self.personal.version})"
                )
            self._engine = engine
        return self._engine
