"""Batch and streaming KG construction.

Figure 1 shows knowledge sources feeding the graph engine through both a
batch path (full source snapshots) and a streaming path (real-time deltas).
This module implements the shared ingestion machinery:

* :class:`KnowledgeSource` — a named feed of facts with a trust prior,
* :class:`BatchIngestor` — snapshot ingestion with per-source conflict
  resolution for functional predicates (highest trust × confidence wins),
* :class:`StreamIngestor` — ordered application of :class:`Delta` records
  (upserts and retractions) with monotonic sequence checking.

Both paths route through the same resolution logic so batch and streaming
writes cannot diverge — the invariant Saga's continuous construction relies
on.
"""

from __future__ import annotations

from collections.abc import Iterable
from dataclasses import dataclass, field
from enum import Enum

from repro.common.errors import StoreError
from repro.kg.ontology import Ontology
from repro.kg.store import TripleStore
from repro.kg.triple import Fact


@dataclass
class KnowledgeSource:
    """A named upstream feed with a trust prior in ``[0, 1]``."""

    name: str
    trust: float = 0.8
    facts: list[Fact] = field(default_factory=list)

    def __post_init__(self) -> None:
        if not 0.0 <= self.trust <= 1.0:
            raise StoreError(f"source trust must be in [0, 1], got {self.trust}")


class DeltaOp(str, Enum):
    """Streaming operation kind."""

    UPSERT = "upsert"
    RETRACT = "retract"


@dataclass(frozen=True)
class Delta:
    """One streaming change: an upsert or retraction of a fact."""

    sequence: int
    op: DeltaOp
    fact: Fact


@dataclass
class IngestReport:
    """Outcome counters of an ingestion run."""

    facts_seen: int = 0
    facts_applied: int = 0
    conflicts_resolved: int = 0
    retractions: int = 0
    schema_rejections: int = 0


class _Resolver:
    """Shared conflict-resolution core for batch and streaming writes."""

    def __init__(self, store: TripleStore, ontology: Ontology | None) -> None:
        self.store = store
        self.ontology = ontology

    def validate(self, fact: Fact) -> bool:
        """Schema check: predicate known and literal-kind consistent."""
        if self.ontology is None:
            return True
        if not self.ontology.has_predicate(fact.predicate):
            return False
        schema = self.ontology.schema(fact.predicate)
        return schema.is_literal == fact.is_literal

    def apply(self, fact: Fact, trust: float, report: IngestReport) -> None:
        """Write ``fact``, resolving functional-predicate conflicts.

        For functional predicates an existing different value is replaced
        only when the incoming weighted confidence (trust × confidence)
        strictly exceeds the stored fact's confidence; otherwise the
        incoming fact is dropped.  Multi-valued predicates simply upsert.
        """
        report.facts_seen += 1
        if not self.validate(fact):
            report.schema_rejections += 1
            return
        weighted = fact.with_metadata(confidence=min(1.0, fact.confidence * trust))
        functional = (
            self.ontology is not None
            and self.ontology.schema(fact.predicate).functional
        )
        if functional:
            existing = [
                current
                for current in self.store.scan(
                    subject=fact.subject, predicate=fact.predicate
                )
                if current.obj != fact.obj
            ]
            if existing:
                best = max(existing, key=lambda f: f.confidence)
                if weighted.confidence > best.confidence:
                    for current in existing:
                        self.store.remove(*current.key)
                    report.conflicts_resolved += 1
                else:
                    return
        self.store.add(weighted)
        report.facts_applied += 1


class BatchIngestor:
    """Snapshot ingestion of whole knowledge sources."""

    def __init__(self, store: TripleStore, ontology: Ontology | None = None) -> None:
        self._resolver = _Resolver(store, ontology)

    def ingest(self, sources: Iterable[KnowledgeSource]) -> IngestReport:
        """Ingest every source in order; higher-trust sources win conflicts."""
        report = IngestReport()
        ordered = sorted(sources, key=lambda source: source.trust)
        for source in ordered:
            for fact in source.facts:
                stamped = fact.with_metadata(
                    sources=tuple(dict.fromkeys(fact.sources + (f"source:{source.name}",)))
                )
                self._resolver.apply(stamped, source.trust, report)
        return report


class StreamIngestor:
    """Ordered streaming ingestion with sequence-number checking."""

    def __init__(self, store: TripleStore, ontology: Ontology | None = None) -> None:
        self._resolver = _Resolver(store, ontology)
        self._last_sequence = -1

    @property
    def last_sequence(self) -> int:
        """Sequence number of the last applied delta (-1 before any)."""
        return self._last_sequence

    def apply(self, delta: Delta, trust: float = 1.0) -> IngestReport:
        """Apply one delta; sequences must be strictly increasing."""
        if delta.sequence <= self._last_sequence:
            raise StoreError(
                f"out-of-order delta {delta.sequence} (last {self._last_sequence})"
            )
        report = IngestReport()
        if delta.op is DeltaOp.RETRACT:
            if self._resolver.store.remove(*delta.fact.key):
                report.retractions += 1
        else:
            self._resolver.apply(delta.fact, trust, report)
        self._last_sequence = delta.sequence
        return report

    def apply_all(self, deltas: Iterable[Delta], trust: float = 1.0) -> IngestReport:
        """Apply deltas in order, accumulating one report."""
        total = IngestReport()
        for delta in deltas:
            partial = self.apply(delta, trust)
            total.facts_seen += partial.facts_seen
            total.facts_applied += partial.facts_applied
            total.conflicts_resolved += partial.conflicts_resolved
            total.retractions += partial.retractions
            total.schema_rejections += partial.schema_rejections
        return total
