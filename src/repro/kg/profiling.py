"""Knowledge-graph profiling: coverage and freshness analysis.

§4 lists profiling as the *proactive* way to find important missing or
stale facts: "we can proactively identify potential coverage and freshness
issues within the existing knowledge graph via knowledge graph profiling."

The profiler walks entities, compares their facts against the ontology's
*expected* predicates for their types, and emits :class:`CoverageGap`
records ranked by entity popularity (gaps on celebrities matter more than
gaps in the tail).  Freshness analysis flags facts of *volatile* predicates
whose ``updated_at`` is older than a staleness horizon.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.kg.ontology import Ontology
from repro.kg.store import TripleStore


@dataclass(frozen=True)
class CoverageGap:
    """A missing expected fact: ``entity`` lacks any value for ``predicate``."""

    entity: str
    predicate: str
    importance: float

    @property
    def key(self) -> tuple[str, str]:
        return (self.entity, self.predicate)


@dataclass(frozen=True)
class StaleFact:
    """A volatile fact whose stored value is older than the horizon."""

    entity: str
    predicate: str
    obj: str
    age_seconds: float
    importance: float


@dataclass
class ProfileReport:
    """Aggregate coverage statistics per (type, predicate)."""

    entity_count: int
    # (type, predicate) -> fraction of that type's entities carrying the predicate
    coverage: dict[tuple[str, str], float]
    gaps: list[CoverageGap]
    stale: list[StaleFact]

    def coverage_of(self, type_id: str, predicate: str) -> float:
        """Coverage fraction for one (type, predicate), 0.0 when untracked."""
        return self.coverage.get((type_id, predicate), 0.0)


class KGProfiler:
    """Coverage/freshness profiler over a store + ontology."""

    def __init__(
        self,
        store: TripleStore,
        ontology: Ontology,
        now: float,
        staleness_horizon_seconds: float = 2 * 365.25 * 24 * 3600,
    ) -> None:
        self.store = store
        self.ontology = ontology
        self.now = now
        self.staleness_horizon = staleness_horizon_seconds

    def profile(self) -> ProfileReport:
        """Full profiling pass: coverage fractions, gaps, stale facts."""
        present_counts: dict[tuple[str, str], int] = {}
        type_totals: dict[str, int] = {}
        gaps: list[CoverageGap] = []
        stale: list[StaleFact] = []

        for record in self.store.entities():
            expected: set[str] = set()
            for type_id in record.types:
                if self.ontology.has_type(type_id):
                    expected |= self.ontology.expected_predicates(type_id)
                    type_totals[type_id] = type_totals.get(type_id, 0) + 1
            if not expected and not record.types:
                continue
            # Index-level predicate lookup: O(distinct predicates) per
            # entity instead of materialising every fact object.
            present = self.store.predicates_of(record.entity)
            for type_id in record.types:
                if not self.ontology.has_type(type_id):
                    continue
                for predicate in self.ontology.expected_predicates(type_id):
                    if predicate in present:
                        key = (type_id, predicate)
                        present_counts[key] = present_counts.get(key, 0) + 1
            for predicate in sorted(expected - present):
                gaps.append(
                    CoverageGap(
                        entity=record.entity,
                        predicate=predicate,
                        importance=record.popularity,
                    )
                )
            stale.extend(self._stale_facts_of(record.entity, record.popularity, present))

        coverage = {
            (type_id, predicate): count / type_totals[type_id]
            for (type_id, predicate), count in present_counts.items()
            if type_totals.get(type_id)
        }
        gaps.sort(key=lambda gap: (-gap.importance, gap.key))
        stale.sort(key=lambda fact: (-fact.importance, fact.entity, fact.predicate))
        return ProfileReport(
            entity_count=len(type_totals and self.store.entity_ids()),
            coverage=coverage,
            gaps=gaps,
            stale=stale,
        )

    def _stale_facts_of(
        self, entity: str, importance: float, present: set[str]
    ) -> list[StaleFact]:
        volatile = self.ontology.volatile_predicates()
        found: list[StaleFact] = []
        for predicate in sorted(volatile & present):
            for fact in self.store.scan(subject=entity, predicate=predicate):
                age = self.now - fact.updated_at
                if age > self.staleness_horizon:
                    found.append(
                        StaleFact(
                            entity=entity,
                            predicate=predicate,
                            obj=fact.obj,
                            age_seconds=age,
                            importance=importance,
                        )
                    )
        return found

    def top_gaps(self, limit: int) -> list[CoverageGap]:
        """The ``limit`` most important coverage gaps."""
        return self.profile().gaps[:limit]
