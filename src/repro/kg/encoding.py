"""Dictionary encoding: string node ids -> dense int32 ids.

The physical layer under the graph engine (Saga-style "columnar, not
object-per-edge"): every node string (entity ids, plus literal renderings
that appear in object position) is interned once into a dense id space so
adjacency can live in flat numpy arrays instead of dict-of-set objects.

The dictionary is append-only and bidirectional: ids are assigned in
insertion order, never reused, and both directions are O(1).  Snapshots
(:mod:`repro.kg.adjacency`) embed the dictionary they were built with, so a
decoded result is always consistent with the encoding that produced it.
"""

from __future__ import annotations

from collections.abc import Iterable

import numpy as np

from repro.common.errors import StoreError
from repro.common.snapshot_io import pack_strings, unpack_strings

MAX_ID = 2**31 - 1  # ids must fit int32 (CSR ``indices`` dtype)


class Dictionary:
    """Append-only bidirectional string <-> int32 interner."""

    __slots__ = ("_id_of", "_strings")

    def __init__(self, strings: Iterable[str] = ()) -> None:
        self._id_of: dict[str, int] = {}
        self._strings: list[str] = []
        for string in strings:
            self.intern(string)

    def intern(self, string: str) -> int:
        """Id of ``string``, assigning the next dense id on first sight."""
        node_id = self._id_of.get(string)
        if node_id is None:
            node_id = len(self._strings)
            if node_id > MAX_ID:
                raise StoreError("dictionary exceeds int32 id space")
            self._id_of[string] = node_id
            self._strings.append(string)
        return node_id

    def get(self, string: str) -> int | None:
        """Id of ``string``, or ``None`` when never interned."""
        return self._id_of.get(string)

    def id_of(self, string: str) -> int:
        """Id of ``string`` (raises for unknown strings)."""
        try:
            return self._id_of[string]
        except KeyError:
            raise StoreError(f"string not in dictionary: {string!r}") from None

    def string_of(self, node_id: int) -> str:
        """String interned as ``node_id`` (raises for out-of-range ids)."""
        if 0 <= node_id < len(self._strings):
            return self._strings[node_id]
        raise StoreError(f"id not in dictionary: {node_id!r}")

    def encode_many(self, strings: Iterable[str]) -> list[int]:
        """Ids of already-interned ``strings`` (raises on unknowns)."""
        id_of = self._id_of
        try:
            return [id_of[string] for string in strings]
        except KeyError as exc:
            raise StoreError(f"string not in dictionary: {exc.args[0]!r}") from None

    def decode_many(self, node_ids: Iterable[int]) -> list[str]:
        """Strings for ``node_ids`` (raises on out-of-range ids)."""
        return [self.string_of(node_id) for node_id in node_ids]

    def strings(self) -> list[str]:
        """All interned strings, id order (a copy)."""
        return list(self._strings)

    def to_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """(blob, offsets) flat-array form for snapshot persistence."""
        return pack_strings(self._strings)

    @classmethod
    def from_arrays(cls, blob: np.ndarray, offsets: np.ndarray) -> "Dictionary":
        """Rebuild from :meth:`to_arrays` output (ids preserved exactly).

        The string list and reverse map are materialised eagerly — both
        are O(n) dict/list work, orders of magnitude cheaper than the
        store scan a fresh build pays — and the dictionary stays
        append-only afterwards: interning a new string after a load
        assigns the next dense id exactly as a built dictionary would.
        """
        dictionary = cls()
        strings = unpack_strings(blob, offsets)
        if len(strings) > MAX_ID:
            raise StoreError("dictionary exceeds int32 id space")
        dictionary._strings = strings
        dictionary._id_of = {string: i for i, string in enumerate(strings)}
        if len(dictionary._id_of) != len(strings):
            raise StoreError("corrupt dictionary snapshot: duplicate strings")
        return dictionary

    def _strings_view(self) -> list[str]:
        """Internal zero-copy view for hot paths; callers must not mutate."""
        return self._strings

    def __contains__(self, string: str) -> bool:
        return string in self._id_of

    def __len__(self) -> int:
        return len(self._strings)
