"""Ontology: the type hierarchy and predicate schemas of the KG.

Saga integrates data under a unified ontology.  We model:

* a **type hierarchy** (``type:basketball_player`` is-a ``type:athlete``
  is-a ``type:person``),
* **predicate schemas** — domain/range constraints, whether the predicate is
  functional (at most one value, e.g. date of birth) or multi-valued (e.g.
  occupation), whether it is *volatile* (value changes over time — net
  worth, marital status — driving ODKE staleness checks), and whether its
  range is numeric/identifier-like (driving embedding-view filtering, §2).

The ontology also records, per type, which predicates are *expected*; KG
profiling (§4) uses expectations to find coverage gaps.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.common import ids
from repro.common.errors import OntologyError
from repro.kg.triple import LiteralType


@dataclass(frozen=True)
class PredicateSchema:
    """Schema of one predicate.

    ``range_type`` is an entity type id for entity-valued predicates and
    ``None`` for literal-valued ones (whose datatype is ``literal_type``).
    """

    predicate: str
    domain: str
    range_type: str | None = None
    literal_type: LiteralType | None = None
    functional: bool = False
    volatile: bool = False
    expected: bool = False

    def __post_init__(self) -> None:
        if not ids.is_predicate(self.predicate):
            raise OntologyError(f"not a predicate id: {self.predicate!r}")
        if not ids.is_type(self.domain):
            raise OntologyError(f"domain must be a type id: {self.domain!r}")
        if (self.range_type is None) == (self.literal_type is None):
            raise OntologyError(
                f"predicate {self.predicate} must have exactly one of "
                "range_type / literal_type"
            )
        if self.range_type is not None and not ids.is_type(self.range_type):
            raise OntologyError(f"range must be a type id: {self.range_type!r}")

    @property
    def is_literal(self) -> bool:
        """True when the predicate's range is a literal datatype."""
        return self.literal_type is not None

    @property
    def is_numeric(self) -> bool:
        """True for number-ranged predicates (embedding-filter targets)."""
        return self.literal_type is LiteralType.NUMBER

    @property
    def is_identifier(self) -> bool:
        """True for external-identifier predicates (e.g. library ids)."""
        return self.literal_type is LiteralType.IDENTIFIER


class Ontology:
    """Mutable registry of types and predicate schemas."""

    def __init__(self) -> None:
        self._parents: dict[str, str | None] = {}
        self._schemas: dict[str, PredicateSchema] = {}

    # -- types ------------------------------------------------------------

    def add_type(self, type_id: str, parent: str | None = None) -> None:
        """Register ``type_id`` with an optional parent type."""
        if not ids.is_type(type_id):
            raise OntologyError(f"not a type id: {type_id!r}")
        if parent is not None and parent not in self._parents:
            raise OntologyError(f"parent type {parent!r} not registered")
        if type_id in self._parents:
            raise OntologyError(f"type {type_id!r} already registered")
        self._parents[type_id] = parent

    def has_type(self, type_id: str) -> bool:
        """True if ``type_id`` is registered."""
        return type_id in self._parents

    def types(self) -> list[str]:
        """All registered type ids."""
        return list(self._parents)

    def parent(self, type_id: str) -> str | None:
        """Direct parent of ``type_id`` (``None`` for roots)."""
        self._require_type(type_id)
        return self._parents[type_id]

    def ancestors(self, type_id: str) -> list[str]:
        """Ancestors of ``type_id`` from direct parent to root (exclusive)."""
        self._require_type(type_id)
        chain: list[str] = []
        current = self._parents[type_id]
        while current is not None:
            chain.append(current)
            current = self._parents[current]
        return chain

    def is_subtype(self, type_id: str, ancestor: str) -> bool:
        """True when ``type_id`` equals or descends from ``ancestor``."""
        return type_id == ancestor or ancestor in self.ancestors(type_id)

    def descendants(self, type_id: str) -> list[str]:
        """All registered types that are (transitively) under ``type_id``."""
        self._require_type(type_id)
        return [
            candidate
            for candidate in self._parents
            if candidate != type_id and self.is_subtype(candidate, type_id)
        ]

    # -- predicates ---------------------------------------------------------

    def add_predicate(self, schema: PredicateSchema) -> None:
        """Register a predicate schema (domain/range types must exist)."""
        if schema.predicate in self._schemas:
            raise OntologyError(f"predicate {schema.predicate!r} already registered")
        self._require_type(schema.domain)
        if schema.range_type is not None:
            self._require_type(schema.range_type)
        self._schemas[schema.predicate] = schema

    def has_predicate(self, predicate: str) -> bool:
        """True if ``predicate`` has a registered schema."""
        return predicate in self._schemas

    def schema(self, predicate: str) -> PredicateSchema:
        """Schema of ``predicate`` (raises for unknown predicates)."""
        try:
            return self._schemas[predicate]
        except KeyError:
            raise OntologyError(f"unknown predicate {predicate!r}") from None

    def predicates(self) -> list[str]:
        """All registered predicate ids."""
        return list(self._schemas)

    def literal_predicates(self) -> set[str]:
        """Predicates whose range is a literal datatype."""
        return {p for p, s in self._schemas.items() if s.is_literal}

    def numeric_predicates(self) -> set[str]:
        """Predicates whose range is numeric (filter targets, §2)."""
        return {p for p, s in self._schemas.items() if s.is_numeric}

    def identifier_predicates(self) -> set[str]:
        """External-identifier predicates (filter targets, §2)."""
        return {p for p, s in self._schemas.items() if s.is_identifier}

    def volatile_predicates(self) -> set[str]:
        """Predicates whose values drift over time (staleness targets, §4)."""
        return {p for p, s in self._schemas.items() if s.volatile}

    def expected_predicates(self, type_id: str) -> set[str]:
        """Predicates profiling expects on entities of ``type_id``.

        Includes expectations declared on any ancestor type, so a
        ``basketball_player`` inherits ``date_of_birth`` expected on
        ``person``.
        """
        self._require_type(type_id)
        lineage = [type_id, *self.ancestors(type_id)]
        return {
            schema.predicate
            for schema in self._schemas.values()
            if schema.expected and schema.domain in lineage
        }

    def predicates_for_domain(self, type_id: str) -> set[str]:
        """All predicates whose domain covers ``type_id`` (via inheritance)."""
        self._require_type(type_id)
        lineage = set([type_id, *self.ancestors(type_id)])
        return {
            schema.predicate
            for schema in self._schemas.values()
            if schema.domain in lineage
        }

    # -- internals ----------------------------------------------------------

    def _require_type(self, type_id: str) -> None:
        if type_id not in self._parents:
            raise OntologyError(f"unknown type {type_id!r}")
