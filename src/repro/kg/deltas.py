"""Version-chained delta bundles: grow a served KG without full re-saves.

The paper's construction tier streams corroborated facts continuously while
the serving tier keeps answering (§2, §4: "continuous construction and
serving of knowledge at scale").  Before this module, every mutation implied
a full CSR/context/alias rebuild plus a full bundle re-save — O(graph) work
per generation.  A *delta chain* makes generations O(change):

* the **base** is an ordinary :func:`~repro.kg.persistence.save_snapshot`
  bundle (unchanged layout);
* each **delta** is a small overlay directory holding only what moved since
  the parent generation: the appended dictionary suffix, the changed CSR
  rows (re-encoded and re-sorted), the changed/new context rows, alias-key
  updates, plus the logical fact/entity records and removals;
* ``chain.json`` at the bundle root links base → delta → delta by
  ``store_version`` (each entry records its ``parent_version``), and is the
  *only* file rewritten in place — atomically, via ``os.replace`` — so a
  crash mid-publish leaves the previous generation fully intact and a
  reader can never observe a half-applied generation.

Readers (:func:`load_chain_snapshot`, called through
``persistence.load_snapshot``) merge the chain back into ordinary layer
objects: :class:`DeltaOverlay` splices changed CSR rows over the base with
O(changed rows) Python work, context rows overwrite/append into one matrix,
and alias updates apply key-by-key onto the base state.  Every merged layer
is stamped at the *tip* store version, so the adopt-or-rebuild contract of
``AdjacencyIndex``/``EntityContextIndex``/``AliasTable`` is unchanged — a
layer that cannot be merged (stale delta manifest, incompatible marshal) is
dropped and its consumer silently rebuilds from the replayed store, while
corruption (bad checksums, a chain referencing a missing delta, broken
version linkage) raises :class:`StoreError`.

Chains cannot grow forever: :meth:`GenerationPublisher.compact` folds the
whole chain into a fresh base under ``bases/base-<version>/`` (never
overwriting the old base in place — live readers may still be mmapping it)
and resets the chain, amortising the O(graph) rebuild over
``compact_every`` cheap generations.

Id-space invariant the whole design rests on: the dictionary is append-only
(:class:`~repro.kg.encoding.Dictionary`), so an id assigned at any
generation means the same string at every later generation — delta CSR rows
written at generation k splice verbatim into the merged id space at
generation k+n.
"""

from __future__ import annotations

import json
import os
import shutil
import threading
import time
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any, Iterable

import numpy as np

from repro.common import tracing
from repro.common.errors import StoreError
from repro.common.logging import get_logger
from repro.common.serialization import read_jsonl, write_jsonl
from repro.common.snapshot_io import (
    FORMAT_VERSION,
    MANIFEST_NAME,
    SnapshotStaleError,
    load_arrays,
    pack_strings,
    read_manifest,
    unpack_strings,
    write_arrays,
)
from repro.common.text import normalize_name
from repro.kg.adjacency import CSRAdjacency, build_csr
from repro.kg.encoding import Dictionary
from repro.kg.persistence import (
    SNAPSHOT_MANIFEST,
    KGSnapshot,
    SnapshotStore,
    save_snapshot,
)
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import Fact, ObjectKind

if TYPE_CHECKING:
    from repro.common.metrics import MetricsRegistry

CHAIN_NAME = "chain.json"
DELTAS_DIR = "deltas"
BASES_DIR = "bases"
DELTA_KIND = "delta"

_log = get_logger("kg.deltas")

# Fault-injection sites (consulted through repro.serving.faults when armed).
# The ordering of the two publish-side hooks is the crash-safety contract:
# a crash at SITE_PUBLISH_DELTA loses only a temp directory; a crash at
# SITE_PUBLISH_CHAIN leaves a complete-but-unreferenced delta directory —
# either way chain.json still points at the previous generation.
SITE_PUBLISH_DELTA = "publisher.delta"
SITE_PUBLISH_CHAIN = "publisher.chain"
SITE_COMPACT = "publisher.compact"


def _fault_point(site: str) -> None:
    # Lazy import: kg must not depend on the serving package at import time.
    from repro.serving.faults import fault_point

    fault_point(site)


# -- chain manifest -----------------------------------------------------------


def read_chain(bundle_dir: str | Path) -> dict[str, Any] | None:
    """The parsed, linkage-validated ``chain.json``, or ``None`` if absent.

    Raises :class:`StoreError` for unparseable JSON, unsupported format,
    escaped paths, or broken ``parent_version`` linkage — a chain that
    references generations that cannot follow each other is corruption,
    never silently truncated.
    """
    path = Path(bundle_dir) / CHAIN_NAME
    if not path.exists():
        return None
    try:
        chain = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreError(f"corrupt chain manifest {path}: {exc}") from None
    if chain.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported chain format {chain.get('format_version')!r} in "
            f"{path} (supported: {FORMAT_VERSION})"
        )
    base = chain.get("base")
    if base != "." and not (
        isinstance(base, str) and base.startswith(f"{BASES_DIR}/")
    ):
        raise StoreError(f"chain manifest {path} has invalid base {base!r}")
    previous = chain.get("base_version")
    if not isinstance(previous, int):
        raise StoreError(f"chain manifest {path} missing base_version")
    for info in chain.get("deltas", ()):
        rel = info.get("dir", "")
        if not rel.startswith(f"{DELTAS_DIR}/") or ".." in rel:
            raise StoreError(f"chain manifest {path} has invalid delta dir {rel!r}")
        if info.get("parent_version") != previous:
            raise StoreError(
                f"broken chain linkage in {path}: delta {rel} claims parent "
                f"{info.get('parent_version')!r}, previous generation is {previous}"
            )
        previous = info.get("store_version")
        if not isinstance(previous, int):
            raise StoreError(f"chain manifest {path}: delta {rel} has no store_version")
    return chain


def write_chain(bundle_dir: str | Path, chain: dict[str, Any]) -> None:
    """Atomically publish ``chain.json`` (write temp file + ``os.replace``)."""
    bundle_dir = Path(bundle_dir)
    path = bundle_dir / CHAIN_NAME
    tmp = bundle_dir / (CHAIN_NAME + ".tmp")
    tmp.write_text(json.dumps(chain, indent=2, sort_keys=True), encoding="utf-8")
    os.replace(tmp, path)


def chain_tip_version(chain: dict[str, Any]) -> int:
    """The store version of the newest generation the chain references."""
    deltas = chain.get("deltas", ())
    if deltas:
        return int(deltas[-1]["store_version"])
    return int(chain["base_version"])


def published_version(bundle_dir: str | Path) -> int | None:
    """The bundle's newest published ``store_version`` (chain tip), if any.

    Cheap enough to poll: one small JSON read.  Falls back to the plain
    ``snapshot.json`` for pre-chain bundles; ``None`` when the directory
    holds neither.
    """
    bundle_dir = Path(bundle_dir)
    chain = read_chain(bundle_dir)
    if chain is not None:
        return chain_tip_version(chain)
    manifest_path = bundle_dir / SNAPSHOT_MANIFEST
    if manifest_path.exists():
        return int(json.loads(manifest_path.read_text(encoding="utf-8"))["store_version"])
    return None


# -- one delta's payload ------------------------------------------------------


@dataclass
class DeltaPayload:
    """One generation's overlay, loaded from a ``deltas/delta-NNNNNN`` dir.

    ``changed_nodes`` ids (and the row contents) live in the *merged*
    dictionary space of this generation — base ids plus every previous
    delta's appended strings plus ``new_strings``.  Append-only ids make
    those references stable at every later generation.
    """

    directory: Path
    seq: int
    store_version: int
    parent_version: int
    new_strings: list[str]
    changed_nodes: np.ndarray  # int64, merged-space ids
    row_offsets: np.ndarray  # int64, len(changed_nodes) + 1
    row_indices: np.ndarray  # int32, replacement rows, string-sorted
    changed_degrees: np.ndarray  # int64, per changed node
    ctx_entities: list[str]
    ctx_matrix: np.ndarray  # float64 (len(ctx_entities), dim)
    alias_updates: dict[str, Any]
    predicate_counts: dict[str, int]
    removed: list[tuple[str, str, str]]
    extra: dict[str, Any]

    def changed_rows(self) -> dict[int, np.ndarray]:
        """``node id -> replacement neighbor row`` for this generation."""
        offsets = self.row_offsets
        return {
            int(node): self.row_indices[offsets[i] : offsets[i + 1]]
            for i, node in enumerate(self.changed_nodes.tolist())
        }


def save_delta(
    directory: str | Path,
    *,
    seq: int,
    store_version: int,
    parent_version: int,
    new_strings: list[str],
    changed_nodes: list[int],
    changed_rows: list[np.ndarray],
    changed_degrees: list[int],
    ctx_entities: list[str],
    ctx_matrix: np.ndarray,
    alias_updates: dict[str, Any],
    predicate_counts: dict[str, int],
    facts: list[Fact],
    entities: list[EntityRecord],
    removed: list[tuple[str, str, str]],
    dim: int,
    neighbor_limit: int,
) -> dict[str, Any]:
    """Write one delta directory (arrays + manifest + fact/entity logs)."""
    directory = Path(directory)
    write_jsonl(directory / "facts.jsonl", facts)
    write_jsonl(directory / "entities.jsonl", entities)
    new_blob, new_offsets = pack_strings(new_strings)
    ctx_blob, ctx_offsets = pack_strings(ctx_entities)
    row_offsets = np.zeros(len(changed_rows) + 1, dtype=np.int64)
    if changed_rows:
        np.cumsum([len(row) for row in changed_rows], out=row_offsets[1:])
    row_indices = (
        np.concatenate(changed_rows).astype(np.int32)
        if changed_rows
        else np.empty(0, dtype=np.int32)
    )
    return write_arrays(
        directory,
        {
            "new_blob": new_blob,
            "new_offsets": new_offsets,
            "changed_nodes": np.asarray(changed_nodes, dtype=np.int64),
            "row_offsets": row_offsets,
            "row_indices": row_indices,
            "changed_degrees": np.asarray(changed_degrees, dtype=np.int64),
            "ctx_matrix": np.ascontiguousarray(ctx_matrix, dtype=np.float64),
            "ctx_blob": ctx_blob,
            "ctx_offsets": ctx_offsets,
        },
        kind=DELTA_KIND,
        store_version=store_version,
        extra={
            "seq": seq,
            "parent_version": parent_version,
            "predicate_counts": predicate_counts,
            "alias": alias_updates,
            "removed": [list(key) for key in removed],
            "dim": dim,
            "neighbor_limit": neighbor_limit,
            "counts": {
                "facts": len(facts),
                "entities": len(entities),
                "removed": len(removed),
                "changed_nodes": len(changed_nodes),
                "ctx_rows": len(ctx_entities),
                "new_strings": len(new_strings),
            },
        },
    )


def load_delta(
    directory: str | Path,
    *,
    expected_store_version: int | None = None,
    mmap: bool = True,
    verify: bool = True,
) -> DeltaPayload:
    """Load one delta directory written by :func:`save_delta`.

    Raises :class:`StoreError` on corruption and
    :class:`SnapshotStaleError` when the manifest's ``store_version``
    disagrees with ``expected_store_version`` (the chain's record) —
    callers drop the physical overlay and rebuild layers from the store.
    """
    manifest, arrays = load_arrays(
        directory,
        kind=DELTA_KIND,
        expected_store_version=expected_store_version,
        mmap=mmap,
        verify=verify,
    )
    extra = manifest.get("extra", {})
    ctx_matrix = arrays["ctx_matrix"]
    ctx_entities = unpack_strings(arrays["ctx_blob"], arrays["ctx_offsets"])
    if ctx_matrix.shape[0] != len(ctx_entities):
        raise StoreError(
            f"corrupt delta {directory}: {ctx_matrix.shape[0]} context rows "
            f"for {len(ctx_entities)} entities"
        )
    changed_nodes = arrays["changed_nodes"]
    if len(arrays["row_offsets"]) != len(changed_nodes) + 1 or len(
        arrays["changed_degrees"]
    ) != len(changed_nodes):
        raise StoreError(f"corrupt delta {directory}: row arrays do not line up")
    return DeltaPayload(
        directory=Path(directory),
        seq=int(extra.get("seq", 0)),
        store_version=int(manifest["store_version"]),
        parent_version=int(extra.get("parent_version", -1)),
        new_strings=unpack_strings(arrays["new_blob"], arrays["new_offsets"]),
        changed_nodes=changed_nodes,
        row_offsets=arrays["row_offsets"],
        row_indices=arrays["row_indices"],
        changed_degrees=arrays["changed_degrees"],
        ctx_entities=ctx_entities,
        ctx_matrix=ctx_matrix,
        alias_updates=extra.get("alias", {}),
        predicate_counts=dict(extra.get("predicate_counts", {})),
        removed=[tuple(key) for key in extra.get("removed", ())],
        extra=extra,
    )


# -- read-time merging --------------------------------------------------------


class DeltaOverlay:
    """A merged read view of a base CSR plus an ordered delta chain.

    Spot reads (:meth:`neighbors`, :meth:`degree`) consult the newest
    delta first and fall through to the base; :meth:`collapse` splices the
    chain into one ordinary :class:`CSRAdjacency` stamped at the tip
    version — O(changed rows) Python work plus array copies — which is
    what serving adopts (every downstream cache keys off one snapshot
    object).
    """

    def __init__(self, base: CSRAdjacency, deltas: list[DeltaPayload]) -> None:
        previous = base.built_version
        for payload in deltas:
            if payload.parent_version != previous:
                raise StoreError(
                    f"delta {payload.directory} built on parent "
                    f"{payload.parent_version}, previous generation is {previous}"
                )
            previous = payload.store_version
        self.base = base
        self.deltas = list(deltas)
        # Append-only id space: new strings extend the base dictionary in
        # chain order.  The base dictionary itself is shared and never
        # mutated here.
        self._extra_strings: list[str] = []
        self._extra_id_of: dict[str, int] = {}
        base_n = base.num_nodes
        for payload in self.deltas:
            for string in payload.new_strings:
                self._extra_id_of[string] = base_n + len(self._extra_strings)
                self._extra_strings.append(string)
        self._changed: dict[int, np.ndarray] = {}
        self._degrees: dict[int, int] = {}
        for payload in self.deltas:
            self._changed.update(payload.changed_rows())
            for node, degree in zip(
                payload.changed_nodes.tolist(), payload.changed_degrees.tolist()
            ):
                self._degrees[int(node)] = int(degree)

    @property
    def tip_version(self) -> int:
        return self.deltas[-1].store_version if self.deltas else self.base.built_version

    @property
    def num_nodes(self) -> int:
        return self.base.num_nodes + len(self._extra_strings)

    def _id_of(self, node: str) -> int | None:
        node_id = self.base.dictionary.get(node)
        if node_id is None:
            node_id = self._extra_id_of.get(node)
        return node_id

    def _string_of(self, node_id: int) -> str:
        base_n = self.base.num_nodes
        if node_id < base_n:
            return self.base.dictionary.string_of(node_id)
        return self._extra_strings[node_id - base_n]

    def neighbors(self, node: str) -> set[str]:
        """Decoded neighbor set of ``node`` at the tip generation."""
        node_id = self._id_of(node)
        if node_id is None:
            return set()
        row = self._changed.get(node_id)
        if row is None:
            if node_id >= self.base.num_nodes:
                return set()
            row = self.base.neighbors_of(node_id)
        return {self._string_of(int(i)) for i in np.asarray(row).tolist()}

    def degree(self, node: str) -> int:
        """Distinct-neighbor degree of ``node`` at the tip generation."""
        node_id = self._id_of(node)
        if node_id is None:
            return 0
        row = self._changed.get(node_id)
        if row is not None:
            return len(row)
        if node_id >= self.base.num_nodes:
            return 0
        return int(self.base.indptr[node_id + 1] - self.base.indptr[node_id])

    def collapse(self) -> CSRAdjacency:
        """One merged :class:`CSRAdjacency` at the tip version.

        The splice is O(changed) Python pieces: unchanged base rows copy
        wholesale as contiguous segments between changed rows, changed and
        new rows drop into their slots, and ``indptr`` is one cumsum.
        """
        base = self.base
        if not self.deltas:
            return base
        base_n = base.num_nodes
        total_n = base_n + len(self._extra_strings)
        if self._changed and max(self._changed) >= total_n:
            raise StoreError(
                f"corrupt delta chain: changed node id {max(self._changed)} "
                f"outside merged dictionary of {total_n} nodes"
            )
        dictionary = Dictionary(base.dictionary._strings_view())
        for string in self._extra_strings:
            dictionary.intern(string)
        if len(dictionary) != total_n:
            raise StoreError("corrupt delta chain: duplicate appended strings")

        lengths = np.zeros(total_n, dtype=np.int64)
        lengths[:base_n] = np.diff(base.indptr)
        for node, row in self._changed.items():
            lengths[node] = len(row)
        indptr = np.zeros(total_n + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])

        pieces: list[np.ndarray] = []
        cursor = 0
        for node in sorted(n for n in self._changed if n < base_n):
            pieces.append(base.indices[base.indptr[cursor] : base.indptr[node]])
            pieces.append(self._changed[node])
            cursor = node + 1
        pieces.append(base.indices[base.indptr[cursor] :])
        # Rows past the base are either changed (spliced here, ascending id
        # order matches the indptr layout) or empty.
        for node in sorted(n for n in self._changed if n >= base_n):
            pieces.append(self._changed[node])
        indices = (
            np.concatenate(pieces).astype(np.int32)
            if pieces
            else np.empty(0, dtype=np.int32)
        )
        if len(indices) != indptr[-1]:
            raise StoreError("corrupt delta chain: spliced rows do not fill indptr")
        if indices.size and int(indices.max()) >= total_n:
            raise StoreError("corrupt delta chain: row references unknown node id")

        degrees = np.zeros(total_n, dtype=np.int64)
        degrees[:base_n] = base.entity_edge_degrees
        for node, degree in self._degrees.items():
            degrees[node] = degree
        return CSRAdjacency(
            dictionary=dictionary,
            indptr=indptr,
            indices=indices,
            entity_edge_degrees=degrees,
            predicate_counts=dict(self.deltas[-1].predicate_counts),
            built_version=self.tip_version,
        )


def merge_context(
    base_context: tuple | None, deltas: list[DeltaPayload]
) -> tuple | None:
    """Merge delta context rows over the base matrix; stamped at the tip.

    Returns a ``(matrix, entities, built_version, extra)`` tuple shaped
    like :func:`~repro.annotation.context_encoder.load_context_arrays`
    output, or ``None`` when the base layer is absent (consumer rebuilds).
    Existing entities' rows are overwritten in place; new entities append
    in chain order (matching the store's entity insertion order).
    """
    if base_context is None or not deltas:
        return base_context
    base_matrix, base_entities, _version, extra = base_context
    dim = base_matrix.shape[1] if base_matrix.size else int(extra.get("dim", 0))
    for payload in deltas:
        if payload.ctx_matrix.size and payload.ctx_matrix.shape[1] != dim:
            raise StoreError(
                f"delta {payload.directory} context dim "
                f"{payload.ctx_matrix.shape[1]} != base dim {dim}"
            )
    row_of: dict[str, int] = {entity: row for row, entity in enumerate(base_entities)}
    entities = list(base_entities)
    for payload in deltas:
        for entity in payload.ctx_entities:
            if entity not in row_of:
                row_of[entity] = len(entities)
                entities.append(entity)
    merged = np.empty((len(entities), dim), dtype=np.float64)
    merged[: len(base_entities)] = base_matrix
    for payload in deltas:
        if payload.ctx_entities:
            rows = np.array(
                [row_of[entity] for entity in payload.ctx_entities], dtype=np.intp
            )
            merged[rows] = payload.ctx_matrix
    tip = deltas[-1].store_version
    return merged, entities, tip, dict(extra)


def merge_alias(base_alias: tuple | None, deltas: list[DeltaPayload]) -> tuple | None:
    """Apply each delta's alias-key updates over the base state; tip-stamped.

    Returns a ``(state, built_version, extra)`` tuple shaped like
    :func:`~repro.annotation.alias_table.load_alias_state` output, or
    ``None`` when the base layer is absent.
    """
    if base_alias is None or not deltas:
        return base_alias
    from repro.annotation.alias_table import apply_alias_updates

    state, _version, extra = base_alias
    for payload in deltas:
        state = apply_alias_updates(state, payload.alias_updates)
    return state, deltas[-1].store_version, dict(extra)


# -- chain-aware logical store ------------------------------------------------


class ChainSnapshotStore(SnapshotStore):
    """A :class:`SnapshotStore` that replays base + delta logs lazily.

    Delta entity records load eagerly alongside the base's (the serving
    paths need descriptors immediately); the fact replay applies, per
    generation, the recorded removals first and then the end-state facts.
    Re-recorded existing keys *replace* in place — a delta fact is the
    store's exact end state at publish time, so merging metadata with the
    superseded fact (as a plain upsert would) could resurrect a deleted
    fact's confidence or provenance.  In-place replacement also preserves
    scan order for add-and-update workloads, keeping chain-loaded stores
    byte-compatible with a store that applied the same operations live.
    """

    def __init__(
        self,
        base_dir: str | Path,
        *,
        parts: list[tuple[Path, list[tuple[str, str, str]]]],
        name: str = "kg",
        pinned_version: int = 0,
        defer_facts: bool = True,
    ) -> None:
        self._chain_parts = list(parts)
        super().__init__(
            base_dir, name=name, pinned_version=pinned_version, defer_facts=True
        )
        for directory, _removed in self._chain_parts:
            path = directory / "entities.jsonl"
            if path.exists():
                for record in read_jsonl(path, EntityRecord.from_dict):
                    self._entities[record.entity] = record
        if not defer_facts:
            self._ensure_facts()
        self.version = pinned_version

    def _ensure_facts(self) -> None:
        if self._facts_loaded:
            return
        with self._replay_lock:
            if self._facts_loaded:
                return
            pinned = self.version
            for fact in read_jsonl(self._directory / "facts.jsonl", Fact.from_dict):
                self._upsert(fact)
            for directory, removed in self._chain_parts:
                for key in removed:
                    # Unbound base call: the wrapped SnapshotStore.remove
                    # would re-enter _ensure_facts through its RLock.
                    TripleStore.remove(self, *key)
                facts_path = directory / "facts.jsonl"
                if facts_path.exists():
                    for fact in read_jsonl(facts_path, Fact.from_dict):
                        if fact.key in self._facts:
                            self._facts[fact.key] = fact
                        else:
                            self._upsert(fact)
            # Replay is a load, not a mutation (removals above bumped the
            # version); adopted tip-stamped layers must still match.
            self.version = pinned
            self._facts_loaded = True


def load_chain_snapshot(
    directory: str | Path,
    *,
    defer_facts: bool = True,
    mmap: bool = True,
    verify: bool = True,
) -> KGSnapshot:
    """Load a chained bundle: base + deltas merged into one tip snapshot.

    The returned :class:`~repro.kg.persistence.KGSnapshot` looks exactly
    like a freshly saved bundle at the tip version — workers, the serving
    service and the gateway need no chain awareness.  Per layer, the usual
    contract: mergeable layers come back tip-stamped; a stale delta
    manifest (version disagreeing with the chain's record) drops the
    physical overlays so consumers rebuild from the replayed store;
    corruption raises :class:`StoreError`.  The embeddings layer does not
    participate in deltas — it is ``None`` whenever the chain is non-empty
    (suites retrain on demand; compaction restores the persisted layer).
    """
    from repro.kg.persistence import load_plain_snapshot

    directory = Path(directory)
    chain = read_chain(directory)
    if chain is None:
        raise StoreError(f"not a chained bundle: {directory} (missing {CHAIN_NAME})")
    base_dir = directory if chain["base"] == "." else directory / chain["base"]
    if not (base_dir / SNAPSHOT_MANIFEST).exists():
        raise StoreError(f"chain base missing: {base_dir}")
    base = load_plain_snapshot(
        base_dir, defer_facts=defer_facts, mmap=mmap, verify=verify
    )
    base_version = int(chain["base_version"])
    if int(base.manifest["store_version"]) != base_version:
        raise StoreError(
            f"chain base {base_dir} at store version "
            f"{base.manifest['store_version']}, chain expects {base_version}"
        )
    if not chain["deltas"]:
        base.directory = directory
        return base

    parts: list[tuple[Path, list[tuple[str, str, str]]]] = []
    payloads: list[DeltaPayload] = []
    physical_ok = True
    for info in chain["deltas"]:
        delta_dir = directory / info["dir"]
        if not (delta_dir / MANIFEST_NAME).exists():
            raise StoreError(
                f"chain references missing delta: {delta_dir} "
                "(crash-orphaned chains never reference unwritten deltas)"
            )
        manifest = read_manifest(delta_dir, kind=DELTA_KIND)
        extra = manifest.get("extra", {})
        parts.append(
            (delta_dir, [tuple(key) for key in extra.get("removed", ())])
        )
        if physical_ok:
            try:
                payloads.append(
                    load_delta(
                        delta_dir,
                        expected_store_version=int(info["store_version"]),
                        mmap=mmap,
                        verify=verify,
                    )
                )
            except SnapshotStaleError:
                # Stale delta manifest: drop every physical overlay (the
                # chain's array view is no longer coherent) but keep the
                # logical replay — consumers rebuild silently.
                physical_ok = False
                payloads = []

    tip = chain_tip_version(chain)
    store = ChainSnapshotStore(
        base_dir,
        parts=parts,
        name=base.manifest.get("name", "kg"),
        pinned_version=tip,
        defer_facts=defer_facts,
    )
    adjacency = None
    context = None
    alias = None
    if physical_ok:
        if base.adjacency is not None:
            adjacency = DeltaOverlay(base.adjacency, payloads).collapse()
        context = merge_context(base.context, payloads)
        alias = merge_alias(base.alias, payloads)
    manifest = dict(base.manifest)
    manifest["store_version"] = tip
    manifest["chain"] = {
        "base": chain["base"],
        "base_version": base_version,
        "deltas": len(chain["deltas"]),
    }
    return KGSnapshot(
        directory=directory,
        manifest=manifest,
        store=store,
        adjacency=adjacency,
        context=context,
        alias=alias,
        embeddings=None,
    )


# -- the publisher ------------------------------------------------------------


@dataclass(frozen=True)
class GenerationInfo:
    """One published generation's coordinates."""

    seq: int
    store_version: int
    parent_version: int
    directory: Path
    chain_length: int
    compacted: bool = False


class GenerationPublisher:
    """Emits delta generations of one live store into a chained bundle.

    The construction-side half of live growth: the caller owns a
    :class:`TripleStore`, applies mutations to it (ODKE fusion, manual
    edits), tells the publisher *which* fact keys / entity ids it touched
    (:meth:`record`), and calls :meth:`publish` on its cadence.  Each
    publish reads the store's end state for every recorded key — a
    delete-then-readd sequence collapses into one recorded fact, a pure
    delete into one removal — and writes a delta that is O(touched
    neighborhood), not O(graph).

    Crash safety: the delta directory is staged under a temp name and
    renamed into place, then ``chain.json`` swaps atomically; in-memory
    publisher state commits only after both succeed, so a failed publish
    (including injected faults at :data:`SITE_PUBLISH_DELTA` /
    :data:`SITE_PUBLISH_CHAIN`) keeps the pending set intact for a clean
    retry and readers keep serving the previous generation.

    After ``compact_every`` deltas the chain folds into a fresh base under
    ``bases/base-<version>/`` — never overwriting the live base in place,
    because concurrent readers may still be mmapping its arrays.
    """

    def __init__(
        self,
        store: TripleStore,
        bundle_dir: str | Path,
        *,
        compact_every: int = 8,
        embeddings: bool = False,
        verify: bool = True,
        metrics: "MetricsRegistry | None" = None,
    ) -> None:
        self.store = store
        self.bundle_dir = Path(bundle_dir)
        self.compact_every = compact_every
        self.embeddings = embeddings
        self.verify = verify
        self.metrics = metrics
        self._lock = threading.Lock()
        self._pending_keys: dict[tuple[str, str, str], None] = {}
        self._pending_entities: dict[str, None] = {}
        # Background compaction (scheduled off the publish path): at most
        # one in-flight thread; its failure parks here and re-raises on
        # the next publish()/compact()/join_compaction() call.  A leaf
        # lock (never held while taking _lock) keeps schedule / join /
        # error-surfacing atomic against each other.
        self._compact_lock = threading.Lock()
        self._compact_thread: threading.Thread | None = None
        self._compact_error: BaseException | None = None

        chain = read_chain(self.bundle_dir)
        if chain is None and not (self.bundle_dir / SNAPSHOT_MANIFEST).exists():
            save_snapshot(self.store, self.bundle_dir, embeddings=self.embeddings)
            chain = self._fresh_chain(".", self.store.version)
            write_chain(self.bundle_dir, chain)
        elif chain is None:
            # Adopt a pre-chain bundle: make it chain-aware in place.
            manifest = json.loads(
                (self.bundle_dir / SNAPSHOT_MANIFEST).read_text(encoding="utf-8")
            )
            chain = self._fresh_chain(".", int(manifest["store_version"]))
            write_chain(self.bundle_dir, chain)
        self._chain = chain
        if chain_tip_version(chain) != self.store.version:
            raise StoreError(
                f"publisher store at version {self.store.version}, bundle "
                f"{self.bundle_dir} tip is {chain_tip_version(chain)}; "
                "load the store from the bundle (or compact) before publishing"
            )
        self._load_tip_state()

    @staticmethod
    def _fresh_chain(base: str, base_version: int) -> dict[str, Any]:
        return {
            "format_version": FORMAT_VERSION,
            "base": base,
            "base_version": base_version,
            "next_seq": 1,
            "compactions": 0,
            "deltas": [],
        }

    def _load_tip_state(self) -> None:
        """Rebuild in-memory tip state (dictionary, context recipe, alias
        bookkeeping) from the bundle; compacts first if the physical chain
        cannot be merged (e.g. an incompatible marshal sidecar)."""
        from repro.kg.persistence import load_snapshot

        snapshot = load_snapshot(self.bundle_dir, verify=self.verify)
        if snapshot.adjacency is None:
            # Unmergeable physical chain: fold to a fresh base and retry.
            self._compact_locked()
            return
        # The snapshot object is discarded after init, so taking ownership
        # of its dictionary (and interning into it later) is safe.
        self._dictionary = snapshot.adjacency.dictionary
        ctx_extra = snapshot.context[3] if snapshot.context is not None else {}
        self._ctx_dim = int(ctx_extra.get("dim", 256))
        self._ctx_neighbor_limit = int(ctx_extra.get("neighbor_limit", 16))
        self._alias_extra = snapshot.alias[2] if snapshot.alias is not None else {}
        self._reset_alias_bookkeeping()

    def _reset_alias_bookkeeping(self) -> None:
        self._entity_pos: dict[str, int] = {}
        self._surface_keys: dict[str, tuple[str, ...]] = {}
        self._key_entities: dict[str, dict[str, None]] = {}
        for position, record in enumerate(self.store.entities()):
            self._entity_pos[record.entity] = position
            keys = self._record_keys(record)
            self._surface_keys[record.entity] = keys
            for key in keys:
                self._key_entities.setdefault(key, {})[record.entity] = None

    @staticmethod
    def _record_keys(record: EntityRecord) -> tuple[str, ...]:
        keys: list[str] = []
        for surface in {record.name, *record.aliases}:
            key = normalize_name(surface)
            if key and key not in keys:
                keys.append(key)
        return tuple(keys)

    # -- recording --------------------------------------------------------

    def record(
        self,
        keys: Iterable[tuple[str, str, str]] = (),
        entities: Iterable[str] = (),
    ) -> None:
        """Note touched fact keys / entity ids since the last publish.

        Record entity ids in upsert order — new entities take their alias
        and context positions from it (matching the store's own insertion
        order).  Recording is idempotent; the end state is read at publish.
        """
        with self._lock:
            for key in keys:
                self._pending_keys[tuple(key)] = None
            for entity in entities:
                self._pending_entities[entity] = None

    def record_facts(self, keys: Iterable[tuple[str, str, str]]) -> None:
        """Convenience: :meth:`record` for fact keys only."""
        self.record(keys=keys)

    def record_entities(self, entities: Iterable[str]) -> None:
        """Convenience: :meth:`record` for entity ids only."""
        self.record(entities=entities)

    @property
    def pending(self) -> int:
        """Recorded-but-unpublished fact keys + entity ids."""
        return len(self._pending_keys) + len(self._pending_entities)

    @property
    def chain_length(self) -> int:
        """Deltas currently on the chain (0 right after a compaction)."""
        return len(self._chain["deltas"])

    @property
    def tip_version(self) -> int:
        """The newest published generation's store version."""
        return chain_tip_version(self._chain)

    # -- publishing -------------------------------------------------------

    def publish(self) -> GenerationInfo | None:
        """Write one delta generation from the pending set; maybe compact.

        Returns the new generation's :class:`GenerationInfo`, or ``None``
        when nothing changed since the last publish.  On any failure the
        pending set is preserved and the chain untouched — retryable.
        """
        self._raise_compact_error()
        with self._lock:
            with tracing.span(
                "publisher.publish", bundle=str(self.bundle_dir)
            ) as span:
                info = self._publish_locked()
                if info is not None and span.recording:
                    span.set_attribute("seq", info.seq)
                    span.set_attribute("store_version", info.store_version)
                    span.set_attribute("chain_length", info.chain_length)
                return info

    def _publish_locked(self) -> GenerationInfo | None:
        store = self.store
        version = store.version
        parent = chain_tip_version(self._chain)
        if not self._pending_keys and not self._pending_entities:
            return None
        if version == parent:
            # Recorded keys but the store never actually moved.
            self._pending_keys.clear()
            self._pending_entities.clear()
            return None
        started = time.perf_counter()
        keys = list(self._pending_keys)
        changed_entities = list(self._pending_entities)

        # -- adjacency: recompute the touched rows in the merged id space.
        affected: dict[str, None] = {}
        for entity in changed_entities:
            if entity not in self._dictionary:
                affected[entity] = None  # new catalogued entities get rows
        for subject, _predicate, obj in keys:
            affected[subject] = None
            affected[obj] = None
        new_id_of: dict[str, int] = {}
        new_strings: list[str] = []

        def node_id(string: str) -> int:
            known = self._dictionary.get(string)
            if known is not None:
                return known
            allocated = new_id_of.get(string)
            if allocated is None:
                allocated = len(self._dictionary) + len(new_strings)
                new_id_of[string] = allocated
                new_strings.append(string)
            return allocated

        for node in affected:
            node_id(node)
        changed_nodes: list[int] = []
        changed_rows: list[np.ndarray] = []
        changed_degrees: list[int] = []
        entity_kind = ObjectKind.ENTITY
        for node in affected:
            row = [node_id(n) for n in sorted(store.neighbors(node))]
            changed_nodes.append(node_id(node))
            changed_rows.append(np.asarray(row, dtype=np.int32))
            degree = sum(
                1 for fact in store.scan(subject=node) if fact.obj_kind is entity_kind
            )
            degree += sum(
                1 for fact in store.scan(obj=node) if fact.obj_kind is entity_kind
            )
            changed_degrees.append(degree)

        # -- context: entities whose _compute inputs may have moved.
        ctx_affected: dict[str, None] = {}
        for subject, _predicate, obj in keys:
            if store.has_entity(subject):
                ctx_affected[subject] = None
            if store.has_entity(obj):
                ctx_affected[obj] = None
        for entity in changed_entities:
            if store.has_entity(entity):
                ctx_affected[entity] = None
                # A record change can alter neighbours' vectors (their
                # neighbour-name tokens); conservatively recompute all.
                for neighbor in store.neighbors(entity):
                    if store.has_entity(neighbor):
                        ctx_affected[neighbor] = None
        ctx_entities = list(ctx_affected)
        ctx_matrix = self._compute_context_rows(ctx_entities)

        # -- alias: recompute every key any changed record touches.
        alias_updates, alias_commit = self._alias_updates(changed_entities)

        # -- logical end state.
        facts: list[Fact] = []
        removed: list[tuple[str, str, str]] = []
        for key in keys:
            fact = store.get(*key)
            if fact is None:
                removed.append(key)
            else:
                facts.append(fact)
        entity_records = [
            store.entity(entity)
            for entity in changed_entities
            if store.has_entity(entity)
        ]

        # -- stage, rename, swap the chain (the crash-ordering contract).
        seq = int(self._chain.get("next_seq", len(self._chain["deltas"]) + 1))
        rel_dir = f"{DELTAS_DIR}/delta-{seq:06d}"
        final_dir = self.bundle_dir / rel_dir
        staging = self.bundle_dir / DELTAS_DIR / f".tmp-delta-{seq:06d}"
        if staging.exists():
            shutil.rmtree(staging)
        if final_dir.exists():
            shutil.rmtree(final_dir)  # orphan of a crashed chain swap
        save_delta(
            staging,
            seq=seq,
            store_version=version,
            parent_version=parent,
            new_strings=new_strings,
            changed_nodes=changed_nodes,
            changed_rows=changed_rows,
            changed_degrees=changed_degrees,
            ctx_entities=ctx_entities,
            ctx_matrix=ctx_matrix,
            alias_updates=alias_updates,
            predicate_counts=store.predicate_counts(),
            facts=facts,
            entities=entity_records,
            removed=removed,
            dim=self._ctx_dim,
            neighbor_limit=self._ctx_neighbor_limit,
        )
        _fault_point(SITE_PUBLISH_DELTA)
        os.replace(staging, final_dir)
        _fault_point(SITE_PUBLISH_CHAIN)
        chain = dict(self._chain)
        chain["deltas"] = list(chain["deltas"]) + [
            {
                "dir": rel_dir,
                "seq": seq,
                "store_version": version,
                "parent_version": parent,
            }
        ]
        chain["next_seq"] = seq + 1
        write_chain(self.bundle_dir, chain)

        # -- commit in-memory tip state (only after the durable swap).
        self._chain = chain
        for string in new_strings:
            self._dictionary.intern(string)
        alias_commit()
        self._pending_keys.clear()
        self._pending_entities.clear()
        if self.metrics is not None:
            self.metrics.incr("publisher.generations")
            self.metrics.gauge("publisher.chain_length", float(self.chain_length))
            self.metrics.observe(
                "publisher.publish_s", time.perf_counter() - started
            )
        _log.info(
            "generation.published",
            bundle=str(self.bundle_dir),
            seq=seq,
            store_version=version,
            parent_version=parent,
            chain_length=self.chain_length,
            facts=len(facts),
            removed=len(removed),
        )
        compacted = False
        if self.compact_every and len(chain["deltas"]) >= self.compact_every:
            # Compaction (a full CSR rebuild + base snapshot) runs on a
            # background thread so the publish path stays ~ms: the caller
            # gets its generation back immediately and the fold happens
            # under the publisher lock as soon as this publish releases
            # it.  ``compacted`` in the returned info therefore means
            # *scheduled*; join_compaction() observes completion.
            self._schedule_compaction_locked()
            compacted = True
        return GenerationInfo(
            seq=seq,
            store_version=version,
            parent_version=parent,
            directory=final_dir,
            chain_length=self.chain_length,
            compacted=compacted,
        )

    def _compute_context_rows(self, entities: list[str]) -> np.ndarray:
        from repro.annotation.context_encoder import (
            EntityContextIndex,
            HashingContextEncoder,
        )

        if not entities:
            return np.zeros((0, self._ctx_dim), dtype=np.float64)
        index = EntityContextIndex(
            self.store,
            encoder=HashingContextEncoder(self._ctx_dim),
            neighbor_limit=self._ctx_neighbor_limit,
        )
        return np.stack([index._compute(entity) for entity in entities])

    def _alias_updates(self, changed_entities: list[str]):
        """(updates payload, commit thunk) for the changed entity records.

        Replays :meth:`AliasTable.refresh`'s accumulation exactly — per
        key, contributing records in store insertion order, each record's
        surface set in its own iteration order — so the merged state's
        floats (prior sums, tie-breaks) are bitwise identical to a full
        refresh at the tip version.
        """
        updated: dict[str, list] = {}
        added: dict[str, list] = {}
        removed: list[str] = []
        if not changed_entities:
            return {"updated": updated, "added": added, "removed": removed}, lambda: None
        store = self.store
        positions = dict(self._entity_pos)
        for entity in changed_entities:
            if entity not in positions:
                positions[entity] = len(positions)
        affected: dict[str, None] = {}
        new_keys_of: dict[str, tuple[str, ...]] = {}
        for entity in changed_entities:
            if not store.has_entity(entity):
                continue
            new_keys = self._record_keys(store.entity(entity))
            new_keys_of[entity] = new_keys
            for key in self._surface_keys.get(entity, ()):
                affected[key] = None
            for key in new_keys:
                affected[key] = None
        members: dict[str, dict[str, None]] = {
            key: dict(self._key_entities.get(key, {})) for key in affected
        }
        for entity, new_keys in new_keys_of.items():
            old_keys = set(self._surface_keys.get(entity, ()))
            for key in old_keys - set(new_keys):
                members[key].pop(entity, None)
            for key in new_keys:
                members[key][entity] = None
        for key in affected:
            contributors = sorted(members[key], key=positions.__getitem__)
            if not contributors:
                if key in self._key_entities:
                    removed.append(key)
                continue
            entries: list[tuple[str, float]] = []
            for entity in contributors:
                record = store.entity(entity)
                for surface in {record.name, *record.aliases}:
                    if normalize_name(surface) == key:
                        weight = 1.0 if surface == record.name else 0.6
                        entries.append((entity, record.popularity * weight))
            total = sum(prior for _entity, prior in entries) or 1.0
            normalized = sorted(
                ((entity, prior / total, True) for entity, prior in entries),
                key=lambda item: (-item[1], item[0]),
            )
            if key in self._key_entities:
                updated[key] = normalized
            else:
                added[key] = normalized

        def commit() -> None:
            for entity, new_keys in new_keys_of.items():
                for key in set(self._surface_keys.get(entity, ())) - set(new_keys):
                    bucket = self._key_entities.get(key)
                    if bucket is not None:
                        bucket.pop(entity, None)
                self._surface_keys[entity] = new_keys
                for key in new_keys:
                    self._key_entities.setdefault(key, {})[entity] = None
            for key in removed:
                self._key_entities.pop(key, None)
            self._entity_pos = positions

        return {"updated": updated, "added": added, "removed": removed}, commit

    # -- compaction -------------------------------------------------------

    def _raise_compact_error(self) -> None:
        """Surface a background compaction failure on the calling thread.

        Takes the parked error atomically, so exactly one of several
        racing callers raises it (the rest proceed) and a freshly parked
        error can never be dropped by a concurrent read-then-clear.
        """
        with self._compact_lock:
            error = self._compact_error
            self._compact_error = None
        if error is not None:
            raise error

    def _schedule_compaction_locked(self) -> None:
        """Start (at most one) background compaction thread.

        Called with the publisher lock held: the thread blocks on the
        lock until the scheduling publish commits, then folds the entire
        chain as it stands *then* — so a still-pending thread also covers
        any generations published in between, and re-scheduling is a
        no-op while one is in flight.
        """

        def run() -> None:
            try:
                with self._lock:
                    if not self._chain["deltas"]:
                        return  # someone compacted inline in the meantime
                    with tracing.span(
                        "publisher.compact", bundle=str(self.bundle_dir)
                    ):
                        self._compact_locked()
            except BaseException as exc:  # parked for the next caller
                with self._compact_lock:
                    self._compact_error = exc

        with self._compact_lock:
            if self._compact_thread is not None and self._compact_thread.is_alive():
                return
            thread = threading.Thread(
                target=run, name=f"compact-{self.bundle_dir.name}", daemon=True
            )
            self._compact_thread = thread
            # Started while holding the lock so a concurrent join never
            # sees (and tries to join) a not-yet-started thread.
            thread.start()
        if self.metrics is not None:
            self.metrics.incr("publisher.compactions_scheduled")

    def join_compaction(self, timeout: float | None = None) -> bool:
        """Wait for any in-flight background compaction to finish.

        Returns ``True`` once no compaction is running (including when
        none was scheduled); ``False`` if ``timeout`` elapsed first.
        Re-raises the compaction's exception, if it failed — the same
        error the next :meth:`publish`/:meth:`compact` would surface.
        """
        with self._compact_lock:
            thread = self._compact_thread
        if thread is not None:
            thread.join(timeout)
            if thread.is_alive():
                return False
            with self._compact_lock:
                # Compare-and-clear: a publish may have scheduled a fresh
                # thread since we sampled — never clobber its reference.
                if self._compact_thread is thread:
                    self._compact_thread = None
        self._raise_compact_error()
        return True

    def compact(self) -> GenerationInfo:
        """Fold the chain into a fresh base (publishes pending changes too).

        Synchronous: drains any in-flight background compaction first,
        then folds whatever remains inline on the calling thread.
        """
        self.join_compaction()
        with self._lock:
            with tracing.span(
                "publisher.compact", bundle=str(self.bundle_dir)
            ):
                return self._compact_locked()

    def _compact_locked(self) -> GenerationInfo:
        from repro.kg.graph_engine import GraphEngine

        store = self.store
        version = store.version
        started = time.perf_counter()
        base_rel = f"{BASES_DIR}/base-{version:08d}"
        base_dir = self.bundle_dir / base_rel
        csr = build_csr(store)
        engine = GraphEngine(store, csr)
        save_snapshot(store, base_dir, engine=engine, embeddings=self.embeddings)
        _fault_point(SITE_COMPACT)
        chain = self._fresh_chain(base_rel, version)
        chain["next_seq"] = int(self._chain.get("next_seq", 1))
        chain["compactions"] = int(self._chain.get("compactions", 0)) + 1
        write_chain(self.bundle_dir, chain)
        self._chain = chain
        # A compaction is also a sync point for the in-memory tip state:
        # the fresh build's dictionary replaces the chain-grown one (its
        # id order is the fresh-build order from here on).
        self._dictionary = csr.dictionary
        self._reset_alias_bookkeeping()
        self._pending_keys.clear()
        self._pending_entities.clear()
        self._prune_stale_dirs(keep=base_rel)
        if self.metrics is not None:
            self.metrics.incr("publisher.compactions")
            self.metrics.gauge("publisher.chain_length", 0.0)
            self.metrics.observe(
                "publisher.compact_s", time.perf_counter() - started
            )
        _log.info(
            "generation.compacted",
            bundle=str(self.bundle_dir),
            store_version=version,
            base=base_rel,
        )
        return GenerationInfo(
            seq=int(chain["next_seq"]) - 1,
            store_version=version,
            parent_version=version,
            directory=base_dir,
            chain_length=0,
            compacted=True,
        )

    def _prune_stale_dirs(self, keep: str) -> None:
        """Best-effort GC of staging leftovers after a compaction.

        Only ``.tmp-*`` staging directories are removed.  Superseded delta
        and base directories stay on disk: a reader that loaded the
        previous chain may still be serving mmapped arrays out of them,
        and unlinking-under-mmap semantics differ across platforms.
        Operators prune old ``bases/base-*``/``deltas/delta-*`` dirs once
        every reader has re-adopted.
        """
        staging_root = self.bundle_dir / DELTAS_DIR
        if staging_root.exists():
            for child in staging_root.iterdir():
                if child.name.startswith(".tmp-"):
                    shutil.rmtree(child, ignore_errors=True)
