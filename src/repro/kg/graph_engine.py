"""Graph Query Engine: pattern queries, traversals and candidate generation.

This is the computational layer the paper's embedding pipeline sits on
(Figure 3): it produces *filtered views* of the KG for training, *candidate
sets* of entities/triples for batch inference, and *pre-computed graph
traversals* (random walks) that power the specialized related-entities
embeddings (§2: "we use the scalable graph processing capabilities of our
graph engine to pre-compute graph traversals").

Traversals run over a dictionary-encoded CSR snapshot of the store
(:mod:`repro.kg.adjacency`), rebuilt lazily when ``TripleStore.version``
moves.  A walk step is an O(1) row slice plus one bounded RNG draw; results
are byte-identical to the historical set-based traversals (rows are
pre-sorted by neighbor string, and draws replay ``Generator.integers``
exactly via :mod:`repro.common.fastrand`).
"""

from __future__ import annotations

from collections import Counter, deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass
from itertools import chain

import numpy as np

from repro.common import fastrand
from repro.common.fastrand import MASK32, refill_halves
from repro.common.rng import substream
from repro.kg.adjacency import AdjacencyIndex, CSRAdjacency
from repro.kg.store import TripleStore
from repro.kg.triple import Fact, ObjectKind


@dataclass(frozen=True)
class TriplePattern:
    """A (s, p, o) pattern; ``None`` positions are wildcards."""

    subject: str | None = None
    predicate: str | None = None
    obj: str | None = None


FactFilter = Callable[[Fact], bool]


class GraphEngine:
    """Query/traversal operations over a :class:`TripleStore`."""

    def __init__(self, store: TripleStore, snapshot: CSRAdjacency | None = None) -> None:
        self.store = store
        self._adjacency = AdjacencyIndex(store)
        if snapshot is not None:
            self._adjacency.adopt(snapshot)

    def snapshot(self) -> CSRAdjacency:
        """The current CSR adjacency snapshot (rebuilt when the store moved)."""
        return self._adjacency.current()

    def adopt_snapshot(self, snapshot: CSRAdjacency) -> bool:
        """Adopt a pre-built (e.g. mmap-loaded) CSR snapshot; True on success.

        Only a snapshot built at the store's current version is adopted —
        anything else is ignored and traversals rebuild lazily, the
        standard adopt-or-rebuild contract.
        """
        return self._adjacency.adopt(snapshot)

    def peek_snapshot(self) -> CSRAdjacency | None:
        """The CSR snapshot only if already built and fresh (no rebuild)."""
        return self._adjacency.peek()

    # -- pattern matching -----------------------------------------------------

    def match(self, pattern: TriplePattern) -> Iterator[Fact]:
        """Facts matching ``pattern``."""
        return self.store.scan(pattern.subject, pattern.predicate, pattern.obj)

    def match_all(self, patterns: list[TriplePattern]) -> list[Fact]:
        """Union of facts matching any pattern (deduplicated, stable order)."""
        seen: dict[tuple[str, str, str], Fact] = {}
        for pattern in patterns:
            for fact in self.match(pattern):
                seen.setdefault(fact.key, fact)
        return list(seen.values())

    def filter_facts(self, keep: FactFilter) -> Iterator[Fact]:
        """All facts passing the ``keep`` filter (streaming)."""
        for fact in self.store.scan():
            if keep(fact):
                yield fact

    # -- typed lookups -------------------------------------------------------

    def entities_of_type(self, type_id: str) -> list[str]:
        """Entities whose descriptor lists ``type_id`` among its types."""
        return sorted(
            record.entity
            for record in self.store.entities()
            if type_id in record.types
        )

    def type_of(self, entity: str) -> tuple[str, ...]:
        """Declared types of ``entity`` (may be empty)."""
        if not self.store.has_entity(entity):
            return ()
        return self.store.entity(entity).types

    # -- traversals -------------------------------------------------------------

    def neighborhood(self, entity: str, hops: int = 1) -> set[str]:
        """Entities within ``hops`` undirected steps of ``entity``.

        The seed entity itself is excluded from the result.
        """
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        snapshot = self.snapshot()
        node_id = snapshot.dictionary.get(entity)
        if node_id is None:
            return set()
        # Frontier expansion via set.update over pre-sliced id rows: the
        # C-level union beats per-node Python neighbor rebuilds and, at
        # moderate frontier sizes, numpy's fixed per-hop costs too.
        id_rows = snapshot.neighbor_id_rows()
        visited = {node_id}
        frontier: tuple[int, ...] = (node_id,)
        for _ in range(hops):
            if not frontier:
                break
            expanded: set[int] = set()
            update = expanded.update
            for node in frontier:
                update(id_rows[node])
            expanded -= visited
            visited |= expanded
            frontier = tuple(expanded)
        visited.discard(node_id)
        strings = snapshot.dictionary._strings_view()
        return {strings[i] for i in visited}

    def shortest_path_length(self, source: str, target: str, cutoff: int = 6) -> int | None:
        """Unweighted shortest-path length, or ``None`` beyond ``cutoff``."""
        if source == target:
            return 0
        snapshot = self.snapshot()
        source_id = snapshot.dictionary.get(source)
        target_id = snapshot.dictionary.get(target)
        if source_id is None or target_id is None:
            return None
        indptr, indices, _, _ = snapshot.lists()
        queue: deque[tuple[int, int]] = deque([(source_id, 0)])
        seen = {source_id}
        while queue:
            node, depth = queue.popleft()
            if depth >= cutoff:
                continue
            for neighbor in indices[indptr[node] : indptr[node + 1]]:
                if neighbor == target_id:
                    return depth + 1
                if neighbor not in seen:
                    seen.add(neighbor)
                    queue.append((neighbor, depth + 1))
        return None

    def random_walks_ids(
        self,
        entities: list[str],
        walk_length: int = 8,
        walks_per_entity: int = 4,
        seed: int = 0,
    ) -> tuple[list[list[int]], CSRAdjacency]:
        """Random walks in encoded (dictionary-id) form, plus their snapshot.

        A seed entity absent from the snapshot dictionary yields the
        sentinel walk ``[-1]`` (it has no edges by construction).  Walks are
        grouped ``walks_per_entity`` at a time in ``entities`` order —
        exactly the layout :meth:`random_walks` decodes.
        """
        snapshot = self.snapshot()
        rng = substream(seed, "random-walks")
        steps = walk_length - 1
        if fastrand.lemire_matches_numpy():
            walks = _walks_lemire(snapshot, entities, steps, walks_per_entity, rng)
        else:
            walks = _walks_generator(snapshot, entities, steps, walks_per_entity, rng)
        return walks, snapshot

    def random_walks(
        self,
        entities: list[str],
        walk_length: int = 8,
        walks_per_entity: int = 4,
        seed: int = 0,
    ) -> list[list[str]]:
        """Pre-computed random walks over the entity graph.

        Walks are the traversal samples the related-entities embedding
        consumes; dead ends truncate a walk early.  Deterministic per seed.
        """
        encoded, snapshot = self.random_walks_ids(
            entities, walk_length=walk_length, walks_per_entity=walks_per_entity, seed=seed
        )
        strings = snapshot.dictionary._strings_view()
        walks: list[list[str]] = []
        cursor = 0
        for entity in entities:
            for _ in range(walks_per_entity):
                walk = encoded[cursor]
                cursor += 1
                if walk[0] < 0:
                    walks.append([entity])
                else:
                    walks.append([strings[node] for node in walk])
        return walks

    def co_neighbor_counts(self, entity: str) -> dict[str, int]:
        """For each other entity, the number of shared neighbors with ``entity``.

        Used as ground truth for the related-entities evaluation: LeBron and
        Curry share awards/teams, LeBron and a random city share nothing.
        """
        snapshot = self._adjacency.current()
        # Pre-grouped second-hop rows make this a dict lookup plus one
        # C-level Counter pass over decoded strings (no per-query id->string
        # decode); the seed itself is popped afterwards, matching the
        # historical "skip self" filter.
        rows = snapshot.second_hop_string_rows().get(entity)
        if not rows:
            return {}
        counts: Counter[str] = Counter(chain.from_iterable(rows))
        counts.pop(entity, None)
        return counts

    # -- candidate generation (Figure 3, inference path) ------------------------

    def candidate_triples(
        self,
        subject: str,
        predicate: str,
        candidate_objects: list[str] | None = None,
    ) -> list[tuple[str, str, str]]:
        """Candidate (s, p, o) triples for scoring a query ``(s, p, ?)``.

        When ``candidate_objects`` is not given, candidates default to every
        object observed with ``predicate`` anywhere in the graph — the
        engine-side materialisation step of Figure 3's inference path.
        """
        if candidate_objects is None:
            candidate_objects = sorted(
                {fact.obj for fact in self.store.scan(predicate=predicate)}
            )
        return [(subject, predicate, obj) for obj in candidate_objects]

    def candidate_pairs(
        self, entities: list[str], max_pairs: int | None = None, seed: int = 0
    ) -> list[tuple[str, str]]:
        """Entity pairs for relatedness scoring, optionally sampled."""
        pairs = [
            (a, b)
            for i, a in enumerate(entities)
            for b in entities[i + 1 :]
        ]
        if max_pairs is not None and len(pairs) > max_pairs:
            rng = substream(seed, "candidate-pairs")
            chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
            pairs = [pairs[i] for i in np.sort(chosen)]
        return pairs

    # -- projections ------------------------------------------------------------

    def entity_edges(self) -> Iterator[Fact]:
        """Only entity-to-entity facts (what embedding models train on)."""
        for fact in self.store.scan():
            if fact.obj_kind is ObjectKind.ENTITY:
                yield fact

    def degree_distribution(self) -> dict[str, int]:
        """Total (in+out) degree per entity over entity-valued edges.

        Counts facts, not distinct neighbors: parallel edges under different
        predicates each contribute, matching the historical scan-based
        implementation.
        """
        snapshot = self.snapshot()
        degrees = snapshot.entity_edge_degrees
        nonzero = np.flatnonzero(degrees)
        strings = snapshot.dictionary._strings_view()
        return dict(
            zip((strings[i] for i in nonzero.tolist()), degrees[nonzero].tolist())
        )


def _walks_lemire(
    snapshot: CSRAdjacency,
    entities: list[str],
    steps: int,
    walks_per_entity: int,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Walk sampler with inlined Lemire draws over the raw PCG64 stream.

    The inner loop replays ``rng.integers(degree)`` bit-for-bit — it is a
    hand-inlined copy of :meth:`fastrand.Lemire32.randbelow` (same buffer
    via :func:`fastrand.refill_halves`, same multiply-shift/threshold
    arithmetic) kept in lockstep because a method call per step would cost
    more than the step itself.  ``test_walks_byte_identical_to_reference``
    pins this copy against the real ``Generator.integers``.
    """
    indptr, indices, degrees, _ = snapshot.lists()
    id_of = snapshot.dictionary.get
    walks: list[list[int]] = []
    half: list[int] = []
    position = 0
    limit = 0
    for entity in entities:
        start = id_of(entity)
        for _ in range(walks_per_entity):
            if start is None:
                walks.append([-1])
                continue
            current = start
            walk = [current]
            append = walk.append
            for _ in range(steps):
                degree = degrees[current]
                if degree == 0:
                    break
                if degree == 1:
                    # integers(1) consumes no bits and returns 0.
                    current = indices[indptr[current]]
                else:
                    if position >= limit:
                        half = refill_halves(rng)
                        position = 0
                        limit = len(half)
                    m = half[position] * degree
                    position += 1
                    leftover = m & MASK32
                    if leftover < degree:
                        threshold = (4294967296 - degree) % degree
                        while leftover < threshold:
                            if position >= limit:
                                half = refill_halves(rng)
                                position = 0
                                limit = len(half)
                            m = half[position] * degree
                            position += 1
                            leftover = m & MASK32
                    current = indices[indptr[current] + (m >> 32)]
                append(current)
            walks.append(walk)
    return walks


def _walks_generator(
    snapshot: CSRAdjacency,
    entities: list[str],
    steps: int,
    walks_per_entity: int,
    rng: np.random.Generator,
) -> list[list[int]]:
    """Fallback walk sampler: one ``Generator.integers`` call per step.

    Used when this NumPy's bounded-integer algorithm differs from the
    Lemire replication — slower but still CSR-based and byte-identical.
    Unlike the Lemire loop, degree-1 nodes still call ``integers(1)``:
    whether that call consumes stream bits is exactly the implementation
    detail this fallback refuses to assume, and the historical code drew
    unconditionally.
    """
    indptr, indices, degrees, _ = snapshot.lists()
    id_of = snapshot.dictionary.get
    integers = rng.integers
    walks: list[list[int]] = []
    for entity in entities:
        start = id_of(entity)
        for _ in range(walks_per_entity):
            if start is None:
                walks.append([-1])
                continue
            current = start
            walk = [current]
            append = walk.append
            for _ in range(steps):
                degree = degrees[current]
                if degree == 0:
                    break
                current = indices[indptr[current] + int(integers(degree))]
                append(current)
            walks.append(walk)
    return walks
