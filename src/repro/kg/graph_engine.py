"""Graph Query Engine: pattern queries, traversals and candidate generation.

This is the computational layer the paper's embedding pipeline sits on
(Figure 3): it produces *filtered views* of the KG for training, *candidate
sets* of entities/triples for batch inference, and *pre-computed graph
traversals* (random walks) that power the specialized related-entities
embeddings (§2: "we use the scalable graph processing capabilities of our
graph engine to pre-compute graph traversals").
"""

from __future__ import annotations

from collections import deque
from collections.abc import Callable, Iterator
from dataclasses import dataclass

import numpy as np

from repro.common.rng import substream
from repro.kg.store import TripleStore
from repro.kg.triple import Fact, ObjectKind


@dataclass(frozen=True)
class TriplePattern:
    """A (s, p, o) pattern; ``None`` positions are wildcards."""

    subject: str | None = None
    predicate: str | None = None
    obj: str | None = None


FactFilter = Callable[[Fact], bool]


class GraphEngine:
    """Query/traversal operations over a :class:`TripleStore`."""

    def __init__(self, store: TripleStore) -> None:
        self.store = store

    # -- pattern matching -----------------------------------------------------

    def match(self, pattern: TriplePattern) -> Iterator[Fact]:
        """Facts matching ``pattern``."""
        return self.store.scan(pattern.subject, pattern.predicate, pattern.obj)

    def match_all(self, patterns: list[TriplePattern]) -> list[Fact]:
        """Union of facts matching any pattern (deduplicated, stable order)."""
        seen: dict[tuple[str, str, str], Fact] = {}
        for pattern in patterns:
            for fact in self.match(pattern):
                seen.setdefault(fact.key, fact)
        return list(seen.values())

    def filter_facts(self, keep: FactFilter) -> Iterator[Fact]:
        """All facts passing the ``keep`` filter (streaming)."""
        for fact in self.store.scan():
            if keep(fact):
                yield fact

    # -- typed lookups -------------------------------------------------------

    def entities_of_type(self, type_id: str) -> list[str]:
        """Entities whose descriptor lists ``type_id`` among its types."""
        return sorted(
            record.entity
            for record in self.store.entities()
            if type_id in record.types
        )

    def type_of(self, entity: str) -> tuple[str, ...]:
        """Declared types of ``entity`` (may be empty)."""
        if not self.store.has_entity(entity):
            return ()
        return self.store.entity(entity).types

    # -- traversals -------------------------------------------------------------

    def neighborhood(self, entity: str, hops: int = 1) -> set[str]:
        """Entities within ``hops`` undirected steps of ``entity``.

        The seed entity itself is excluded from the result.
        """
        if hops < 0:
            raise ValueError(f"hops must be >= 0, got {hops}")
        frontier = {entity}
        visited = {entity}
        for _ in range(hops):
            next_frontier: set[str] = set()
            for node in frontier:
                for neighbor in self.store.neighbors(node):
                    if neighbor not in visited:
                        visited.add(neighbor)
                        next_frontier.add(neighbor)
            frontier = next_frontier
            if not frontier:
                break
        visited.discard(entity)
        return visited

    def shortest_path_length(self, source: str, target: str, cutoff: int = 6) -> int | None:
        """Unweighted shortest-path length, or ``None`` beyond ``cutoff``."""
        if source == target:
            return 0
        queue: deque[tuple[str, int]] = deque([(source, 0)])
        visited = {source}
        while queue:
            node, depth = queue.popleft()
            if depth >= cutoff:
                continue
            for neighbor in self.store.neighbors(node):
                if neighbor == target:
                    return depth + 1
                if neighbor not in visited:
                    visited.add(neighbor)
                    queue.append((neighbor, depth + 1))
        return None

    def random_walks(
        self,
        entities: list[str],
        walk_length: int = 8,
        walks_per_entity: int = 4,
        seed: int = 0,
    ) -> list[list[str]]:
        """Pre-computed random walks over the entity graph.

        Walks are the traversal samples the related-entities embedding
        consumes; dead ends truncate a walk early.  Deterministic per seed.
        """
        rng = substream(seed, "random-walks")
        walks: list[list[str]] = []
        for entity in entities:
            for _ in range(walks_per_entity):
                walk = [entity]
                current = entity
                for _ in range(walk_length - 1):
                    neighbors = sorted(self.store.neighbors(current))
                    if not neighbors:
                        break
                    current = neighbors[int(rng.integers(len(neighbors)))]
                    walk.append(current)
                walks.append(walk)
        return walks

    def co_neighbor_counts(self, entity: str) -> dict[str, int]:
        """For each other entity, the number of shared neighbors with ``entity``.

        Used as ground truth for the related-entities evaluation: LeBron and
        Curry share awards/teams, LeBron and a random city share nothing.
        """
        mine = self.store.neighbors(entity)
        counts: dict[str, int] = {}
        for neighbor in mine:
            for second in self.store.neighbors(neighbor):
                if second != entity:
                    counts[second] = counts.get(second, 0) + 1
        return counts

    # -- candidate generation (Figure 3, inference path) ------------------------

    def candidate_triples(
        self,
        subject: str,
        predicate: str,
        candidate_objects: list[str] | None = None,
    ) -> list[tuple[str, str, str]]:
        """Candidate (s, p, o) triples for scoring a query ``(s, p, ?)``.

        When ``candidate_objects`` is not given, candidates default to every
        object observed with ``predicate`` anywhere in the graph — the
        engine-side materialisation step of Figure 3's inference path.
        """
        if candidate_objects is None:
            candidate_objects = sorted(
                {fact.obj for fact in self.store.scan(predicate=predicate)}
            )
        return [(subject, predicate, obj) for obj in candidate_objects]

    def candidate_pairs(
        self, entities: list[str], max_pairs: int | None = None, seed: int = 0
    ) -> list[tuple[str, str]]:
        """Entity pairs for relatedness scoring, optionally sampled."""
        pairs = [
            (a, b)
            for i, a in enumerate(entities)
            for b in entities[i + 1 :]
        ]
        if max_pairs is not None and len(pairs) > max_pairs:
            rng = substream(seed, "candidate-pairs")
            chosen = rng.choice(len(pairs), size=max_pairs, replace=False)
            pairs = [pairs[i] for i in np.sort(chosen)]
        return pairs

    # -- projections ------------------------------------------------------------

    def entity_edges(self) -> Iterator[Fact]:
        """Only entity-to-entity facts (what embedding models train on)."""
        for fact in self.store.scan():
            if fact.obj_kind is ObjectKind.ENTITY:
                yield fact

    def degree_distribution(self) -> dict[str, int]:
        """Total (in+out) degree per entity over entity-valued edges."""
        degrees: dict[str, int] = {}
        for fact in self.entity_edges():
            degrees[fact.subject] = degrees.get(fact.subject, 0) + 1
            degrees[fact.obj] = degrees.get(fact.obj, 0) + 1
        return degrees
