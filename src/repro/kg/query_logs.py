"""Query-log analysis: the *reactive* gap-detection path of ODKE.

§4: "we can reactively identify missing and stale facts by analyzing query
logs and finding user queries that are not answered correctly due to
missing or stale facts.  … In addition, we can predict new facts missing
from the current knowledge graph by analyzing potential trending queries."

This module provides:

* :class:`QueryLogEntry` / :func:`synthesize_query_log` — a synthetic log of
  (entity, predicate) lookups whose answered/unanswered status is derived
  from the deployed store, with traffic skewed by entity popularity;
* :class:`QueryLogAnalyzer` — aggregates unanswered queries into ranked
  demand for missing facts, and detects *trending* queries by comparing
  traffic across time windows.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass

from repro.common.rng import substream
from repro.kg.store import TripleStore


@dataclass(frozen=True)
class QueryLogEntry:
    """One logged lookup of ``(entity, predicate)`` at ``timestamp``."""

    entity: str
    predicate: str
    timestamp: float
    answered: bool


@dataclass(frozen=True)
class UnansweredDemand:
    """Aggregated demand for a missing fact."""

    entity: str
    predicate: str
    query_count: int

    @property
    def key(self) -> tuple[str, str]:
        return (self.entity, self.predicate)


def synthesize_query_log(
    store: TripleStore,
    predicates: list[str],
    num_queries: int,
    now: float,
    window_seconds: float = 14 * 24 * 3600,
    seed: int = 0,
    trending_entities: list[str] | None = None,
) -> list[QueryLogEntry]:
    """Generate a popularity-skewed query log against ``store``.

    Each query picks an entity (proportionally to popularity) and a
    predicate; it is *answered* iff the store holds at least one fact for
    that pair.  ``trending_entities`` receive a traffic burst in the most
    recent quarter of the window, exercising the trend detector.
    """
    rng = substream(seed, "query-log")
    records = sorted(store.entities(), key=lambda record: record.entity)
    if not records or not predicates or num_queries <= 0:
        return []
    weights = [max(record.popularity, 1e-9) for record in records]
    total = sum(weights)
    probabilities = [weight / total for weight in weights]

    entries: list[QueryLogEntry] = []
    entity_indices = rng.choice(len(records), size=num_queries, p=probabilities)
    predicate_indices = rng.integers(0, len(predicates), size=num_queries)
    offsets = rng.random(num_queries) * window_seconds
    for i in range(num_queries):
        record = records[int(entity_indices[i])]
        predicate = predicates[int(predicate_indices[i])]
        timestamp = now - window_seconds + float(offsets[i])
        answered = bool(store.objects(record.entity, predicate))
        entries.append(
            QueryLogEntry(
                entity=record.entity,
                predicate=predicate,
                timestamp=timestamp,
                answered=answered,
            )
        )

    if trending_entities:
        burst_start = now - window_seconds / 4
        per_entity = max(3, num_queries // (10 * len(trending_entities)))
        for entity in trending_entities:
            for j in range(per_entity):
                predicate = predicates[j % len(predicates)]
                answered = bool(store.objects(entity, predicate))
                entries.append(
                    QueryLogEntry(
                        entity=entity,
                        predicate=predicate,
                        timestamp=burst_start + (now - burst_start) * (j + 1) / (per_entity + 1),
                        answered=answered,
                    )
                )
    entries.sort(key=lambda entry: entry.timestamp)
    return entries


class QueryLogAnalyzer:
    """Aggregate a query log into missing-fact demand and trends."""

    def __init__(self, entries: list[QueryLogEntry]) -> None:
        self.entries = entries

    def unanswered_demand(self, min_count: int = 1) -> list[UnansweredDemand]:
        """Unanswered (entity, predicate) pairs ranked by query volume."""
        counts: Counter[tuple[str, str]] = Counter(
            (entry.entity, entry.predicate)
            for entry in self.entries
            if not entry.answered
        )
        demand = [
            UnansweredDemand(entity=entity, predicate=predicate, query_count=count)
            for (entity, predicate), count in counts.items()
            if count >= min_count
        ]
        demand.sort(key=lambda item: (-item.query_count, item.key))
        return demand

    def answer_rate(self) -> float:
        """Fraction of queries answered (1.0 for an empty log)."""
        if not self.entries:
            return 1.0
        answered = sum(1 for entry in self.entries if entry.answered)
        return answered / len(self.entries)

    def trending_entities(
        self, now: float, window_seconds: float, growth_factor: float = 2.0
    ) -> list[str]:
        """Entities whose recent traffic outgrew their earlier traffic.

        Compares the last ``window_seconds`` against the preceding window of
        equal length; an entity trends when recent ≥ ``growth_factor`` ×
        max(earlier, 1).
        """
        recent: Counter[str] = Counter()
        earlier: Counter[str] = Counter()
        for entry in self.entries:
            age = now - entry.timestamp
            if age <= window_seconds:
                recent[entry.entity] += 1
            elif age <= 2 * window_seconds:
                earlier[entry.entity] += 1
        trending = [
            entity
            for entity, count in recent.items()
            if count >= growth_factor * max(earlier.get(entity, 0), 1)
        ]
        trending.sort(key=lambda entity: (-recent[entity], entity))
        return trending
