"""Store persistence: JSONL logical snapshots + zero-copy physical layers.

Two tiers, bundled under one directory:

* **Logical** (``save_store``/``load_store``): ``entities.jsonl`` +
  ``facts.jsonl`` (+ ``meta.json``) — append-friendly, diff-able, the
  interchange format the construction pipeline exchanges.
* **Physical** (``save_snapshot``/``load_snapshot``): versioned binary
  snapshots of the columnar serving layers next to the JSONL —
  ``adjacency/`` (dictionary + CSR arrays), ``context/`` (annotation
  context matrix + entity→row map), ``alias/`` (alias-table state),
  ``embeddings/`` (trained embedding matrices + calibrated threshold +
  IVF quantizer, :mod:`repro.embeddings.persistence`) — each with a
  manifest carrying format version, ``store_version`` and per-file
  checksums (:mod:`repro.common.snapshot_io`).

``load_snapshot`` is the worker cold-start path (§4 serving): arrays are
memory-mapped instead of rebuilt, the fact log replays *lazily* (walks and
annotation serve entirely from the physical layers), and any layer whose
manifest doesn't match the bundle's store version is dropped so its
consumer rebuilds from the live store — the same adopt-or-rebuild
contract as ``AliasTable.refresh``/``AdjacencyIndex``.
"""

from __future__ import annotations

import functools
import json
import threading
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Any

from repro.common.errors import StoreError
from repro.common.serialization import read_jsonl, write_jsonl
from repro.common.snapshot_io import SnapshotStaleError
from repro.kg.adjacency import CSRAdjacency, build_csr, load_adjacency, save_adjacency
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import Fact

if TYPE_CHECKING:  # annotation/embedding-layer types; imported lazily at runtime
    from repro.annotation.alias_table import AliasTable
    from repro.annotation.context_encoder import EntityContextIndex
    from repro.embeddings.persistence import EmbeddingLayer
    from repro.embeddings.suite import EmbeddingSuite, EmbeddingSuiteConfig
    from repro.kg.graph_engine import GraphEngine

FORMAT_VERSION = 1
SNAPSHOT_MANIFEST = "snapshot.json"

ADJACENCY_DIR = "adjacency"
CONTEXT_DIR = "context"
ALIAS_DIR = "alias"
EMBEDDINGS_DIR = "embeddings"


def save_store(store: TripleStore, directory: str | Path) -> dict[str, int]:
    """Write ``store`` under ``directory``; returns written counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    n_entities = write_jsonl(directory / "entities.jsonl", store.entities())
    n_facts = write_jsonl(directory / "facts.jsonl", store.scan())
    meta = {
        "format_version": FORMAT_VERSION,
        "name": store.name,
        "num_entities": n_entities,
        "num_facts": n_facts,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")
    return {"entities": n_entities, "facts": n_facts}


def load_store(directory: str | Path) -> TripleStore:
    """Restore a store previously written by :func:`save_store`."""
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise StoreError(f"not a saved store: {directory} (missing meta.json)")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported store format {meta.get('format_version')!r} "
            f"(supported: {FORMAT_VERSION})"
        )
    store = TripleStore(name=meta.get("name", "kg"))
    for record in read_jsonl(directory / "entities.jsonl", EntityRecord.from_dict):
        store.upsert_entity(record)
    for fact in read_jsonl(directory / "facts.jsonl", Fact.from_dict):
        store.add(fact)
    return store


# -- lazy logical store -------------------------------------------------------


class SnapshotStore(TripleStore):
    """A :class:`TripleStore` restored from a bundle, fact log replayed lazily.

    Entity descriptors load eagerly (every serving path needs them: alias
    table, candidates, typing).  The fact log — the bulk of cold-start
    replay — loads on first access to any fact-reading or mutating
    operation; walks and full-tier annotation served from adopted physical
    snapshots never touch it.

    ``version`` is pinned to the bundle's saved ``store_version``, so
    physical layers stamped with that version adopt cleanly; the lazy
    replay itself never moves ``version`` (it is a load, not a logical
    mutation), while real mutations bump it as usual and invalidate every
    adopted layer.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        name: str = "kg",
        pinned_version: int = 0,
        defer_facts: bool = True,
    ) -> None:
        super().__init__(name=name)
        self._directory = Path(directory)
        self._facts_loaded = False
        # Concurrent in-process readers (serving worker threads) may race
        # to the first fact access; the replay must run exactly once and
        # no reader may observe a partially replayed index.
        self._replay_lock = threading.RLock()
        for record in read_jsonl(
            self._directory / "entities.jsonl", EntityRecord.from_dict
        ):
            self._entities[record.entity] = record
        if not defer_facts:
            self._ensure_facts()
        self.version = pinned_version

    def _ensure_facts(self) -> None:
        if self._facts_loaded:
            return
        with self._replay_lock:
            if self._facts_loaded:
                return
            # Flag only flips once the replay completes: a truncated/corrupt
            # fact log must keep raising on every access, never serve the
            # partial prefix as if it were the full graph.  (Upserts are
            # idempotent, so a retry after a transient error is safe.)
            for fact in read_jsonl(self._directory / "facts.jsonl", Fact.from_dict):
                self._upsert(fact)
            self._facts_loaded = True


def _facts_first(name: str):
    base = getattr(TripleStore, name)

    @functools.wraps(base)
    def method(self, *args, **kwargs):
        self._ensure_facts()
        return base(self, *args, **kwargs)

    return method


# Every TripleStore operation that reads or writes the fact indexes; the
# entity-descriptor surface (entity/has_entity/entities/entity_ids/
# upsert_entity/copy_entities_from) deliberately stays lazy-free.
for _name in (
    "add",
    "add_all",
    "remove",
    "get",
    "__contains__",
    "__len__",
    "scan",
    "objects",
    "subjects",
    "facts_of",
    "predicates_of",
    "predicates",
    "predicate_counts",
    "out_degree",
    "in_degree",
    "stats",
    "neighbors",
):
    setattr(SnapshotStore, _name, _facts_first(_name))


# -- bundled physical snapshots ----------------------------------------------


@dataclass
class KGSnapshot:
    """A loaded bundle: the logical store plus adoptable physical layers.

    Layers that were missing, stale (built at a different store version
    than the bundle) or written by an incompatible python are ``None`` —
    their consumers rebuild from the live store.  Corrupt layers raise
    :class:`StoreError` at load instead (never garbage results).
    """

    directory: Path
    manifest: dict[str, Any]
    store: TripleStore
    adjacency: CSRAdjacency | None
    context: tuple | None  # (matrix, row entities, built_version, extra)
    alias: tuple | None  # (state, built_version, extra)
    embeddings: "EmbeddingLayer | None" = None

    def engine(self) -> "GraphEngine":
        """A :class:`GraphEngine` with the persisted CSR adopted (if fresh)."""
        from repro.kg.graph_engine import GraphEngine

        engine = GraphEngine(self.store)
        if self.adjacency is not None:
            engine.adopt_snapshot(self.adjacency)
        return engine

    def context_index(self, encoder=None, cache=None) -> "EntityContextIndex":
        """An :class:`EntityContextIndex` served from the mmapped matrix.

        The persisted ``neighbor_limit`` carries over, so vectors
        computed after the load (new entities, post-mutation rebuilds)
        use the same recipe as the saved ones.  Falls back to an empty
        (stale) index that rebuilds on first use when the bundle carries
        no adoptable context layer.
        """
        from repro.annotation.context_encoder import EntityContextIndex

        extra = self.context[3] if self.context is not None else {}
        index = EntityContextIndex(
            self.store,
            encoder=encoder,
            cache=cache,
            neighbor_limit=extra.get("neighbor_limit", 16),
        )
        if self.context is not None:
            matrix, entities, built_version, _ = self.context
            if extra.get("dim") == index.encoder.dim:
                index.adopt(matrix, entities, built_version)
        return index

    def alias_table(self, fuzzy_threshold: float | None = None) -> "AliasTable":
        """An :class:`AliasTable` restored from persisted state (if fresh).

        ``fuzzy_threshold`` defaults to the persisted value, so the
        restored table accepts exactly the fuzzy matches the saved
        service did.
        """
        from repro.annotation.alias_table import AliasTable

        if fuzzy_threshold is None:
            persisted = self.alias[2] if self.alias is not None else {}
            fuzzy_threshold = persisted.get("fuzzy_threshold", 0.75)
        table = AliasTable(self.store, fuzzy_threshold, refresh=False)
        if self.alias is not None:
            state, built_version, _extra = self.alias
            table.adopt_state(state, built_version)
        if table.is_stale:
            table.refresh()
        return table

    def embedding_suite(self, config: "EmbeddingSuiteConfig | None" = None) -> "EmbeddingSuite":
        """The embedding-family backends, adopted from the persisted layer.

        Adopt-or-rebuild: a fresh layer whose recipe matches ``config``
        reconstructs the suite zero-copy from the mmapped arrays (no
        training, no calibration, no k-means); a missing, stale or
        recipe-mismatched layer silently trains from the live store.
        """
        from repro.embeddings.persistence import adopt_embedding_suite
        from repro.embeddings.suite import EmbeddingSuiteConfig, build_embedding_suite

        config = config or EmbeddingSuiteConfig()
        if self.embeddings is not None:
            suite = adopt_embedding_suite(self.store, self.embeddings, config)
            if suite is not None:
                return suite
        return build_embedding_suite(self.store, config)

    def annotation_pipeline(self, tier: str = "full", **kwargs):
        """A :func:`make_pipeline` wired onto the adopted physical layers."""
        from repro.annotation.pipeline import FULL_TIER, make_pipeline

        context_index = self.context_index() if tier == FULL_TIER else None
        return make_pipeline(
            self.store,
            tier=tier,
            context_index=context_index,
            alias_table=self.alias_table(),
            **kwargs,
        )


def save_snapshot(
    store: TripleStore,
    directory: str | Path,
    *,
    engine: "GraphEngine | None" = None,
    context_index: "EntityContextIndex | None" = None,
    alias_table: "AliasTable | None" = None,
    embedding_suite: "EmbeddingSuite | None" = None,
    embedding_config: "EmbeddingSuiteConfig | None" = None,
    embeddings: bool = True,
) -> dict[str, Any]:
    """Write a full bundle: JSONL logical store + binary physical layers.

    Layers are taken from the passed objects when fresh (a warm engine's
    CSR, a built context index, an already-trained embedding suite) and
    built from the store otherwise, so every layer manifest is stamped
    with the *current* ``store.version``.  The ``embeddings/`` layer is
    skipped for stores with no entity-valued facts (nothing to train) or
    when ``embeddings=False`` (its consumers then train on demand).
    Returns the bundle manifest (also written to ``snapshot.json``).
    """
    from repro.annotation.alias_table import AliasTable, save_alias_table
    from repro.annotation.context_encoder import EntityContextIndex, save_context_index

    directory = Path(directory)
    counts = save_store(store, directory)
    version = store.version

    snapshot = engine.snapshot() if engine is not None else build_csr(store)
    save_adjacency(snapshot, directory / ADJACENCY_DIR)

    if context_index is None:
        context_index = EntityContextIndex(store)
    if context_index.is_stale:
        context_index.build()
    save_context_index(context_index, directory / CONTEXT_DIR)

    if alias_table is None:
        alias_table = AliasTable(store)
    if alias_table.is_stale:
        alias_table.refresh()
    save_alias_table(alias_table, directory / ALIAS_DIR)

    layers = [ADJACENCY_DIR, CONTEXT_DIR, ALIAS_DIR]
    if embeddings:
        from repro.common.errors import EmbeddingError
        from repro.embeddings.persistence import save_embeddings
        from repro.embeddings.suite import EmbeddingSuiteConfig, build_embedding_suite

        config = embedding_config or EmbeddingSuiteConfig()
        if embedding_suite is None:
            try:
                embedding_suite = build_embedding_suite(store, config)
            except EmbeddingError:
                embedding_suite = None  # no entity-valued facts: no layer
        if embedding_suite is not None:
            save_embeddings(
                embedding_suite,
                config,
                directory / EMBEDDINGS_DIR,
                store_version=version,
            )
            layers.append(EMBEDDINGS_DIR)

    manifest = {
        "format_version": FORMAT_VERSION,
        "name": store.name,
        "store_version": version,
        "num_entities": counts["entities"],
        "num_facts": counts["facts"],
        "layers": layers,
    }
    (directory / SNAPSHOT_MANIFEST).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return manifest


def load_snapshot(
    directory: str | Path,
    *,
    defer_facts: bool = True,
    mmap: bool = True,
    verify: bool = True,
) -> KGSnapshot:
    """Load a bundle written by :func:`save_snapshot` — chained or plain.

    A bundle carrying a ``chain.json`` (written by
    :class:`~repro.kg.deltas.GenerationPublisher`) loads through the delta
    machinery: the base plus every delta overlay merge into one snapshot
    stamped at the chain's tip version.  Plain bundles load directly.
    Either way the returned :class:`KGSnapshot` honours the same contract,
    so callers (workers, serving, tools) need no chain awareness.
    """
    from repro.kg.deltas import CHAIN_NAME, load_chain_snapshot

    directory = Path(directory)
    if (directory / CHAIN_NAME).exists():
        return load_chain_snapshot(
            directory, defer_facts=defer_facts, mmap=mmap, verify=verify
        )
    return load_plain_snapshot(
        directory, defer_facts=defer_facts, mmap=mmap, verify=verify
    )


def load_plain_snapshot(
    directory: str | Path,
    *,
    defer_facts: bool = True,
    mmap: bool = True,
    verify: bool = True,
) -> KGSnapshot:
    """Load a single (chain-free) bundle directory.

    Cold start is an mmap, not a rebuild: physical arrays map read-only,
    the fact log replays lazily (``defer_facts=False`` forces an eager
    replay), and each layer's manifest is checked against the bundle's
    ``store_version`` — a mismatched (stale) layer is dropped so its
    consumer rebuilds, while corruption (bad checksums, truncated or
    missing files) raises :class:`StoreError`.
    """
    from repro.annotation.alias_table import load_alias_state
    from repro.annotation.context_encoder import load_context_arrays

    directory = Path(directory)
    manifest_path = directory / SNAPSHOT_MANIFEST
    if not manifest_path.exists():
        raise StoreError(
            f"not a saved snapshot: {directory} (missing {SNAPSHOT_MANIFEST})"
        )
    manifest = json.loads(manifest_path.read_text(encoding="utf-8"))
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported snapshot format {manifest.get('format_version')!r} "
            f"(supported: {FORMAT_VERSION})"
        )
    version = int(manifest["store_version"])
    store = SnapshotStore(
        directory,
        name=manifest.get("name", "kg"),
        pinned_version=version,
        defer_facts=defer_facts,
    )

    adjacency = None
    if (directory / ADJACENCY_DIR).exists():
        try:
            adjacency = load_adjacency(
                directory / ADJACENCY_DIR,
                expected_store_version=version,
                mmap=mmap,
                verify=verify,
            )
        except SnapshotStaleError:
            adjacency = None

    context = None
    if (directory / CONTEXT_DIR).exists():
        try:
            context = load_context_arrays(
                directory / CONTEXT_DIR,
                expected_store_version=version,
                mmap=mmap,
                verify=verify,
            )
        except SnapshotStaleError:
            context = None

    alias = None
    if (directory / ALIAS_DIR).exists():
        try:
            alias = load_alias_state(
                directory / ALIAS_DIR, expected_store_version=version
            )
        except SnapshotStaleError:
            alias = None

    embeddings = None
    if (directory / EMBEDDINGS_DIR).exists():
        from repro.embeddings.persistence import load_embedding_layer

        try:
            embeddings = load_embedding_layer(
                directory / EMBEDDINGS_DIR,
                expected_store_version=version,
                mmap=mmap,
                verify=verify,
            )
        except SnapshotStaleError:
            embeddings = None

    return KGSnapshot(
        directory=directory,
        manifest=manifest,
        store=store,
        adjacency=adjacency,
        context=context,
        alias=alias,
        embeddings=embeddings,
    )
