"""Store persistence: save/load a knowledge graph as JSONL files.

A downstream adopter needs durable KGs: ``save_store`` writes a directory
with ``entities.jsonl`` + ``facts.jsonl`` (+ ``meta.json``) and
``load_store`` restores an equivalent :class:`~repro.kg.store.TripleStore`.
The format is append-friendly and diff-able, matching how the construction
pipeline exchanges snapshots.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.common.errors import StoreError
from repro.common.serialization import read_jsonl, write_jsonl
from repro.kg.store import EntityRecord, TripleStore
from repro.kg.triple import Fact

FORMAT_VERSION = 1


def save_store(store: TripleStore, directory: str | Path) -> dict[str, int]:
    """Write ``store`` under ``directory``; returns written counts."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    n_entities = write_jsonl(directory / "entities.jsonl", store.entities())
    n_facts = write_jsonl(directory / "facts.jsonl", store.scan())
    meta = {
        "format_version": FORMAT_VERSION,
        "name": store.name,
        "num_entities": n_entities,
        "num_facts": n_facts,
    }
    (directory / "meta.json").write_text(json.dumps(meta, indent=2), encoding="utf-8")
    return {"entities": n_entities, "facts": n_facts}


def load_store(directory: str | Path) -> TripleStore:
    """Restore a store previously written by :func:`save_store`."""
    directory = Path(directory)
    meta_path = directory / "meta.json"
    if not meta_path.exists():
        raise StoreError(f"not a saved store: {directory} (missing meta.json)")
    meta = json.loads(meta_path.read_text(encoding="utf-8"))
    if meta.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported store format {meta.get('format_version')!r} "
            f"(supported: {FORMAT_VERSION})"
        )
    store = TripleStore(name=meta.get("name", "kg"))
    for record in read_jsonl(directory / "entities.jsonl", EntityRecord.from_dict):
        store.upsert_entity(record)
    for fact in read_jsonl(directory / "facts.jsonl", Fact.from_dict):
        store.add(fact)
    return store
