"""Versioned CSR adjacency snapshots over a :class:`TripleStore`.

The graph engine's traversal hot paths (walks, k-hop neighborhoods,
co-neighbor counts) used to rebuild and re-sort Python neighbor sets at
every step.  A :class:`CSRAdjacency` snapshot pays that cost once: node
strings are dictionary-encoded (:mod:`repro.kg.encoding`) and the undirected
neighbor lists are laid out in two flat arrays —

* ``indptr`` (int64, length ``num_nodes + 1``): row offsets;
* ``indices`` (int32): neighbor ids, each row pre-sorted by neighbor
  *string* so ``indices[indptr[v]:indptr[v+1]]`` is exactly
  ``sorted(store.neighbors(v))`` in encoded form.

Sorting by decoded string (not by id) is what keeps random walks
byte-identical to the set-based implementation: the walk picks
``sorted(neighbors)[draw]`` and CSR rows preserve that order.

Neighbor semantics replicate :meth:`TripleStore.neighbors` for *every* node
string: a fact ``(s, p, o)`` contributes ``s -> o`` only when the object is
an entity, but ``o -> s`` always (the OSP index answers "who points at me"
regardless of object kind), with self-loops dropped and duplicates merged.

Snapshots are immutable; :class:`AdjacencyIndex` caches the latest one and
rebuilds when ``TripleStore.version`` moves — the same invalidation contract
``AliasTable.refresh`` uses.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import StoreError
from repro.common.snapshot_io import load_arrays, write_arrays
from repro.kg.encoding import Dictionary
from repro.kg.store import TripleStore
from repro.kg.triple import ObjectKind


@dataclass
class CSRAdjacency:
    """One immutable adjacency snapshot of a store version."""

    dictionary: Dictionary
    indptr: np.ndarray  # int64, shape (num_nodes + 1,)
    indices: np.ndarray  # int32, row-sorted by neighbor string
    # Fact-multiplicity degree per node over entity-valued edges only (what
    # ``degree_distribution`` reports); distinct from CSR row lengths, which
    # are deduplicated and include the OSP side of literal facts.
    entity_edge_degrees: np.ndarray  # int64, shape (num_nodes,)
    predicate_counts: dict[str, int]
    built_version: int
    # Python-list mirrors of the arrays, materialised lazily for the walk
    # loop where list indexing beats numpy scalar indexing ~3x.  First
    # materialisation is guarded by ``_derive_lock``: snapshots are shared
    # read-only across serving worker threads, and an unguarded build
    # could expose a half-assigned cache (e.g. ``_indptr_list`` set while
    # ``_indices_list`` is still ``None``).  Reads stay lock-free — each
    # cache is published with a single reference assignment only after it
    # is fully built.
    _indptr_list: list[int] | None = field(default=None, repr=False)
    _indices_list: list[int] | None = field(default=None, repr=False)
    _degrees_list: list[int] | None = field(default=None, repr=False)
    _neighbor_strings: list[list[str]] | None = field(default=None, repr=False)
    _neighbor_ids: list[list[int]] | None = field(default=None, repr=False)
    _second_hop_rows: dict[str, list[list[str]]] | None = field(default=None, repr=False)
    _derive_lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    @property
    def num_nodes(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        """Directed (deduplicated) adjacency entries."""
        return len(self.indices)

    def neighbors_of(self, node_id: int) -> np.ndarray:
        """Encoded neighbors of ``node_id``, sorted by decoded string."""
        return self.indices[self.indptr[node_id] : self.indptr[node_id + 1]]

    def neighbors(self, node: str) -> set[str]:
        """Decoded neighbor set of ``node`` (empty for unknown nodes)."""
        node_id = self.dictionary.get(node)
        if node_id is None:
            return set()
        strings = self.dictionary._strings_view()
        return {strings[i] for i in self.neighbors_of(node_id).tolist()}

    def degree(self, node: str) -> int:
        """Distinct-neighbor degree of ``node`` (0 for unknown nodes)."""
        node_id = self.dictionary.get(node)
        if node_id is None:
            return 0
        return int(self.indptr[node_id + 1] - self.indptr[node_id])

    def lists(self) -> tuple[list[int], list[int], list[int], list[str]]:
        """(indptr, indices, degrees, strings) as plain lists for tight loops."""
        if self._indptr_list is None:
            with self._derive_lock:
                if self._indptr_list is None:
                    # indptr is published last: it is the presence flag the
                    # lock-free fast path above checks.
                    self._indices_list = self.indices.tolist()
                    self._degrees_list = np.diff(self.indptr).tolist()
                    self._indptr_list = self.indptr.tolist()
        assert self._indices_list is not None and self._degrees_list is not None
        return (
            self._indptr_list,
            self._indices_list,
            self._degrees_list,
            self.dictionary._strings_view(),
        )

    def neighbor_string_rows(self) -> list[list[str]]:
        """Per-node decoded neighbor lists (row order), built once per snapshot.

        Lets co-neighbor counting emit string keys with no per-query decode
        pass; rows alias the dictionary's string objects, so hashing them is
        cached-hash cheap.
        """
        if self._neighbor_strings is None:
            with self._derive_lock:
                if self._neighbor_strings is None:
                    id_rows = self.neighbor_id_rows()
                    strings = self.dictionary._strings_view()
                    self._neighbor_strings = [
                        [strings[i] for i in row] for row in id_rows
                    ]
        return self._neighbor_strings

    def neighbor_id_rows(self) -> list[list[int]]:
        """Per-node encoded neighbor lists (row order), built once per snapshot."""
        if self._neighbor_ids is None:
            with self._derive_lock:
                if self._neighbor_ids is None:
                    indptr, indices, _, _ = self.lists()
                    self._neighbor_ids = [
                        indices[indptr[node] : indptr[node + 1]]
                        for node in range(self.num_nodes)
                    ]
        return self._neighbor_ids

    def second_hop_string_rows(self) -> dict[str, list[list[str]]]:
        """node string -> its neighbors' decoded neighbor rows, one per neighbor.

        The co-neighbor hot path reduces to one dict lookup plus a C-level
        count over these pre-grouped rows.  Rows are shared references into
        :meth:`neighbor_string_rows`, so the grouping costs O(edges) pointers.
        """
        if self._second_hop_rows is None:
            with self._derive_lock:
                if self._second_hop_rows is None:
                    string_rows = self.neighbor_string_rows()
                    id_rows = self.neighbor_id_rows()
                    rows_at = string_rows.__getitem__
                    self._second_hop_rows = {
                        node: [rows_at(v) for v in row]
                        for node, row in zip(self.dictionary._strings_view(), id_rows)
                    }
        return self._second_hop_rows



def save_adjacency(snapshot: CSRAdjacency, directory: str | Path) -> dict:
    """Persist a CSR snapshot as flat arrays + manifest; returns the manifest.

    Layout (all ``.npy``): ``indptr``, ``indices``, ``entity_edge_degrees``,
    plus the embedded dictionary as ``dict_blob``/``dict_offsets``.
    ``predicate_counts`` rides in the manifest's ``extra`` (it is small and
    JSON keeps it diff-able); ``store_version`` records
    :attr:`CSRAdjacency.built_version` — the invalidation token adoption
    checks against.
    """
    blob, offsets = snapshot.dictionary.to_arrays()
    return write_arrays(
        directory,
        {
            "indptr": snapshot.indptr,
            "indices": snapshot.indices,
            "entity_edge_degrees": snapshot.entity_edge_degrees,
            "dict_blob": blob,
            "dict_offsets": offsets,
        },
        kind="adjacency",
        store_version=snapshot.built_version,
        extra={"predicate_counts": snapshot.predicate_counts},
    )


def load_adjacency(
    directory: str | Path,
    *,
    expected_store_version: int | None = None,
    mmap: bool = True,
    verify: bool = True,
) -> CSRAdjacency:
    """Load a snapshot written by :func:`save_adjacency` (mmap by default).

    ``indptr``/``indices``/``entity_edge_degrees`` stay memory-mapped and
    read-only; only the dictionary materialises Python-side state.  Raises
    :class:`StoreError` on corruption and :class:`SnapshotStaleError` when
    ``expected_store_version`` doesn't match the manifest.
    """
    manifest, arrays = load_arrays(
        directory,
        kind="adjacency",
        expected_store_version=expected_store_version,
        mmap=mmap,
        verify=verify,
    )
    dictionary = Dictionary.from_arrays(arrays["dict_blob"], arrays["dict_offsets"])
    indptr = arrays["indptr"]
    if len(indptr) != len(dictionary) + 1:
        raise StoreError(
            f"corrupt adjacency snapshot {directory}: indptr rows "
            f"{len(indptr) - 1} != dictionary size {len(dictionary)}"
        )
    return CSRAdjacency(
        dictionary=dictionary,
        indptr=indptr,
        indices=arrays["indices"],
        entity_edge_degrees=arrays["entity_edge_degrees"],
        predicate_counts=dict(manifest["extra"]["predicate_counts"]),
        built_version=int(manifest["store_version"]),
    )


def build_csr(store: TripleStore) -> CSRAdjacency:
    """Build a :class:`CSRAdjacency` snapshot from the store's current state."""
    version = store.version
    dictionary = Dictionary()
    intern = dictionary.intern
    # Entities with descriptors get rows even when isolated, so traversal
    # code can encode any catalogued entity without a membership dance.
    for entity in store.entity_ids():
        intern(entity)

    sources: list[int] = []
    targets: list[int] = []
    entity_kind = ObjectKind.ENTITY
    degree_of: dict[int, int] = {}
    for fact in store.scan():
        subject_id = intern(fact.subject)
        object_id = intern(fact.obj)
        if fact.obj_kind is entity_kind:
            sources.append(subject_id)
            targets.append(object_id)
            degree_of[subject_id] = degree_of.get(subject_id, 0) + 1
            degree_of[object_id] = degree_of.get(object_id, 0) + 1
        sources.append(object_id)
        targets.append(subject_id)

    num_nodes = len(dictionary)
    entity_edge_degrees = np.zeros(num_nodes, dtype=np.int64)
    if degree_of:
        entity_edge_degrees[list(degree_of)] = list(degree_of.values())

    if not sources:
        return CSRAdjacency(
            dictionary=dictionary,
            indptr=np.zeros(num_nodes + 1, dtype=np.int64),
            indices=np.empty(0, dtype=np.int32),
            entity_edge_degrees=entity_edge_degrees,
            predicate_counts=store.predicate_counts(),
            built_version=version,
        )

    src = np.asarray(sources, dtype=np.int64)
    dst = np.asarray(targets, dtype=np.int64)
    keep = src != dst  # neighbors() discards self
    src, dst = src[keep], dst[keep]

    # Rank nodes by string so each CSR row comes out in sorted-string order.
    strings = dictionary._strings_view()
    order = sorted(range(num_nodes), key=strings.__getitem__)
    rank = np.empty(num_nodes, dtype=np.int64)
    rank[order] = np.arange(num_nodes, dtype=np.int64)
    id_at_rank = np.asarray(order, dtype=np.int64)

    # One flat sort deduplicates and orders every row at once: the composite
    # key (source, rank(target)) is unique per directed edge.
    composite = src * num_nodes + rank[dst]
    composite = np.unique(composite)
    src = composite // num_nodes
    dst = id_at_rank[composite % num_nodes]

    indptr = np.zeros(num_nodes + 1, dtype=np.int64)
    np.cumsum(np.bincount(src, minlength=num_nodes), out=indptr[1:])
    return CSRAdjacency(
        dictionary=dictionary,
        indptr=indptr,
        indices=dst.astype(np.int32),
        entity_edge_degrees=entity_edge_degrees,
        predicate_counts=store.predicate_counts(),
        built_version=version,
    )


class AdjacencyIndex:
    """Version-cached CSR snapshot of one store.

    ``current()`` is cheap when the store hasn't moved and rebuilds the
    snapshot otherwise — mirroring :meth:`AliasTable.refresh`.
    """

    def __init__(self, store: TripleStore) -> None:
        self.store = store
        self._snapshot: CSRAdjacency | None = None
        self.rebuild_count = 0
        self._rebuild_lock = threading.Lock()

    @property
    def is_stale(self) -> bool:
        """True when no snapshot exists or the store version moved."""
        return self._snapshot is None or self._snapshot.built_version != self.store.version

    def current(self) -> CSRAdjacency:
        """The up-to-date snapshot, rebuilding first when stale.

        The rebuild is lock-guarded: concurrent in-process readers of one
        engine must never observe a half-published snapshot or rebuild the
        CSR twice for the same version move.
        """
        snapshot = self._snapshot
        if snapshot is not None and snapshot.built_version == self.store.version:
            return snapshot
        with self._rebuild_lock:
            if self.is_stale:
                self._snapshot = build_csr(self.store)
                self.rebuild_count += 1
            assert self._snapshot is not None
            return self._snapshot

    def adopt(self, snapshot: CSRAdjacency) -> bool:
        """Adopt a pre-built (e.g. mmap-loaded) snapshot; True on success.

        Adoption only succeeds when the snapshot was built at the store's
        *current* version — otherwise it is ignored and the next
        :meth:`current` call rebuilds from the live store, the same
        fallback contract ``AliasTable.refresh`` applies to stale state.
        """
        if snapshot.built_version != self.store.version:
            return False
        self._snapshot = snapshot
        return True

    def peek(self) -> CSRAdjacency | None:
        """The snapshot only if already built and fresh; never rebuilds.

        For callers that can use a warm snapshot opportunistically but
        shouldn't pay a build for it (a CSR build dwarfs e.g. a plain
        predicate-count sweep).
        """
        return None if self.is_stale else self._snapshot
