"""Facts: the atomic unit of the knowledge graph.

A :class:`Fact` is a subject–predicate–object triple enriched with the
metadata Saga tracks for every edge: provenance (which sources asserted it),
a confidence score, and a last-updated timestamp used for staleness analysis
in ODKE (§4).  Objects are either references to other entities or typed
literals (§2 motivates filtering literal-valued facts out of embedding
training views).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum
from typing import Any

from repro.common import ids
from repro.common.errors import StoreError


class ObjectKind(str, Enum):
    """Whether a fact's object is another entity or a literal value."""

    ENTITY = "entity"
    LITERAL = "literal"


class LiteralType(str, Enum):
    """Datatype tag for literal objects.

    ``NUMBER`` and ``IDENTIFIER`` literals are the canonical examples of
    facts the paper filters from embedding views (heights, follower counts,
    national-library ids).
    """

    STRING = "string"
    NUMBER = "number"
    DATE = "date"
    IDENTIFIER = "identifier"


@dataclass(frozen=True)
class Fact:
    """An edge of the knowledge graph.

    ``obj`` holds an entity id when ``obj_kind`` is ENTITY, otherwise the
    literal's string rendering (numbers use ``repr`` of the float/int, dates
    use ISO-8601).  Frozen so facts are hashable and safely shared between
    stores, views and sync deltas.
    """

    subject: str
    predicate: str
    obj: str
    obj_kind: ObjectKind = ObjectKind.ENTITY
    literal_type: LiteralType | None = None
    confidence: float = 1.0
    sources: tuple[str, ...] = field(default=())
    updated_at: float = 0.0

    def __post_init__(self) -> None:
        if not ids.is_entity(self.subject):
            raise StoreError(f"fact subject must be an entity id: {self.subject!r}")
        if not ids.is_predicate(self.predicate):
            raise StoreError(f"fact predicate must be a predicate id: {self.predicate!r}")
        if self.obj_kind is ObjectKind.ENTITY:
            if not ids.is_entity(self.obj):
                raise StoreError(f"entity-valued fact has non-entity object: {self.obj!r}")
            if self.literal_type is not None:
                raise StoreError("entity-valued fact must not carry a literal_type")
        elif self.literal_type is None:
            raise StoreError("literal-valued fact must carry a literal_type")
        if not 0.0 <= self.confidence <= 1.0:
            raise StoreError(f"confidence must be in [0, 1], got {self.confidence}")

    @property
    def key(self) -> tuple[str, str, str]:
        """The (s, p, o) identity of the fact, ignoring metadata."""
        return (self.subject, self.predicate, self.obj)

    @property
    def is_literal(self) -> bool:
        """True when the object is a literal value."""
        return self.obj_kind is ObjectKind.LITERAL

    @property
    def is_numeric(self) -> bool:
        """True for number-typed literal facts (embedding-view filter target)."""
        return self.literal_type is LiteralType.NUMBER

    def with_metadata(
        self,
        confidence: float | None = None,
        sources: tuple[str, ...] | None = None,
        updated_at: float | None = None,
    ) -> "Fact":
        """Copy of this fact with some metadata fields replaced."""
        return replace(
            self,
            confidence=self.confidence if confidence is None else confidence,
            sources=self.sources if sources is None else sources,
            updated_at=self.updated_at if updated_at is None else updated_at,
        )

    def to_dict(self) -> dict[str, Any]:
        """JSON-serialisable representation (see :mod:`repro.common.serialization`)."""
        return {
            "s": self.subject,
            "p": self.predicate,
            "o": self.obj,
            "kind": self.obj_kind.value,
            "literal_type": self.literal_type.value if self.literal_type else None,
            "confidence": self.confidence,
            "sources": list(self.sources),
            "updated_at": self.updated_at,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, Any]) -> "Fact":
        """Inverse of :meth:`to_dict`."""
        literal_type = payload.get("literal_type")
        return cls(
            subject=payload["s"],
            predicate=payload["p"],
            obj=payload["o"],
            obj_kind=ObjectKind(payload.get("kind", "entity")),
            literal_type=LiteralType(literal_type) if literal_type else None,
            confidence=payload.get("confidence", 1.0),
            sources=tuple(payload.get("sources", ())),
            updated_at=payload.get("updated_at", 0.0),
        )


def entity_fact(
    subject: str,
    predicate: str,
    obj: str,
    confidence: float = 1.0,
    sources: tuple[str, ...] = (),
    updated_at: float = 0.0,
) -> Fact:
    """Convenience constructor for an entity-valued fact."""
    return Fact(
        subject=subject,
        predicate=predicate,
        obj=obj,
        obj_kind=ObjectKind.ENTITY,
        confidence=confidence,
        sources=sources,
        updated_at=updated_at,
    )


def literal_fact(
    subject: str,
    predicate: str,
    value: Any,
    literal_type: LiteralType,
    confidence: float = 1.0,
    sources: tuple[str, ...] = (),
    updated_at: float = 0.0,
) -> Fact:
    """Convenience constructor for a literal-valued fact.

    Numbers are rendered via ``repr`` so ints and floats round-trip exactly.
    """
    if literal_type is LiteralType.NUMBER and isinstance(value, (int, float)):
        rendered = repr(value)
    else:
        rendered = str(value)
    return Fact(
        subject=subject,
        predicate=predicate,
        obj=rendered,
        obj_kind=ObjectKind.LITERAL,
        literal_type=literal_type,
        confidence=confidence,
        sources=sources,
        updated_at=updated_at,
    )
