"""Text utilities shared by annotation, extraction and on-device matching.

These are intentionally lightweight (no external NLP dependency): a unicode
aware tokenizer, normalisation for alias matching, character n-grams for
fuzzy name similarity and Jaccard/Dice measures used by the reranker and the
on-device entity matcher.
"""

from __future__ import annotations

import re
import unicodedata
from collections import Counter
from collections.abc import Iterable, Sequence

_TOKEN_RE = re.compile(r"[A-Za-z0-9']+")
_WS_RE = re.compile(r"\s+")

# Small multilingual stopword set; the annotation service only needs to keep
# contextual content words, not to be linguistically complete.
STOPWORDS = frozenset(
    """a an and are as at be but by for from has have he her his i in is it its
    of on or she that the their they this to was were will with el la le les de
    der die das und un une""".split()
)


def tokenize(text: str) -> list[str]:
    """Lowercased word tokens of ``text``.

    >>> tokenize("Joe Root hits a hundred!")
    ['joe', 'root', 'hits', 'a', 'hundred']
    """
    return [match.group(0).lower() for match in _TOKEN_RE.finditer(text)]


def tokenize_with_offsets(text: str) -> list[tuple[str, int, int]]:
    """Tokens with ``(token, start, end)`` character offsets, case preserved."""
    return [
        (match.group(0), match.start(), match.end())
        for match in _TOKEN_RE.finditer(text)
    ]


def content_tokens(text: str) -> list[str]:
    """Tokens of ``text`` with stopwords removed."""
    return [token for token in tokenize(text) if token not in STOPWORDS]


def normalize_name(name: str) -> str:
    """Canonical form for alias-table keys and name comparison.

    Strips accents, lowercases, collapses whitespace and drops punctuation:

    >>> normalize_name("  Benicio  del Toro ")
    'benicio del toro'
    """
    decomposed = unicodedata.normalize("NFKD", name)
    ascii_only = decomposed.encode("ascii", "ignore").decode("ascii")
    lowered = ascii_only.lower()
    cleaned = re.sub(r"[^\w\s]", " ", lowered)
    return _WS_RE.sub(" ", cleaned).strip()


def char_ngrams(text: str, n: int = 3) -> Counter[str]:
    """Multiset of character ``n``-grams of the normalised text.

    Pads with ``#`` so short strings still produce grams; used for fuzzy
    name similarity in candidate generation and on-device matching.
    """
    normalized = normalize_name(text)
    padded = "#" * (n - 1) + normalized + "#" * (n - 1)
    if len(padded) < n:
        return Counter()
    return Counter(padded[i : i + n] for i in range(len(padded) - n + 1))


def dice_similarity(a: Counter[str], b: Counter[str]) -> float:
    """Dice coefficient of two multisets, in ``[0, 1]``."""
    if not a or not b:
        return 0.0
    overlap = sum((a & b).values())
    return 2.0 * overlap / (sum(a.values()) + sum(b.values()))


def name_similarity(left: str, right: str, n: int = 3) -> float:
    """Fuzzy similarity of two names via character n-gram Dice.

    >>> name_similarity("Tim Smith", "tim smith") == 1.0
    True
    """
    return dice_similarity(char_ngrams(left, n), char_ngrams(right, n))


def jaccard(a: Iterable[str], b: Iterable[str]) -> float:
    """Jaccard similarity of two token collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 0.0
    return len(set_a & set_b) / len(set_a | set_b)


def window(tokens: Sequence[str], center: int, radius: int) -> list[str]:
    """Tokens within ``radius`` positions of ``center`` (center excluded)."""
    lo = max(0, center - radius)
    hi = min(len(tokens), center + radius + 1)
    return [tokens[i] for i in range(lo, hi) if i != center]


def sentences(text: str) -> list[str]:
    """Naive sentence split on ``.!?`` boundaries, whitespace trimmed."""
    parts = re.split(r"(?<=[.!?])\s+", text.strip())
    return [part for part in parts if part]


def truncate(text: str, max_chars: int) -> str:
    """Truncate ``text`` to ``max_chars`` with an ellipsis when shortened."""
    if len(text) <= max_chars:
        return text
    return text[: max(0, max_chars - 1)] + "…"
