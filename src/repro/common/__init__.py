"""Shared infrastructure: ids, errors, rng, text, kvstore, metrics, io."""

from repro.common.errors import ReproError
from repro.common.growable import GrowableMatrix
from repro.common.metrics import MetricsRegistry

__all__ = ["GrowableMatrix", "MetricsRegistry", "ReproError"]
