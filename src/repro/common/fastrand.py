"""Fast bounded-integer sampling that replays ``Generator.integers`` exactly.

The graph engine's random walks must stay byte-identical per seed across
refactors, which pins the draw sequence to ``numpy.random.Generator.integers``.
Calling that method once per walk step costs ~1.5 microseconds of Python/C
dispatch — more than the walk step itself once adjacency is a CSR slice.

NumPy (>= 1.17) implements bounded draws for ranges that fit in 32 bits with
Lemire's multiply-shift rejection over 32-bit halves of the 64-bit PCG64
output stream, low half first (``pcg64_next32`` buffers the high half).  That
algorithm is tiny, so we replicate it in Python over raw 64-bit words
harvested in bulk from an identically-seeded generator: one vectorised
``integers(0, 2**64)`` call refills the buffer for hundreds of draws.

Because this ties determinism to a NumPy implementation detail,
:func:`lemire_matches_numpy` empirically verifies the replication at first
use; callers fall back to per-call ``Generator.integers`` when it fails
(correct, just slower).
"""

from __future__ import annotations

import numpy as np

_REFILL_WORDS = 256  # 64-bit words per refill -> 512 buffered 32-bit draws

MASK32 = 0xFFFFFFFF


def refill_halves(rng: np.random.Generator) -> list[int]:
    """Next batch of buffered 32-bit stream halves, low half of each word first.

    This is the exact order ``pcg64_next32`` consumes a 64-bit word, so a
    consumer drawing from this buffer tracks the generator's 32-bit stream.
    Shared by :class:`Lemire32` and the graph engine's inlined walk sampler —
    the two must consume the identical stream.
    """
    halves: list[int] = []
    for word in rng.integers(0, 2**64, size=_REFILL_WORDS, dtype=np.uint64).tolist():
        halves.append(word & MASK32)
        halves.append(word >> 32)
    return halves


class Lemire32:
    """Replay of ``rng.integers(n)`` draws for ``1 <= n < 2**32``.

    Consumes the *same* underlying bit stream as the wrapped generator would,
    so interleaving a ``Lemire32`` with direct ``integers`` calls on the same
    generator is not supported — hand the sampler a dedicated substream.
    """

    __slots__ = ("_rng", "_half", "_pos")

    def __init__(self, rng: np.random.Generator) -> None:
        self._rng = rng
        self._half: list[int] = []
        self._pos = 0

    def randbelow(self, n: int) -> int:
        """A draw identical to ``int(generator.integers(n))``.

        NOTE: ``GraphEngine._walks_lemire`` inlines this exact arithmetic
        (multiply-shift, leftover/threshold rejection) for its hot loop; the
        two must stay in lockstep.  The walk reference-replay tests in
        ``tests/kg/test_encoding_adjacency.py`` pin both against the real
        ``Generator.integers``.
        """
        if n <= 1:
            return 0
        half, pos = self._half, self._pos
        if pos >= len(half):
            half = self._half = refill_halves(self._rng)
            pos = 0
        m = half[pos] * n
        pos += 1
        leftover = m & MASK32
        if leftover < n:
            threshold = (2**32 - n) % n
            while leftover < threshold:
                if pos >= len(half):
                    half = self._half = refill_halves(self._rng)
                    pos = 0
                m = half[pos] * n
                pos += 1
                leftover = m & MASK32
        self._pos = pos
        return m >> 32


_lemire_ok: bool | None = None


def lemire_matches_numpy() -> bool:
    """Whether :class:`Lemire32` reproduces this NumPy's ``integers`` stream.

    Runs once per process (~100 microseconds) and caches the verdict.  Checks
    a spread of bounds including powers of two and degree-one no-ops.
    """
    global _lemire_ok
    if _lemire_ok is None:
        bounds = [7, 1, 2, 3, 4, 8, 1, 5, 65536, 65537, 2**31, 6, 9, 1000] * 8
        reference = np.random.default_rng(20230518)
        truth = [int(reference.integers(bound)) for bound in bounds]
        sampler = Lemire32(np.random.default_rng(20230518))
        _lemire_ok = truth == [sampler.randbelow(bound) for bound in bounds]
    return _lemire_ok
