"""Namespaced identifiers for entities, predicates, types and documents.

The platform follows Saga's convention of opaque string identifiers with a
namespace prefix::

    entity:Q42            a knowledge-graph entity
    predicate:occupation  a predicate (edge label)
    type:person           an ontology type
    doc:web/0000123       a web document
    device:phone-1        a device in the on-device subsystem

Identifiers are plain strings (cheap to hash, serialize and log); this module
centralises construction and validation so malformed ids are rejected at the
edges of the system rather than deep inside query processing.
"""

from __future__ import annotations

import re

from repro.common.errors import IdentifierError

ENTITY_NS = "entity"
PREDICATE_NS = "predicate"
TYPE_NS = "type"
DOC_NS = "doc"
DEVICE_NS = "device"
SOURCE_NS = "source"

_KNOWN_NAMESPACES = frozenset(
    {ENTITY_NS, PREDICATE_NS, TYPE_NS, DOC_NS, DEVICE_NS, SOURCE_NS}
)

# Local part: word characters plus a small set of safe punctuation. Slashes
# allow hierarchical document ids such as ``doc:web/123``.
_LOCAL_RE = re.compile(r"^[\w][\w\-./+]*$")


def make_id(namespace: str, local: str) -> str:
    """Build a namespaced identifier, validating both parts.

    >>> make_id("entity", "Q42")
    'entity:Q42'
    """
    if namespace not in _KNOWN_NAMESPACES:
        raise IdentifierError(f"unknown namespace {namespace!r}")
    if not _LOCAL_RE.match(local):
        raise IdentifierError(f"malformed local id {local!r}")
    return f"{namespace}:{local}"


def split_id(identifier: str) -> tuple[str, str]:
    """Split ``namespace:local`` into its parts, validating the namespace.

    >>> split_id("predicate:occupation")
    ('predicate', 'occupation')
    """
    namespace, sep, local = identifier.partition(":")
    if not sep or not local:
        raise IdentifierError(f"identifier {identifier!r} has no namespace")
    if namespace not in _KNOWN_NAMESPACES:
        raise IdentifierError(f"unknown namespace {namespace!r} in {identifier!r}")
    return namespace, local


def namespace_of(identifier: str) -> str:
    """Return the namespace of ``identifier``."""
    return split_id(identifier)[0]


def local_of(identifier: str) -> str:
    """Return the local part of ``identifier``."""
    return split_id(identifier)[1]


def is_entity(identifier: str) -> bool:
    """True if ``identifier`` is an entity id (does not raise)."""
    return identifier.startswith(ENTITY_NS + ":")


def is_predicate(identifier: str) -> bool:
    """True if ``identifier`` is a predicate id (does not raise)."""
    return identifier.startswith(PREDICATE_NS + ":")


def is_type(identifier: str) -> bool:
    """True if ``identifier`` is a type id (does not raise)."""
    return identifier.startswith(TYPE_NS + ":")


def is_doc(identifier: str) -> bool:
    """True if ``identifier`` is a document id (does not raise)."""
    return identifier.startswith(DOC_NS + ":")


def entity_id(local: str) -> str:
    """Shorthand for :func:`make_id` with the entity namespace."""
    return make_id(ENTITY_NS, local)


def predicate_id(local: str) -> str:
    """Shorthand for :func:`make_id` with the predicate namespace."""
    return make_id(PREDICATE_NS, local)


def type_id(local: str) -> str:
    """Shorthand for :func:`make_id` with the type namespace."""
    return make_id(TYPE_NS, local)


def doc_id(local: str) -> str:
    """Shorthand for :func:`make_id` with the document namespace."""
    return make_id(DOC_NS, local)


def device_id(local: str) -> str:
    """Shorthand for :func:`make_id` with the device namespace."""
    return make_id(DEVICE_NS, local)


def source_id(local: str) -> str:
    """Shorthand for :func:`make_id` with the source namespace."""
    return make_id(SOURCE_NS, local)
