"""Zero-copy snapshot persistence: versioned flat-array files + manifest.

The serving story of the paper (§4) assumes immutable graph snapshots that
workers can load near-instantly and share read-only.  Our columnar layers
(dictionary, CSR adjacency, annotation context matrix) are each a handful
of flat numpy arrays, so persistence is deliberately dumb: one ``.npy``
file per array next to a ``manifest.json`` that records

* ``format_version`` — bumped when the file layout changes;
* ``kind`` — which layer this directory holds (``"adjacency"``, ...);
* ``store_version`` — the :attr:`TripleStore.version` the arrays were
  built at, the same invalidation token ``AliasTable.refresh`` and
  ``AdjacencyIndex`` use;
* per-array ``shape``/``dtype``/``sha256`` so corruption and truncation
  are detected at load instead of surfacing as garbage query results;
* free-form ``extra`` metadata for the owning layer.

Loading goes through ``np.load(..., mmap_mode="r")`` by default: cold
start maps pages instead of rebuilding Python structures, and many worker
processes share one page-cache copy.  Mapped arrays are read-only — every
consumer treats snapshots as immutable, and growable wrappers copy on
first write.

String columns (the dictionary, the context row map) are packed as a
UTF-8 byte blob plus an int64 offsets array (:func:`pack_strings`).
Small non-array sidecars (the alias-table state) are marshalled blobs
written through :func:`write_marshal`/:func:`read_marshal`, checksummed
the same way.
"""

from __future__ import annotations

import hashlib
import json
import marshal
import sys
from pathlib import Path
from typing import Any

import numpy as np

from repro.common.errors import StoreError

FORMAT_VERSION = 1
MANIFEST_NAME = "manifest.json"

# marshal data is only guaranteed stable for one (python, marshal) pair;
# a mismatch at load is a *stale* condition (rebuild), never an error.
_MARSHAL_COMPAT = [sys.version_info[0], sys.version_info[1], marshal.version]


class SnapshotStaleError(StoreError):
    """A snapshot exists but was built for a different store version.

    Callers treat this as "rebuild from the live store", not as a failure —
    the same contract as a stale :class:`~repro.kg.adjacency.AdjacencyIndex`.
    """


def file_sha256(path: Path) -> str:
    """Hex sha256 of a file's bytes."""
    digest = hashlib.sha256()
    with path.open("rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def pack_strings(strings: list[str]) -> tuple[np.ndarray, np.ndarray]:
    """Pack a string list into (uint8 blob, int64 offsets) arrays.

    ``offsets`` has ``len(strings) + 1`` entries; string ``i`` is
    ``blob[offsets[i]:offsets[i + 1]]`` decoded as UTF-8.
    """
    encoded = [s.encode("utf-8") for s in strings]
    offsets = np.zeros(len(encoded) + 1, dtype=np.int64)
    if encoded:
        np.cumsum([len(b) for b in encoded], out=offsets[1:])
    blob = np.frombuffer(b"".join(encoded), dtype=np.uint8).copy()
    return blob, offsets


def unpack_strings(blob: np.ndarray, offsets: np.ndarray) -> list[str]:
    """Inverse of :func:`pack_strings`."""
    raw = blob.tobytes()
    bounds = offsets.tolist()
    return [
        raw[start:stop].decode("utf-8")
        for start, stop in zip(bounds, bounds[1:])
    ]


def write_arrays(
    directory: str | Path,
    arrays: dict[str, np.ndarray],
    *,
    kind: str,
    store_version: int,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Write ``arrays`` as ``<name>.npy`` files + a manifest; returns it."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    files: dict[str, dict[str, Any]] = {}
    for name, array in arrays.items():
        path = directory / f"{name}.npy"
        np.save(path, np.ascontiguousarray(array), allow_pickle=False)
        files[name] = {
            "file": path.name,
            "shape": list(array.shape),
            "dtype": str(array.dtype),
            "sha256": file_sha256(path),
        }
    manifest = {
        "format_version": FORMAT_VERSION,
        "kind": kind,
        "store_version": store_version,
        "arrays": files,
        "extra": extra or {},
    }
    (directory / MANIFEST_NAME).write_text(
        json.dumps(manifest, indent=2, sort_keys=True), encoding="utf-8"
    )
    return manifest


def read_manifest(directory: str | Path, *, kind: str) -> dict[str, Any]:
    """Read and validate a layer manifest (format + kind)."""
    directory = Path(directory)
    path = directory / MANIFEST_NAME
    if not path.exists():
        raise StoreError(f"not a snapshot layer: {directory} (missing {MANIFEST_NAME})")
    try:
        manifest = json.loads(path.read_text(encoding="utf-8"))
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise StoreError(f"corrupt snapshot manifest {path}: {exc}") from None
    if manifest.get("format_version") != FORMAT_VERSION:
        raise StoreError(
            f"unsupported snapshot format {manifest.get('format_version')!r} "
            f"in {directory} (supported: {FORMAT_VERSION})"
        )
    if manifest.get("kind") != kind:
        raise StoreError(
            f"snapshot kind mismatch in {directory}: "
            f"expected {kind!r}, found {manifest.get('kind')!r}"
        )
    return manifest


def load_arrays(
    directory: str | Path,
    *,
    kind: str,
    expected_store_version: int | None = None,
    mmap: bool = True,
    verify: bool = True,
) -> tuple[dict[str, Any], dict[str, np.ndarray]]:
    """Load a layer written by :func:`write_arrays`.

    Returns ``(manifest, arrays)``.  Raises :class:`StoreError` for
    missing/corrupt/truncated files or checksum mismatches, and
    :class:`SnapshotStaleError` when ``expected_store_version`` is given
    and the manifest was built for a different store version (callers
    fall back to a rebuild in that case).
    """
    directory = Path(directory)
    manifest = read_manifest(directory, kind=kind)
    if (
        expected_store_version is not None
        and manifest.get("store_version") != expected_store_version
    ):
        raise SnapshotStaleError(
            f"snapshot {directory} built at store version "
            f"{manifest.get('store_version')!r}, expected {expected_store_version}"
        )
    arrays: dict[str, np.ndarray] = {}
    for name, spec in manifest["arrays"].items():
        path = directory / spec["file"]
        if not path.exists():
            raise StoreError(f"snapshot array missing: {path}")
        if verify and file_sha256(path) != spec["sha256"]:
            raise StoreError(f"snapshot checksum mismatch: {path}")
        try:
            array = np.load(
                path, mmap_mode="r" if mmap else None, allow_pickle=False
            )
        except (ValueError, OSError, EOFError) as exc:
            raise StoreError(f"corrupt snapshot array {path}: {exc}") from None
        if list(array.shape) != spec["shape"] or str(array.dtype) != spec["dtype"]:
            raise StoreError(
                f"snapshot array {path} does not match its manifest: "
                f"shape {list(array.shape)} dtype {array.dtype}, "
                f"expected {spec['shape']} {spec['dtype']}"
            )
        arrays[name] = array
    return manifest, arrays


def write_marshal(path: str | Path, payload: Any) -> dict[str, Any]:
    """Write a marshalled sidecar blob; returns its manifest entry."""
    path = Path(path)
    path.write_bytes(marshal.dumps(payload))
    return {
        "file": path.name,
        "sha256": file_sha256(path),
        "marshal_compat": _MARSHAL_COMPAT,
    }


def read_marshal(path: str | Path, spec: dict[str, Any]) -> Any:
    """Read a marshalled sidecar written by :func:`write_marshal`.

    Raises :class:`SnapshotStaleError` when the blob was written by an
    incompatible python/marshal version (rebuild instead of guessing),
    and :class:`StoreError` for corruption.
    """
    path = Path(path)
    if not spec or "sha256" not in spec:
        # A manifest without a sidecar spec is corrupt, not stale — the
        # compat check below must not mask it as a silent rebuild.
        raise StoreError(f"snapshot sidecar spec missing for {path}")
    if spec.get("marshal_compat") != _MARSHAL_COMPAT:
        raise SnapshotStaleError(
            f"marshal sidecar {path} written by incompatible python "
            f"{spec.get('marshal_compat')!r} (running {_MARSHAL_COMPAT})"
        )
    if not path.exists():
        raise StoreError(f"snapshot sidecar missing: {path}")
    if file_sha256(path) != spec.get("sha256"):
        raise StoreError(f"snapshot checksum mismatch: {path}")
    try:
        return marshal.loads(path.read_bytes())
    except (ValueError, EOFError, TypeError) as exc:
        raise StoreError(f"corrupt snapshot sidecar {path}: {exc}") from None
