"""Span-based request tracing for the serving + growth stack.

The paper's production platform watches a request cross many moving
parts — gateway admission, cache probes, scatter/gather over shards,
worker fleets, micro-batch flushes, generation swaps (§3.1, §4).  A flat
``timings`` dict cannot say *where inside the fan-out* the time went, or
which worker process answered which shard.  This module gives every
request one **trace**: a tree of spans with wall and exclusive times,
per-span attributes and point-in-time events, assembled into a bounded
in-memory ring the gateway exposes at ``GET /debug/traces``.

Design contracts (mirroring :mod:`repro.serving.faults`):

* **One global arming point** — :func:`arm` installs a :class:`Tracer`
  process-wide; with none armed every hook (:func:`span`,
  :func:`event`, :func:`current_context`) is a single global ``None``
  check.  Serving hot paths pay nothing until someone turns tracing on.
* **contextvars propagation** — the current span rides a
  :class:`~contextvars.ContextVar`, so nesting works across function
  calls, ``contextvars.copy_context()`` carries it into executor
  threads, and asyncio tasks inherit it for free.
* **Cross-process stitching** — a span's identity is a picklable
  :class:`TraceContext`.  The pool's dispatch path ships the current
  context to subprocess workers, which record their spans into a local
  *collector* tracer (``ring_capacity=0``) and return them alongside
  the result; the parent :meth:`Tracer.adopt`\\ s them into the live
  trace.  The same context travels the JSON wire protocol as an
  optional additive ``trace`` envelope field.
* **Head sampling** — ``Tracer(sample_every=N)`` traces every Nth
  locally-rooted request (deterministic counter, default 1 = all).  An
  unsampled root pins a suppression sentinel as the current context, so
  its whole subtree costs one ContextVar read per hook — full ~13-span
  tracing of a sub-millisecond fan-out costs a few percent of the
  request, which is exactly the tax sampling exists to amortise.
  Remotely seeded spans (a ``TraceContext`` parent) always record: the
  upstream tracer already made the decision for the whole trace.
* **Exclusive times** — at assembly each span's ``exclusive_ms`` is its
  wall time minus its direct children's wall time (clamped at zero), so
  a trace's self-times reconcile with the envelope's ``timings`` keys
  (stage spans additionally carry the exact envelope value as a
  ``stage_ms`` attribute).

Traces complete when their *root* span (the span that opened the trace
in this tracer) finishes; completed traces land in a bounded ring of
recent traces plus a slowest-N heap (the slow-query log).  Incomplete
traces are bounded too (``max_live``/``max_spans`` caps with drop
counters) — an abandoned root can never grow memory without bound.
"""

from __future__ import annotations

import heapq
import itertools
import os
import threading
import time
from collections import deque
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass
from typing import Any, Iterator

__all__ = [
    "Span",
    "TraceContext",
    "Tracer",
    "active",
    "arm",
    "armed",
    "current_context",
    "current_span",
    "disarm",
    "event",
    "seeded",
    "span",
    "using",
]

# Wire key of the optional trace field in a protocol-1 request envelope.
TRACE_FIELD = "trace"

_ID_COUNTER = itertools.count(1)  # .__next__ is atomic in CPython

# The pid is cached as a preformatted prefix: span creation is on the
# serving hot path and must not pay two getpid syscalls per span.  A
# forked child refreshes the cache (spawned children re-import fresh);
# the counter value is inherited either way, but the differing prefix
# keeps ids unique across processes.
_PID = os.getpid()
_ID_PREFIX = f"{_PID:x}-"


def _refresh_pid() -> None:
    global _PID, _ID_PREFIX
    _PID = os.getpid()
    _ID_PREFIX = f"{_PID:x}-"


if hasattr(os, "register_at_fork"):
    os.register_at_fork(after_in_child=_refresh_pid)


def _new_id() -> str:
    """A process-unique id (pid-prefixed so child workers never collide)."""
    return _ID_PREFIX + format(next(_ID_COUNTER), "x")


# Wall-clock anchor: spans read one monotonic clock at each edge and
# derive their unix start time as ``anchor + start_perf`` on demand, so
# span creation pays a single clock read instead of two.  The anchor is
# per-process (perf_counter bases differ across processes) which is
# exactly what cross-process trace assembly needs — each process's
# records carry comparable absolute times.
_UNIX_ANCHOR = time.time() - time.perf_counter()


@dataclass(frozen=True)
class TraceContext:
    """The picklable identity of a position in a trace.

    Everything cross-boundary propagation needs: which trace, and which
    span new work should parent under.  Ships through pickle (process
    pools) and JSON (the protocol envelope's ``trace`` field).
    """

    trace_id: str
    span_id: str

    def to_wire(self) -> dict[str, str]:
        return {"trace_id": self.trace_id, "span_id": self.span_id}

    @classmethod
    def from_wire(cls, raw: Any) -> "TraceContext | None":
        """Parse a wire ``trace`` field; ``None`` on anything malformed.

        Trace context is advisory metadata — a bad field must never fail
        the request it rode in on.
        """
        if not isinstance(raw, dict):
            return None
        trace_id = raw.get("trace_id")
        span_id = raw.get("span_id")
        if not (isinstance(trace_id, str) and trace_id) or not (
            isinstance(span_id, str) and span_id
        ):
            return None
        return cls(trace_id=trace_id, span_id=span_id)


class Span:
    """One timed operation in a trace (also its own context manager).

    Attributes are free-form JSON-native values; events are timestamped
    point-in-time markers (retries, breaker transitions, sheds) that
    belong to a span without deserving one of their own.

    The serving hot path opens ~13 spans per fan-out request, so
    creation and finish are kept to the bare minimum: one clock read per
    edge, a parent held by *reference* (``span_id`` strings are
    allocated lazily — most spans only ever need one at assembly), and a
    direct reference to the owning trace's span bucket so a non-root
    finish is a plain list append with no lock and no dict lookup.
    """

    __slots__ = (
        "tracer",
        "trace_id",
        "parent",
        "name",
        "pid",
        "attributes",
        "events",
        "start_perf",
        "wall_ms",
        "root",
        "bucket",
        "_span_id",
        "_token",
        "_finished",
    )

    recording = True

    def __init__(
        self,
        tracer: "Tracer",
        name: str,
        attributes: dict[str, Any] | None,
        trace_id: str,
        parent: "Span | str | None",
        root: bool,
        bucket: list[Any],
    ) -> None:
        self.tracer = tracer
        self.trace_id = trace_id
        self.parent = parent
        self.name = name
        self.pid = _PID
        # Both maps are lazy (None until first write): most spans carry a
        # couple of attributes at most and no events, and surviving
        # allocations are what drive gc pressure on the serving hot path.
        self.attributes: dict[str, Any] | None = attributes
        self.events: list[dict[str, Any]] | None = None
        self.root = root
        self.bucket = bucket
        self._span_id: str | None = None
        self._token = None
        self._finished = False
        self.wall_ms = 0.0
        self.start_perf = time.perf_counter()

    @property
    def span_id(self) -> str:
        """This span's id, allocated on first use."""
        span_id = self._span_id
        if span_id is None:
            span_id = self._span_id = _new_id()
        return span_id

    @property
    def parent_id(self) -> str | None:
        """The parent span's id (local parent, remote context, or none)."""
        parent = self.parent
        if parent is None:
            return None
        if isinstance(parent, str):
            return parent
        return parent.span_id

    @property
    def start_unix_s(self) -> float:
        return _UNIX_ANCHOR + self.start_perf

    def context(self) -> TraceContext:
        """This span's identity as a propagatable :class:`TraceContext`."""
        return TraceContext(self.trace_id, self.span_id)

    def set_attribute(self, key: str, value: Any) -> None:
        attributes = self.attributes
        if attributes is None:
            self.attributes = {key: value}
        else:
            attributes[key] = value

    def add_event(self, name: str, **attributes: Any) -> None:
        events = self.events
        if events is None:
            events = self.events = []
        events.append(
            {
                "name": name,
                "at_ms": (time.perf_counter() - self.start_perf) * 1000.0,
                **attributes,
            }
        )

    def finish(self) -> None:
        """End the span (idempotent) and hand it to the tracer."""
        if self._finished:
            return
        self._finished = True
        self.wall_ms = (time.perf_counter() - self.start_perf) * 1000.0
        if self._token is not None:
            try:
                _CURRENT.reset(self._token)
            except ValueError:
                # Finished from a different context (e.g. a done-callback
                # thread); the activation simply expires with its context.
                pass
            self._token = None
        if not self.root:
            # Inlined Tracer._record fast path — one call fewer on the
            # per-span hot path.
            bucket = self.bucket
            if len(bucket) < self.tracer.max_spans:
                bucket.append(self)
            else:
                self.tracer._drop_overflow()
            return
        self.tracer._record(self)

    def __enter__(self) -> "Span":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        if exc_info and exc_info[0] is not None:
            attributes = self.attributes
            if attributes is None:
                self.attributes = {"error": exc_info[0].__name__}
            else:
                attributes.setdefault("error", exc_info[0].__name__)
        self.finish()


class _NoopSpan:
    """The disarmed stand-in: every method is a no-op, shared singleton."""

    __slots__ = ()

    recording = False
    trace_id = ""
    span_id = ""

    def context(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def finish(self) -> None:
        pass

    def __enter__(self) -> "_NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        pass


_NOOP = _NoopSpan()

# The current position in a trace: a live Span (local work), a
# TraceContext (remotely seeded, e.g. inside a subprocess worker or an
# HTTP handler relaying a client's context), the _SUPPRESSED sentinel
# (inside an unsampled request), or None (no trace).
_CURRENT: ContextVar[Any] = ContextVar("kg-trace-current", default=None)

# Sentinel pinned as the current context under an unsampled trace root:
# descendant hooks see it and return the shared no-op span after one
# ContextVar read, instead of each re-running the sampling decision (and
# each opening a fresh unsampled root).
_SUPPRESSED = object()


class _SuppressedSpan:
    """The root of an *unsampled* trace (``Tracer(sample_every=N)``).

    Behaves exactly like the no-op span — records nothing, carries no
    ids — but owns the context token that keeps :data:`_SUPPRESSED`
    current for the duration of the request, so the whole span tree
    below an unsampled root costs one ContextVar read per hook.
    """

    __slots__ = ("_token",)

    recording = False
    trace_id = ""
    span_id = ""

    def __init__(self, activate: bool) -> None:
        self._token = _CURRENT.set(_SUPPRESSED) if activate else None

    def context(self) -> None:
        return None

    def set_attribute(self, key: str, value: Any) -> None:
        pass

    def add_event(self, name: str, **attributes: Any) -> None:
        pass

    def finish(self) -> None:
        token = self._token
        if token is not None:
            self._token = None
            try:
                _CURRENT.reset(token)
            except ValueError:
                pass

    def __enter__(self) -> "_SuppressedSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.finish()


class Tracer:
    """Collects finished spans into traces; bounded ring + slowest-N log.

    ``ring_capacity=0`` makes a pure *collector*: spans accumulate and
    :meth:`drain` hands them off — the mode subprocess workers use to
    ship their spans back to the parent's tracer.
    """

    def __init__(
        self,
        *,
        ring_capacity: int = 128,
        slow_capacity: int = 16,
        max_live: int = 256,
        max_spans: int = 512,
        sample_every: int = 1,
    ) -> None:
        self.ring_capacity = ring_capacity
        self.slow_capacity = slow_capacity
        self.max_live = max_live
        self.max_spans = max_spans
        # Head sampling: trace every Nth *locally rooted* request (a
        # deterministic counter, not a coin flip).  1 = trace everything
        # (the default — tests, smokes and /debug/traces-focused debug
        # sessions want every request).  Remotely seeded work (a
        # TraceContext parent) always records: the upstream tracer made
        # the sampling decision when it opened the trace.
        self.sample_every = max(1, int(sample_every))
        self._sample_seq = itertools.count()
        self._lock = threading.Lock()
        self._live: dict[str, list[Any]] = {}
        self._recent: deque[dict[str, Any]] = deque(maxlen=max(ring_capacity, 1))
        self._slow: list[tuple[float, int, dict[str, Any]]] = []
        self._seq = itertools.count()
        self.spans_started = 0
        # Finished-span accounting is tallied when a bucket leaves the
        # live table (completion, eviction, drain) — a non-root finish
        # is lock-free, so it cannot touch a shared counter.  The
        # ``spans_finished`` property folds in the still-live buckets.
        self._finished_tally = 0
        self.spans_adopted = 0
        self.spans_dropped = 0
        self.traces_completed = 0
        self.traces_dropped = 0
        self.traces_sampled_out = 0

    # -- span lifecycle ----------------------------------------------------

    def start_span(
        self,
        name: str,
        attributes: dict[str, Any] | None = None,
        *,
        parent: TraceContext | Span | None = None,
        activate: bool = True,
    ) -> "Span | _NoopSpan | _SuppressedSpan":
        """Open a span under ``parent`` (default: the current context).

        ``activate=False`` opens the span without making it the current
        context — fan-out code activates it piecewise with :func:`using`
        around each submit/resolve window instead.

        With ``sample_every > 1`` a would-be root may instead come back
        as a suppressed (non-recording) span; everything opened beneath
        it is the shared no-op span.  All variants honour the same span
        interface, so call sites never branch on the sampling decision.
        """
        if parent is None:
            parent = _CURRENT.get()
        if type(parent) is Span:
            # The common case — a child of a live local span shares its
            # trace id and bucket by reference; no lock, no id strings.
            self.spans_started += 1
            span_obj = Span(
                self, name, attributes, parent.trace_id, parent, False, parent.bucket
            )
        elif parent is None:
            if self.sample_every > 1 and next(self._sample_seq) % self.sample_every:
                with self._lock:
                    self.traces_sampled_out += 1
                return _SuppressedSpan(activate)
            self.spans_started += 1
            trace_id = _new_id()
            span_obj = Span(
                self, name, attributes, trace_id, None, True,
                self._bucket_for(trace_id),
            )
        elif parent is _SUPPRESSED:
            # Inside an unsampled root: the whole subtree is no-op.
            return _NOOP
        else:  # a remote TraceContext (seeded worker / relayed client)
            self.spans_started += 1
            span_obj = Span(
                self, name, attributes, parent.trace_id, parent.span_id, False,
                self._bucket_for(parent.trace_id),
            )
        if activate:
            span_obj._token = _CURRENT.set(span_obj)
        return span_obj

    def _bucket_for(self, trace_id: str) -> list[Any]:
        """Get or create the live span bucket for ``trace_id`` (locked)."""
        with self._lock:
            bucket = self._live.get(trace_id)
            if bucket is None:
                if len(self._live) >= self.max_live:
                    # Evict the oldest live trace wholesale (dict order =
                    # insertion order): abandoned roots must not leak.
                    oldest = next(iter(self._live))
                    self._tally_locked(self._live.pop(oldest))
                    self.traces_dropped += 1
                bucket = self._live[trace_id] = []
            return bucket

    def _tally_locked(self, bucket: list[Any]) -> None:
        """Count a bucket's locally-finished spans as it leaves the table."""
        self._finished_tally += sum(
            1 for entry in bucket if not isinstance(entry, dict)
        )

    def _drop_overflow(self) -> None:
        """Count a span dropped by the per-trace ``max_spans`` cap."""
        with self._lock:
            self.spans_dropped += 1

    def _record(self, span_obj: Span) -> None:
        if not span_obj.root:
            # Finished non-root spans append straight to their trace's
            # bucket — list.append is atomic under the GIL, and the
            # bucket reference was pinned at start, so no lock and no
            # dict lookup (this path is inlined in Span.finish; kept
            # here for direct callers).  A straggler appending after its
            # root completed lands in the (already published) bucket and
            # is picked up by lazy assembly if the trace has not been
            # read yet, silently retired otherwise.
            bucket = span_obj.bucket
            if len(bucket) < self.max_spans:
                bucket.append(span_obj)
            else:
                self._drop_overflow()
            return
        with self._lock:
            bucket = self._live.pop(span_obj.trace_id, None)
            if bucket is None:
                # The trace was evicted while its root was still running;
                # count the root and drop the completion.
                self._finished_tally += 1
                return
            if len(bucket) < self.max_spans:
                bucket.append(span_obj)
            else:
                self.spans_dropped += 1
            self._tally_locked(bucket)
            if self.ring_capacity > 0:
                # Completion on the hot path is one deque append plus a
                # bounded heap push; the expensive part of assembly
                # (record conversion, exclusive times, sorting) is
                # deferred to the read side — see _assemble_locked.
                trace: dict[str, Any] = {
                    "trace_id": span_obj.trace_id,
                    "root": span_obj.name,
                    "duration_ms": span_obj.wall_ms,
                    "_spans": bucket,
                }
                self.traces_completed += 1
                self._recent.append(trace)
                heapq.heappush(
                    self._slow, (span_obj.wall_ms, next(self._seq), trace)
                )
                if len(self._slow) > self.slow_capacity:
                    heapq.heappop(self._slow)

    def adopt(self, records: list[dict[str, Any]]) -> None:
        """Fold spans drained from another process into their live traces.

        Records arriving after their trace completed (a straggler worker
        resolving past the root's finish) are dropped and counted — the
        assembled trace is immutable once published.
        """
        with self._lock:
            for record in records:
                trace_id = record.get("trace_id", "")
                bucket = self._live.get(trace_id)
                if bucket is None:
                    if self._completed_locked(trace_id):
                        self.spans_dropped += 1
                        continue
                    # The trace is in flight but none of its local spans
                    # have finished yet (a worker resolving before the
                    # first stage span closes) — open its bucket now.
                    if len(self._live) >= self.max_live:
                        oldest = next(iter(self._live))
                        self._tally_locked(self._live.pop(oldest))
                        self.traces_dropped += 1
                    bucket = self._live[trace_id] = []
                if len(bucket) >= self.max_spans:
                    self.spans_dropped += 1
                    continue
                bucket.append(record)
                self.spans_adopted += 1

    def _completed_locked(self, trace_id: str) -> bool:
        """Whether ``trace_id`` already assembled (caller holds the lock)."""
        return any(
            trace["trace_id"] == trace_id for trace in self._recent
        ) or any(trace["trace_id"] == trace_id for _, _, trace in self._slow)

    def drain(self) -> list[dict[str, Any]]:
        """All buffered spans as picklable dicts (collector mode), cleared."""
        with self._lock:
            live, self._live = self._live, {}
            for spans in live.values():
                self._tally_locked(spans)
        out: list[dict[str, Any]] = []
        for spans in live.values():
            for span_obj in spans:
                out.append(_as_record(span_obj))
        return out

    # -- trace assembly ----------------------------------------------------

    def _assemble_locked(self, trace: dict[str, Any]) -> dict[str, Any]:
        """Finish a lazily-completed trace in place (idempotent).

        Assembly mutates the dict the ring and heap both reference, so a
        trace is assembled at most once no matter which read path reaches
        it first.
        """
        spans = trace.pop("_spans", None)
        if spans is None:
            return trace
        records = [_as_record(span_obj) for span_obj in spans]
        child_wall: dict[str, float] = {}
        for record in records:
            parent_id = record["parent_id"]
            if parent_id is not None:
                child_wall[parent_id] = child_wall.get(parent_id, 0.0) + record["wall_ms"]
        start = min(record["start_unix_s"] for record in records)
        for record in records:
            record["start_ms"] = (record.pop("start_unix_s") - start) * 1000.0
            record["exclusive_ms"] = max(
                0.0, record["wall_ms"] - child_wall.get(record["span_id"], 0.0)
            )
        records.sort(key=lambda record: record["start_ms"])
        trace["start_unix_s"] = start
        trace["span_count"] = len(records)
        trace["spans"] = records
        return trace

    # -- read side ---------------------------------------------------------

    def recent(self, limit: int | None = None) -> list[dict[str, Any]]:
        """Most recently completed traces, newest first."""
        with self._lock:
            traces = [self._assemble_locked(trace) for trace in self._recent]
        traces.reverse()
        return traces if limit is None else traces[:limit]

    def slowest(self, limit: int | None = None) -> list[dict[str, Any]]:
        """The slow-query log: slowest completed traces, slowest first."""
        with self._lock:
            entries = sorted(self._slow, key=lambda entry: -entry[0])
            traces = [self._assemble_locked(trace) for _, _, trace in entries]
        return traces if limit is None else traces[:limit]

    def find(self, trace_id: str) -> dict[str, Any] | None:
        """A completed trace by id (recent ring + slow log), or ``None``."""
        with self._lock:
            for trace in self._recent:
                if trace["trace_id"] == trace_id:
                    return self._assemble_locked(trace)
            for _, _, trace in self._slow:
                if trace["trace_id"] == trace_id:
                    return self._assemble_locked(trace)
        return None

    @property
    def spans_finished(self) -> int:
        """Locally finished spans: the exit tally plus still-live buckets."""
        with self._lock:
            return self._spans_finished_locked()

    def _spans_finished_locked(self) -> int:
        live = sum(
            1
            for bucket in self._live.values()
            for entry in bucket
            if not isinstance(entry, dict)
        )
        return self._finished_tally + live

    def counters(self) -> dict[str, int]:
        """Flat tracer-health counters for stats surfaces."""
        with self._lock:
            return {
                "spans_started": self.spans_started,
                "spans_finished": self._spans_finished_locked(),
                "spans_adopted": self.spans_adopted,
                "spans_dropped": self.spans_dropped,
                "traces_completed": self.traces_completed,
                "traces_dropped": self.traces_dropped,
                "traces_sampled_out": self.traces_sampled_out,
                "traces_live": len(self._live),
            }


def _as_record(span_obj: Any) -> dict[str, Any]:
    """A span (live object or adopted dict) as a plain record dict."""
    if isinstance(span_obj, dict):
        return span_obj
    return {
        "trace_id": span_obj.trace_id,
        "span_id": span_obj.span_id,
        "parent_id": span_obj.parent_id,
        "name": span_obj.name,
        "pid": span_obj.pid,
        "start_unix_s": span_obj.start_unix_s,
        "wall_ms": span_obj.wall_ms,
        "attributes": span_obj.attributes or {},
        "events": span_obj.events or [],
    }


# -- the global arming point ---------------------------------------------------
#
# Same discipline as faults._ACTIVE: one process-wide tracer, and every
# hook below starts with a single global None check so the disarmed
# serving hot path pays (nearly) nothing.

_ACTIVE: Tracer | None = None


def arm(tracer: Tracer) -> Tracer:
    """Install ``tracer`` process-wide (returns it for chaining)."""
    global _ACTIVE
    _ACTIVE = tracer
    return tracer


def disarm() -> None:
    """Deactivate tracing (the hooks go back to one ``None`` check)."""
    global _ACTIVE
    _ACTIVE = None


def active() -> Tracer | None:
    """The armed tracer, or ``None``."""
    return _ACTIVE


@contextmanager
def armed(tracer: Tracer | None = None) -> Iterator[Tracer]:
    """Arm a tracer for a ``with`` block, restoring the previous one after."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = tracer = tracer if tracer is not None else Tracer()
    try:
        yield tracer
    finally:
        _ACTIVE = previous


def span(name: str, **attributes: Any) -> Span | _NoopSpan:
    """Open (and activate) a span under the current context.

    Disarmed this is one ``None`` check returning a shared no-op span,
    so call sites can always write ``with tracing.span(...) as sp:`` and
    call ``sp.set_attribute`` unconditionally.
    """
    tracer = _ACTIVE
    if tracer is None:
        return _NOOP
    parent = _CURRENT.get()
    if type(parent) is Span:
        # Inlined child-of-local-span fast path (mirrors start_span):
        # the serving hot path opens ~13 spans per request through this
        # function, so one call frame fewer is measurable.
        tracer.spans_started += 1
        span_obj = Span(
            tracer, name, attributes or None, parent.trace_id, parent,
            False, parent.bucket,
        )
        span_obj._token = _CURRENT.set(span_obj)
        return span_obj
    return tracer.start_span(name, attributes or None, parent=parent)


def event(name: str, **attributes: Any) -> None:
    """Attach a point-in-time event to the current span, if any."""
    if _ACTIVE is None:
        return
    current = _CURRENT.get()
    if isinstance(current, Span):
        current.add_event(name, **attributes)


def current_span() -> Span | None:
    """The active local span, or ``None``."""
    if _ACTIVE is None:
        return None
    current = _CURRENT.get()
    return current if isinstance(current, Span) else None


def current_context() -> TraceContext | None:
    """The propagatable identity of the current position, or ``None``.

    This is the cross-boundary hook: the pool dispatch pickles it to
    subprocess workers, the wire codec embeds it in request envelopes.
    """
    if _ACTIVE is None:
        return None
    current = _CURRENT.get()
    if current is None or current is _SUPPRESSED:
        return None
    if isinstance(current, TraceContext):
        return current
    return TraceContext(current.trace_id, current.span_id)


class seeded:
    """Make ``context`` the current trace position for a ``with`` block.

    Used where a trace *enters* a process: subprocess workers seeding
    the shipped parent context, and the HTTP server relaying a client
    envelope's ``trace`` field.
    """

    __slots__ = ("_context", "_token")

    def __init__(self, context: TraceContext | None) -> None:
        self._context = context
        self._token = None

    def __enter__(self) -> None:
        if self._context is not None:
            self._token = _CURRENT.set(self._context)
        return None

    def __exit__(self, *exc_info: Any) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None


class using:
    """Temporarily activate an ``activate=False`` span as the current one.

    The fan-out pattern: one shard span is activated around its submit
    window and again around its resolve window, so worker spans and
    retry events parent under the right shard without the shard spans
    nesting into each other.

    Class-based rather than ``@contextmanager``: it brackets every
    shard's submit and resolve windows on the serving hot path, and a
    generator context manager costs several times a plain
    ``__enter__``/``__exit__`` pair.
    """

    __slots__ = ("_span", "_token")

    def __init__(self, span_obj: Span | _NoopSpan | None) -> None:
        self._span = span_obj
        self._token = None

    def __enter__(self) -> Any:
        span_obj = self._span
        if span_obj is not None and span_obj.recording:
            self._token = _CURRENT.set(span_obj)
        return span_obj

    def __exit__(self, *exc_info: Any) -> None:
        if self._token is not None:
            _CURRENT.reset(self._token)
            self._token = None
