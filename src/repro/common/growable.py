"""Growable row matrices shared by the vector indexes and context caches.

Generalised out of ``repro.vector.index`` (PR 1) so every columnar
consumer — embedding indexes, the annotation context index — shares one
append-only buffer with amortised O(1) inserts instead of reinventing
``np.vstack``-per-row (O(N²) over a build).
"""

from __future__ import annotations

import numpy as np

from repro.common.errors import IndexError_


class GrowableMatrix:
    """Row matrix with amortised O(1) appends (capacity doubling).

    Rows are stored in ``dtype`` (float32 by default: embedding scores
    don't need float64 and the halved footprint doubles effective
    cache/bandwidth on scan paths).  Consumers that must preserve exact
    float64 arithmetic — e.g. the annotation context index, whose scores
    are parity-checked against scalar reference implementations — pass
    ``dtype=np.float64``.
    """

    __slots__ = ("_buffer", "_rows", "_dtype")

    def __init__(self, dtype: np.dtype | type = np.float32) -> None:
        self._buffer: np.ndarray | None = None
        self._rows = 0
        self._dtype = np.dtype(dtype)

    def __len__(self) -> int:
        return self._rows

    @property
    def dim(self) -> int | None:
        return None if self._buffer is None else int(self._buffer.shape[1])

    def append(self, rows: np.ndarray) -> None:
        rows = np.atleast_2d(np.asarray(rows, dtype=self._dtype))
        if self._buffer is None:
            capacity = max(8, len(rows))
            self._buffer = np.empty((capacity, rows.shape[1]), dtype=self._dtype)
        elif rows.shape[1] != self._buffer.shape[1]:
            raise IndexError_(
                f"dimension mismatch: index has {self._buffer.shape[1]}, "
                f"got {rows.shape[1]}"
            )
        needed = self._rows + len(rows)
        if needed > len(self._buffer):
            # max(8, ...) also restarts growth after adopting a zero-row
            # base, where doubling from 0 would never reach ``needed``.
            capacity = max(8, len(self._buffer))
            while capacity < needed:
                capacity *= 2
            grown = np.empty((capacity, self._buffer.shape[1]), dtype=self._dtype)
            grown[: self._rows] = self._buffer[: self._rows]
            self._buffer = grown
        self._buffer[self._rows : needed] = rows
        self._rows = needed

    def adopt(self, rows: np.ndarray) -> None:
        """Replace all contents with ``rows`` without copying.

        The buffer aliases ``rows`` directly, so a read-only base (e.g. a
        memory-mapped snapshot) is served zero-copy: the filled region is
        exactly the adopted array, and the first append after adoption
        takes the grow path — which copies into a fresh writable buffer —
        so the base is never written to.
        """
        rows = np.atleast_2d(rows)
        if rows.dtype != self._dtype:
            raise IndexError_(
                f"dtype mismatch: index is {self._dtype}, got {rows.dtype}"
            )
        self._buffer = rows
        self._rows = len(rows)

    def clear(self) -> None:
        """Drop all rows (writable capacity is retained for reuse)."""
        if self._buffer is not None and not self._buffer.flags.writeable:
            self._buffer = None  # adopted read-only base: can't refill in place
        self._rows = 0

    def view(self) -> np.ndarray:
        """The filled rows (a zero-copy view; do not mutate)."""
        assert self._buffer is not None
        return self._buffer[: self._rows]
