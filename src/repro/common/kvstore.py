"""Key-value stores used as caches throughout the platform.

Section 3.2 of the paper caches precomputed entity embeddings in a
"low-latency key-value store" so the reranker only embeds the query at
request time.  We provide two implementations behind one interface:

* :class:`MemoryKVStore` — a dict with optional LRU capacity, the default.
* :class:`DiskKVStore`  — JSON-lines segments on disk with an in-memory
  index, for cache contents that outlive a process (used by the on-device
  pipeline whose memory budget is bounded).

Values must be JSON-serialisable; NumPy arrays are handled transparently.
"""

from __future__ import annotations

import json
import threading
from collections import OrderedDict
from collections.abc import Iterator
from pathlib import Path
from typing import Any

import numpy as np


def _encode(value: Any) -> Any:
    """Convert ``value`` into a JSON-serialisable payload."""
    if isinstance(value, np.ndarray):
        return {"__ndarray__": value.tolist(), "dtype": str(value.dtype)}
    return value


def _decode(payload: Any) -> Any:
    """Inverse of :func:`_encode`."""
    if isinstance(payload, dict) and "__ndarray__" in payload:
        return np.asarray(payload["__ndarray__"], dtype=payload["dtype"])
    return payload


class KVStore:
    """Abstract key-value store interface."""

    def get(self, key: str, default: Any = None) -> Any:
        raise NotImplementedError

    def put(self, key: str, value: Any) -> None:
        raise NotImplementedError

    def delete(self, key: str) -> bool:
        raise NotImplementedError

    def clear(self) -> None:
        """Drop every entry (hit/miss statistics, where kept, survive)."""
        raise NotImplementedError

    def __contains__(self, key: str) -> bool:
        raise NotImplementedError

    def __len__(self) -> int:
        raise NotImplementedError

    def keys(self) -> Iterator[str]:
        raise NotImplementedError


class MemoryKVStore(KVStore):
    """In-memory store with optional LRU eviction.

    ``capacity=None`` means unbounded.  Thread-safe: the annotation service
    shares one store across worker shards.
    """

    def __init__(self, capacity: int | None = None) -> None:
        if capacity is not None and capacity <= 0:
            raise ValueError(f"capacity must be positive or None, got {capacity}")
        self._capacity = capacity
        self._data: OrderedDict[str, Any] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            if key not in self._data:
                self.misses += 1
                return default
            self.hits += 1
            self._data.move_to_end(key)
            return self._data[key]

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            if self._capacity is not None and len(self._data) > self._capacity:
                self._data.popitem(last=False)
                self.evictions += 1

    def delete(self, key: str) -> bool:
        with self._lock:
            return self._data.pop(key, _MISSING) is not _MISSING

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return key in self._data

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._data.keys()))

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from the store (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class DiskKVStore(KVStore):
    """Disk-backed store: append-only JSONL segments + in-memory key index.

    Writes append ``{"k": key, "v": value}`` records; deletes append a
    tombstone.  :meth:`compact` rewrites live records into a fresh segment.
    This mirrors how the on-device pipeline spills bounded-memory state.
    """

    _SEGMENT = "segment-{:05d}.jsonl"

    def __init__(self, directory: str | Path) -> None:
        self._dir = Path(directory)
        self._dir.mkdir(parents=True, exist_ok=True)
        # key -> (segment_path, byte_offset); None marks a tombstone.
        self._index: dict[str, tuple[Path, int] | None] = {}
        self._segment_no = 0
        self._lock = threading.Lock()
        self._replay()
        self._active = self._dir / self._SEGMENT.format(self._segment_no)

    def _replay(self) -> None:
        """Rebuild the index from existing segments on startup."""
        for path in sorted(self._dir.glob("segment-*.jsonl")):
            offset = 0
            with path.open("r", encoding="utf-8") as handle:
                for line in handle:
                    record = json.loads(line)
                    if record.get("tombstone"):
                        self._index[record["k"]] = None
                    else:
                        self._index[record["k"]] = (path, offset)
                    offset += len(line.encode("utf-8"))
            number = int(path.stem.split("-")[1])
            self._segment_no = max(self._segment_no, number + 1)

    def _append(self, record: dict[str, Any]) -> int:
        line = json.dumps(record, ensure_ascii=False) + "\n"
        with self._active.open("a", encoding="utf-8") as handle:
            offset = handle.tell()
            handle.write(line)
        return offset

    def get(self, key: str, default: Any = None) -> Any:
        with self._lock:
            location = self._index.get(key)
            if location is None:
                return default
            path, offset = location
        with path.open("r", encoding="utf-8") as handle:
            handle.seek(offset)
            record = json.loads(handle.readline())
        return _decode(record["v"])

    def put(self, key: str, value: Any) -> None:
        with self._lock:
            offset = self._append({"k": key, "v": _encode(value)})
            self._index[key] = (self._active, offset)

    def delete(self, key: str) -> bool:
        with self._lock:
            existed = self._index.get(key) is not None
            if existed:
                self._append({"k": key, "tombstone": True})
                self._index[key] = None
            return existed

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return self._index.get(key) is not None

    def __len__(self) -> int:
        with self._lock:
            return sum(1 for loc in self._index.values() if loc is not None)

    def keys(self) -> Iterator[str]:
        with self._lock:
            live = [key for key, loc in self._index.items() if loc is not None]
        return iter(live)

    def clear(self) -> None:
        with self._lock:
            for path in self._dir.glob("segment-*.jsonl"):
                path.unlink()
            self._index.clear()
            self._segment_no += 1
            self._active = self._dir / self._SEGMENT.format(self._segment_no)

    def compact(self) -> None:
        """Rewrite live records into a new segment and drop old segments."""
        with self._lock:
            live: dict[str, Any] = {}
            for key, location in self._index.items():
                if location is None:
                    continue
                path, offset = location
                with path.open("r", encoding="utf-8") as handle:
                    handle.seek(offset)
                    live[key] = json.loads(handle.readline())["v"]
            for path in self._dir.glob("segment-*.jsonl"):
                path.unlink()
            self._segment_no += 1
            self._active = self._dir / self._SEGMENT.format(self._segment_no)
            self._index.clear()
            for key, value in live.items():
                offset = self._append({"k": key, "v": value})
                self._index[key] = (self._active, offset)


_MISSING = object()
