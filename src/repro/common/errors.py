"""Exception hierarchy shared by every subsystem.

All library errors derive from :class:`ReproError` so callers can catch a
single base class at API boundaries.  Subsystems raise the most specific
subclass available; error messages always include the offending identifier
so production logs are actionable.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class ConfigError(ReproError):
    """Raised when a configuration object fails validation."""


class IdentifierError(ReproError):
    """Raised when an entity/predicate identifier is malformed or unknown."""


class OntologyError(ReproError):
    """Raised for unknown types/predicates or schema violations."""


class StoreError(ReproError):
    """Raised by triple-store operations (bad pattern, missing fact, ...)."""


class ViewError(ReproError):
    """Raised when a view definition is invalid or a view is stale."""


class EmbeddingError(ReproError):
    """Raised by the embedding pipeline (untrained model, shape mismatch)."""


class ModelRegistryError(EmbeddingError):
    """Raised when resolving a model name/version fails."""


class IndexError_(ReproError):
    """Raised by vector-index operations.

    Named with a trailing underscore to avoid shadowing the builtin
    :class:`IndexError`, which callers may legitimately need to catch
    separately.
    """


class AnnotationError(ReproError):
    """Raised by the semantic annotation pipeline."""


class ExtractionError(ReproError):
    """Raised by ODKE extractors and the corroboration model."""


class SyncError(ReproError):
    """Raised by the on-device sync protocol."""


class DeviceError(ReproError):
    """Raised when a device cannot satisfy a resource request."""


class PipelineStateError(ReproError):
    """Raised when an incremental pipeline is driven from an illegal state
    (e.g. resuming a pipeline that was never started)."""
