"""JSON-lines serialization helpers.

Datasets, checkpoints and sync deltas are exchanged as JSONL: one record per
line, UTF-8, append-friendly.  Dataclass instances are serialized via their
``to_dict`` / ``from_dict`` protocol when available.
"""

from __future__ import annotations

import json
from collections.abc import Iterable, Iterator
from pathlib import Path
from typing import Any, Callable, TypeVar

T = TypeVar("T")


def write_jsonl(path: str | Path, records: Iterable[Any]) -> int:
    """Write ``records`` (dicts or objects with ``to_dict``) to ``path``.

    Returns the number of records written.  Parent directories are created.
    """
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    count = 0
    with path.open("w", encoding="utf-8") as handle:
        for record in records:
            payload = record.to_dict() if hasattr(record, "to_dict") else record
            handle.write(json.dumps(payload, ensure_ascii=False, sort_keys=True))
            handle.write("\n")
            count += 1
    return count


def read_jsonl(
    path: str | Path, factory: Callable[[dict[str, Any]], T] | None = None
) -> Iterator[Any]:
    """Yield records from ``path``; apply ``factory`` to each dict if given."""
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if not line:
                continue
            record = json.loads(line)
            yield factory(record) if factory is not None else record


def append_jsonl(path: str | Path, record: Any) -> None:
    """Append a single record to ``path`` (creating it if needed)."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = record.to_dict() if hasattr(record, "to_dict") else record
    with path.open("a", encoding="utf-8") as handle:
        handle.write(json.dumps(payload, ensure_ascii=False, sort_keys=True))
        handle.write("\n")
