"""Deterministic random-number utilities.

Every stochastic component in the library takes an explicit seed and derives
independent substreams with :func:`substream`.  This keeps experiments
reproducible end-to-end: the same seed yields the same synthetic KG, the same
web corpus, the same training batches and therefore the same benchmark rows.
"""

from __future__ import annotations

import hashlib

import numpy as np

DEFAULT_SEED = 20230518  # arXiv submission date of the paper, for flavour.


def rng_from_seed(seed: int | None = None) -> np.random.Generator:
    """Create a NumPy generator from an integer seed (or the default)."""
    return np.random.default_rng(DEFAULT_SEED if seed is None else seed)


def substream(seed: int, *labels: str | int) -> np.random.Generator:
    """Derive an independent generator for a labelled subcomponent.

    Mixing the textual labels through SHA-256 gives well-separated streams
    even for adjacent seeds, unlike ``seed + i`` arithmetic.

    >>> g1 = substream(7, "corpus")
    >>> g2 = substream(7, "trainer", 3)
    """
    digest = hashlib.sha256()
    digest.update(str(seed).encode())
    for label in labels:
        digest.update(b"\x00")
        digest.update(str(label).encode())
    derived = int.from_bytes(digest.digest()[:8], "little")
    return np.random.default_rng(derived)


def stable_hash(text: str, modulus: int) -> int:
    """Hash ``text`` into ``[0, modulus)`` deterministically across runs.

    Python's builtin ``hash`` is salted per process; this uses SHA-1 so that
    feature hashing and shard assignment are stable between sessions.
    """
    if modulus <= 0:
        raise ValueError(f"modulus must be positive, got {modulus}")
    digest = hashlib.sha1(text.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "little") % modulus


def zipf_weights(n: int, exponent: float = 1.0) -> np.ndarray:
    """Normalised Zipfian weights over ``n`` ranks (rank 0 most popular).

    Used to model entity popularity: open-domain KGs have a long tail of
    rarely mentioned entities and a short head of celebrities.
    """
    if n <= 0:
        raise ValueError(f"n must be positive, got {n}")
    ranks = np.arange(1, n + 1, dtype=np.float64)
    weights = ranks ** (-exponent)
    return weights / weights.sum()
