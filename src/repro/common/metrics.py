"""Lightweight operational metrics: counters, gauges and timers.

Production services in the paper track throughput, latency and cache hit
rates to navigate the price/performance curve (§3.1).  This registry gives
every subsystem a uniform way to expose those numbers; benchmarks read them
back to report the same quantities the paper discusses.
"""

from __future__ import annotations

import statistics
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TimerStats:
    """Summary statistics of a named timer."""

    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float


@dataclass
class MetricsRegistry:
    """A named bag of counters, gauges and timing samples.

    Instances are cheap; subsystems create their own and parents can
    :meth:`merge` children for fleet-level reporting (used by the sharded
    web annotator).
    """

    name: str = "metrics"
    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    gauges: dict[str, float] = field(default_factory=dict)
    timings: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))

    def incr(self, counter: str, amount: int = 1) -> None:
        """Increment ``counter`` by ``amount``."""
        self.counters[counter] += amount

    def gauge(self, gauge: str, value: float) -> None:
        """Set ``gauge`` to ``value`` (last write wins)."""
        self.gauges[gauge] = value

    def observe(self, timer: str, seconds: float) -> None:
        """Record one timing sample for ``timer``."""
        self.timings[timer].append(seconds)

    @contextmanager
    def timed(self, timer: str) -> Iterator[None]:
        """Context manager recording the elapsed wall time under ``timer``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(timer, time.perf_counter() - start)

    def timer_stats(self, timer: str) -> TimerStats:
        """Summary of a timer's samples; zeroes when never observed."""
        samples = self.timings.get(timer, [])
        if not samples:
            return TimerStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return TimerStats(
            count=len(ordered),
            total_s=sum(ordered),
            mean_s=statistics.fmean(ordered),
            p50_s=_quantile(ordered, 0.50),
            p95_s=_quantile(ordered, 0.95),
            max_s=ordered[-1],
        )

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s measurements into this registry."""
        for key, value in other.counters.items():
            self.counters[key] += value
        self.gauges.update(other.gauges)
        for key, samples in other.timings.items():
            self.timings[key].extend(samples)

    def snapshot(self) -> dict[str, float]:
        """Flat dict of all metrics, for logging and benchmark tables."""
        out: dict[str, float] = {}
        for key, value in self.counters.items():
            out[f"counter.{key}"] = float(value)
        for key, value in self.gauges.items():
            out[f"gauge.{key}"] = value
        for key in self.timings:
            stats = self.timer_stats(key)
            out[f"timer.{key}.count"] = float(stats.count)
            out[f"timer.{key}.mean_s"] = stats.mean_s
            out[f"timer.{key}.p95_s"] = stats.p95_s
        return out


def _quantile(ordered: list[float], q: float) -> float:
    """Quantile of a pre-sorted sample via linear interpolation."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = position - lo
    return ordered[lo] * (1 - fraction) + ordered[hi] * fraction
