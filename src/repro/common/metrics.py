"""Lightweight operational metrics: counters, gauges, timers and histograms.

Production services in the paper track throughput, latency and cache hit
rates to navigate the price/performance curve (§3.1).  This registry gives
every subsystem a uniform way to expose those numbers; benchmarks read them
back to report the same quantities the paper discusses.

Timers keep every sample (fine for bounded bench runs); the serving layer's
request path uses :class:`LatencyHistogram` instead — fixed log-spaced
buckets, O(1) per observation and bounded memory no matter how many
requests flow through.  Registry mutation is lock-guarded so in-process
worker threads can share one registry.
"""

from __future__ import annotations

import bisect
import statistics
import threading
import time
from collections import defaultdict
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class TimerStats:
    """Summary statistics of a named timer."""

    count: int
    total_s: float
    mean_s: float
    p50_s: float
    p95_s: float
    max_s: float


# Log-spaced latency bucket upper bounds (seconds): 0.1ms .. 10s.  The
# serving benchmarks sit comfortably inside this range; anything slower
# lands in the overflow bucket.
DEFAULT_LATENCY_BOUNDS = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01,
    0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)


class LatencyHistogram:
    """Fixed-bucket histogram: O(1) observe, bounded memory.

    Unlike timer sample lists, a histogram never grows with traffic —
    the right shape for a serving path that sees millions of requests.
    Quantiles are bucket-upper-bound estimates (conservative).
    """

    __slots__ = ("bounds", "counts", "overflow", "count", "total", "min", "max")

    def __init__(self, bounds: tuple[float, ...] = DEFAULT_LATENCY_BOUNDS) -> None:
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"bounds must be a sorted non-empty tuple, got {bounds!r}")
        self.bounds = tuple(bounds)
        self.counts = [0] * len(bounds)
        self.overflow = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value: float) -> None:
        """Record one sample (seconds for latency, but unit-agnostic)."""
        slot = bisect.bisect_left(self.bounds, value)
        if slot < len(self.counts):
            self.counts[slot] += 1
        else:
            self.overflow += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Upper-bound estimate of the ``q`` quantile (0 when empty).

        Returns the upper bound of the bucket containing the quantile
        rank; overflow samples report the observed maximum.
        """
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            seen += bucket_count
            if seen >= rank:
                return bound
        return self.max

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold ``other``'s buckets into this histogram (same bounds only)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different bounds")
        for slot, bucket_count in enumerate(other.counts):
            self.counts[slot] += bucket_count
        self.overflow += other.overflow
        self.count += other.count
        self.total += other.total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    def to_dict(self) -> dict[str, float]:
        """Flat summary (count/mean/p50/p95/max) for stats surfaces."""
        return {
            "count": float(self.count),
            "mean_s": self.mean,
            "p50_s": self.quantile(0.50),
            "p95_s": self.quantile(0.95),
            "max_s": self.max if self.count else 0.0,
        }

    def to_prometheus_buckets(self) -> list[tuple[float, int]]:
        """Cumulative ``(upper_bound, count)`` pairs, Prometheus semantics.

        Each entry counts every sample ``<= upper_bound`` (not just the
        bucket's own), and the list always ends with ``(inf, count)`` —
        exactly the ``le`` label series a ``*_bucket`` family wants.
        """
        out: list[tuple[float, int]] = []
        cumulative = 0
        for bound, bucket_count in zip(self.bounds, self.counts):
            cumulative += bucket_count
            out.append((bound, cumulative))
        out.append((float("inf"), self.count))
        return out


@dataclass
class MetricsRegistry:
    """A named bag of counters, gauges, timing samples and histograms.

    Instances are cheap; subsystems create their own and parents can
    :meth:`merge` children for fleet-level reporting (used by the sharded
    web annotator and the serving worker pool).  Mutating operations are
    lock-guarded so worker threads can share one registry.
    """

    name: str = "metrics"
    counters: dict[str, int] = field(default_factory=lambda: defaultdict(int))
    gauges: dict[str, float] = field(default_factory=dict)
    timings: dict[str, list[float]] = field(default_factory=lambda: defaultdict(list))
    histograms: dict[str, LatencyHistogram] = field(default_factory=dict)
    _lock: threading.RLock = field(
        default_factory=threading.RLock, repr=False, compare=False
    )

    def incr(self, counter: str, amount: int = 1) -> None:
        """Increment ``counter`` by ``amount``."""
        with self._lock:
            self.counters[counter] += amount

    def gauge(self, gauge: str, value: float) -> None:
        """Set ``gauge`` to ``value`` (last write wins)."""
        with self._lock:
            self.gauges[gauge] = value

    def observe(self, timer: str, seconds: float) -> None:
        """Record one timing sample for ``timer``."""
        with self._lock:
            self.timings[timer].append(seconds)

    def hist(self, histogram: str, value: float) -> None:
        """Record one sample in the named fixed-bucket histogram."""
        with self._lock:
            bucket = self.histograms.get(histogram)
            if bucket is None:
                bucket = self.histograms[histogram] = LatencyHistogram()
            bucket.observe(value)

    @contextmanager
    def hist_timed(self, histogram: str) -> Iterator[None]:
        """Like :meth:`timed`, but recording into a bounded histogram."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.hist(histogram, time.perf_counter() - start)

    @contextmanager
    def timed(self, timer: str) -> Iterator[None]:
        """Context manager recording the elapsed wall time under ``timer``."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(timer, time.perf_counter() - start)

    def timer_stats(self, timer: str) -> TimerStats:
        """Summary of a timer's samples; zeroes when never observed."""
        samples = self.timings.get(timer, [])
        if not samples:
            return TimerStats(0, 0.0, 0.0, 0.0, 0.0, 0.0)
        ordered = sorted(samples)
        return TimerStats(
            count=len(ordered),
            total_s=sum(ordered),
            mean_s=statistics.fmean(ordered),
            p50_s=_quantile(ordered, 0.50),
            p95_s=_quantile(ordered, 0.95),
            max_s=ordered[-1],
        )

    def merge(self, other: "MetricsRegistry") -> None:
        """Fold ``other``'s measurements into this registry.

        Both registries' locks are held (in a stable order, so two
        opposite-direction merges can't deadlock): ``other`` may be a
        worker's live registry still receiving samples, and iterating its
        dicts unlocked races their mutation.
        """
        first, second = (
            (self, other) if id(self) <= id(other) else (other, self)
        )
        with first._lock, second._lock:
            for key, value in other.counters.items():
                self.counters[key] += value
            self.gauges.update(other.gauges)
            for key, samples in other.timings.items():
                self.timings[key].extend(samples)
            for key, histogram in other.histograms.items():
                mine = self.histograms.get(key)
                if mine is None:
                    mine = self.histograms[key] = LatencyHistogram(histogram.bounds)
                mine.merge(histogram)

    def snapshot(self) -> dict[str, float]:
        """Flat dict of all metrics, for logging and benchmark tables."""
        with self._lock:
            out: dict[str, float] = {}
            for key, value in self.counters.items():
                out[f"counter.{key}"] = float(value)
            for key, value in self.gauges.items():
                out[f"gauge.{key}"] = value
            for key in self.timings:
                stats = self.timer_stats(key)
                out[f"timer.{key}.count"] = float(stats.count)
                out[f"timer.{key}.mean_s"] = stats.mean_s
                out[f"timer.{key}.p95_s"] = stats.p95_s
            for key, histogram in self.histograms.items():
                for stat, value in histogram.to_dict().items():
                    out[f"hist.{key}.{stat}"] = value
            return out


def _mangle(name: str) -> str:
    """A metric name reduced to the Prometheus charset ``[a-zA-Z0-9_]``."""
    return "".join(ch if ch.isascii() and (ch.isalnum() or ch == "_") else "_" for ch in name)


def _format_value(value: float) -> str:
    if value == float("inf"):
        return "+Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def render_prometheus(
    registry: MetricsRegistry,
    *,
    prefix: str = "kg",
    families: dict[str, tuple[str, str]] | None = None,
    extra_gauges: dict[str, float] | None = None,
) -> str:
    """The registry as Prometheus text exposition format (0.0.4).

    Dotted metric names become underscore-mangled, ``prefix``-ed series:
    counters gain ``_total``, timers render as summaries
    (``_count``/``_sum``), histograms as cumulative ``_bucket{le=...}``
    series via :meth:`LatencyHistogram.to_prometheus_buckets`.

    ``families`` maps a counter-key prefix to ``(family_name,
    label_name)``: every counter under that prefix folds into one
    labeled family instead of minting a metric name per dynamic suffix —
    e.g. ``{"serve.requests.": ("serve_requests_by_type", "type")}``
    turns ``serve.requests.WalkRequest`` into
    ``kg_serve_requests_by_type_total{type="WalkRequest"}``.

    ``extra_gauges`` lets callers surface point-in-time values that live
    outside the registry (store version, cache hit counts, breaker
    state) without first copying them in.
    """
    families = families or {}
    lines: list[str] = []
    with registry._lock:
        plain: dict[str, int] = {}
        grouped: dict[tuple[str, str], list[tuple[str, int]]] = {}
        for key in sorted(registry.counters):
            value = registry.counters[key]
            for family_prefix, family in families.items():
                if key.startswith(family_prefix) and len(key) > len(family_prefix):
                    grouped.setdefault(family, []).append(
                        (key[len(family_prefix):], value)
                    )
                    break
            else:
                plain[key] = value
        for key, value in plain.items():
            name = f"{prefix}_{_mangle(key)}_total"
            lines.append(f"# TYPE {name} counter")
            lines.append(f"{name} {value}")
        for (family_name, label), members in sorted(grouped.items()):
            name = f"{prefix}_{_mangle(family_name)}_total"
            lines.append(f"# TYPE {name} counter")
            for label_value, value in members:
                lines.append(f'{name}{{{label}="{label_value}"}} {value}')
        gauges = dict(registry.gauges)
        if extra_gauges:
            gauges.update(extra_gauges)
        for key in sorted(gauges):
            name = f"{prefix}_{_mangle(key)}"
            lines.append(f"# TYPE {name} gauge")
            lines.append(f"{name} {_format_value(float(gauges[key]))}")
        for key in sorted(registry.timings):
            samples = registry.timings[key]
            name = f"{prefix}_{_mangle(key)}_seconds"
            lines.append(f"# TYPE {name} summary")
            lines.append(f"{name}_count {len(samples)}")
            lines.append(f"{name}_sum {_format_value(float(sum(samples)))}")
        for key in sorted(registry.histograms):
            histogram = registry.histograms[key]
            name = f"{prefix}_{_mangle(key)}_seconds"
            lines.append(f"# TYPE {name} histogram")
            for bound, cumulative in histogram.to_prometheus_buckets():
                lines.append(f'{name}_bucket{{le="{_format_value(bound)}"}} {cumulative}')
            lines.append(f"{name}_sum {_format_value(histogram.total)}")
            lines.append(f"{name}_count {histogram.count}")
    return "\n".join(lines) + "\n"


def _quantile(ordered: list[float], q: float) -> float:
    """Quantile of a pre-sorted sample via linear interpolation."""
    if not ordered:
        return 0.0
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lo = int(position)
    hi = min(lo + 1, len(ordered) - 1)
    fraction = position - lo
    return ordered[lo] * (1 - fraction) + ordered[hi] * fraction
