"""Structured JSON logging with trace correlation.

One JSON object per line on a configurable stream (stderr by default):

    {"ts": "2026-08-08T12:00:00.123456+00:00", "level": "info",
     "logger": "serving.gateway", "event": "server.started",
     "trace_id": "1f3-2a", "span_id": "1f3-2b", "host": "...", ...}

``trace_id``/``span_id`` are attached automatically whenever a span (or
remotely-seeded trace context) is current, which is what lets an
operator walk from a slow log line to the matching trace in
``GET /debug/traces`` and down to the offending span.

This replaces the bare ``print`` calls in ``serving/`` and
``odke/live.py``; it is deliberately tiny (no handlers, no formatters,
no stdlib ``logging`` interop) because every consumer here wants exactly
one thing: machine-parseable lines that a log shipper can ingest.
Logging below the configured level is a single integer compare.
"""

from __future__ import annotations

import datetime as _dt
import json
import os
import sys
import threading
from typing import Any, TextIO

__all__ = ["Logger", "configure", "get_logger", "set_level"]

_LEVELS = {"debug": 10, "info": 20, "warning": 30, "error": 40}

_lock = threading.Lock()
_stream: TextIO | None = None  # None -> sys.stderr at emit time
_level = _LEVELS.get(os.environ.get("KG_LOG_LEVEL", "info").lower(), 20)
_loggers: dict[str, "Logger"] = {}


def configure(*, stream: TextIO | None = None, level: str | None = None) -> None:
    """Redirect log output and/or change the global level.

    ``stream=None`` restores the default (``sys.stderr`` resolved at
    emit time, so pytest capsys and test redirections keep working).
    """
    global _stream
    _stream = stream
    if level is not None:
        set_level(level)


def set_level(level: str) -> None:
    global _level
    try:
        _level = _LEVELS[level.lower()]
    except KeyError:
        raise ValueError(f"unknown log level {level!r}; expected one of {sorted(_LEVELS)}")


class Logger:
    """A named emitter of structured log lines."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        self.name = name

    def debug(self, event: str, **fields: Any) -> None:
        if _level <= 10:
            self._emit("debug", event, fields)

    def info(self, event: str, **fields: Any) -> None:
        if _level <= 20:
            self._emit("info", event, fields)

    def warning(self, event: str, **fields: Any) -> None:
        if _level <= 30:
            self._emit("warning", event, fields)

    def error(self, event: str, **fields: Any) -> None:
        if _level <= 40:
            self._emit("error", event, fields)

    def _emit(self, level: str, event: str, fields: dict[str, Any]) -> None:
        record: dict[str, Any] = {
            "ts": _dt.datetime.now(_dt.timezone.utc).isoformat(),
            "level": level,
            "logger": self.name,
            "event": event,
        }
        # Import here keeps logging importable with zero serving deps;
        # the call is one global None check when tracing is disarmed.
        from repro.common import tracing

        context = tracing.current_context()
        if context is not None:
            record["trace_id"] = context.trace_id
            record["span_id"] = context.span_id
        record.update(fields)
        line = json.dumps(record, default=str, separators=(",", ":"))
        stream = _stream if _stream is not None else sys.stderr
        with _lock:
            try:
                stream.write(line + "\n")
            except ValueError:
                # Stream closed under us (interpreter teardown, test
                # stream torn down) — logging must never crash the app.
                pass


def get_logger(name: str) -> Logger:
    """The (cached) logger for ``name``."""
    logger = _loggers.get(name)
    if logger is None:
        logger = _loggers.setdefault(name, Logger(name))
    return logger
