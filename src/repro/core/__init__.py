"""End-to-end platform facade (Figure 1)."""

from repro.core.platform import KnowledgePlatform, PlatformConfig

__all__ = ["KnowledgePlatform", "PlatformConfig"]
