"""The extended Saga platform facade (Figure 1).

Wires every subsystem into one object so applications (and the F1
benchmark) can drive the full loop the paper describes:

    knowledge sources → KG construction → graph engine views
        → embedding training → embedding service
        → semantic annotation → link the Web
        → ODKE → KG enrichment (back into the store)

Each accessor builds its component lazily and caches it; anything that
depends on embeddings requires :meth:`train_embeddings` to have run.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

from repro.annotation.pipeline import AnnotationPipeline, make_pipeline
from repro.annotation.web_annotator import AnnotationRunReport, WebAnnotator
from repro.common.errors import ReproError
from repro.common.metrics import MetricsRegistry
from repro.embeddings.inference import BatchInference
from repro.embeddings.pipeline import (
    EmbeddingPipelineConfig,
    EmbeddingPipelineResult,
    run_embedding_pipeline,
)
from repro.embeddings.registry import ModelRegistry
from repro.embeddings.trainer import TrainConfig
from repro.kg.generator import SyntheticKG, SyntheticKGConfig, generate_kg
from repro.kg.ontology import Ontology
from repro.kg.query_logs import QueryLogEntry
from repro.kg.store import TripleStore
from repro.kg.views import ViewRegistry, embedding_training_view
from repro.odke.corroboration import CorroborationModel
from repro.odke.gaps import ExtractionTarget, GapDetector
from repro.odke.pipeline import ODKEConfig, ODKEPipeline, ODKEReport
from repro.services.fact_ranking import FactRanker
from repro.services.fact_verification import FactVerifier
from repro.services.related_entities import (
    EmbeddingRelatedEntities,
    RelatedEntitiesBackend,
    TraversalRelatedEntities,
)
from repro.vector.service import EmbeddingService
from repro.web.corpus import WebCorpus
from repro.web.search import BM25SearchEngine


@dataclass
class PlatformConfig:
    """Top-level configuration."""

    embedding: TrainConfig | None = None
    embedding_view_min_frequency: int = 5
    annotation_tier: str = "full"
    odke: ODKEConfig | None = None


class KnowledgePlatform:
    """The end-to-end platform over one knowledge store."""

    def __init__(
        self,
        store: TripleStore,
        ontology: Ontology,
        now: float = 0.0,
        config: PlatformConfig | None = None,
    ) -> None:
        self.store = store
        self.ontology = ontology
        self.now = now
        self.config = config or PlatformConfig()
        self.metrics = MetricsRegistry("platform")
        self.registry = ModelRegistry()
        self.views = ViewRegistry(store)
        self._embedding_result: EmbeddingPipelineResult | None = None
        self._embedding_service: EmbeddingService | None = None
        self._annotation: dict[str, AnnotationPipeline] = {}
        self._verifier: FactVerifier | None = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_synthetic(
        cls,
        scale: float = 1.0,
        seed: int = 7,
        config: PlatformConfig | None = None,
    ) -> tuple["KnowledgePlatform", SyntheticKG]:
        """Platform over a freshly generated synthetic world."""
        kg = generate_kg(SyntheticKGConfig(seed=seed, scale=scale))
        platform = cls(kg.store, kg.ontology, now=kg.now, config=config)
        return platform, kg

    # -- embeddings ----------------------------------------------------------

    def train_embeddings(
        self,
        train_config: TrainConfig | None = None,
        use_disk_trainer: bool = False,
        workdir: str | Path | None = None,
    ) -> EmbeddingPipelineResult:
        """Run the §2 pipeline and publish the model to the registry."""
        train_config = train_config or self.config.embedding or TrainConfig()
        pipeline_config = EmbeddingPipelineConfig(
            train=train_config,
            view=embedding_training_view(
                min_predicate_frequency=self.config.embedding_view_min_frequency
            ),
            use_disk_trainer=use_disk_trainer,
        )
        with self.metrics.timed("embedding.train"):
            result = run_embedding_pipeline(
                self.store, pipeline_config, registry=self.registry, workdir=workdir
            )
        self._embedding_result = result
        self._embedding_service = None  # rebuilt lazily on next access
        self._verifier = None
        return result

    @property
    def embeddings(self) -> EmbeddingPipelineResult:
        """The current trained embeddings (raises before training)."""
        if self._embedding_result is None:
            raise ReproError("no embeddings trained; call train_embeddings() first")
        return self._embedding_result

    def embedding_service(self) -> EmbeddingService:
        """k-NN/similarity service over the current embeddings."""
        if self._embedding_service is None:
            self._embedding_service = EmbeddingService(self.embeddings.trained)
        return self._embedding_service

    # -- Figure 2 services ------------------------------------------------------

    def fact_ranker(self) -> FactRanker:
        """Importance ranking for multi-valued facts."""
        return FactRanker(self.store, BatchInference(self.embeddings.trained))

    def fact_verifier(self) -> FactVerifier:
        """Calibrated plausibility classifier (calibrated on first use)."""
        if self._verifier is None:
            verifier = FactVerifier(self.embeddings.trained)
            _train, valid, _test = self.embeddings.dataset.split()
            verifier.calibrate(valid)
            self._verifier = verifier
        return self._verifier

    def related_entities(self, strategy: str = "traversal") -> RelatedEntitiesBackend:
        """Related-entities backend: ``traversal`` (specialized) or ``kge``."""
        if strategy == "kge":
            return EmbeddingRelatedEntities(self.embedding_service(), self.store)
        if strategy == "traversal":
            return TraversalRelatedEntities(self.store)
        raise ReproError(f"unknown related-entities strategy {strategy!r}")

    # -- §3 annotation ------------------------------------------------------------

    def annotator(self, tier: str | None = None) -> AnnotationPipeline:
        """Semantic annotation pipeline at the requested quality tier."""
        tier = tier or self.config.annotation_tier
        if tier not in self._annotation:
            service = self._embedding_service or (
                self.embedding_service() if self._embedding_result else None
            )
            self._annotation[tier] = make_pipeline(
                self.store, tier=tier, embedding_service=service
            )
        return self._annotation[tier]

    def link_web(
        self, corpus: WebCorpus, tier: str | None = None, num_shards: int = 4
    ) -> tuple[WebAnnotator, AnnotationRunReport]:
        """Annotate a crawl snapshot; returns the annotator + run report."""
        annotator = WebAnnotator(self.annotator(tier), num_shards=num_shards)
        with self.metrics.timed("web.link"):
            report = annotator.annotate_corpus(corpus)
        return annotator, report

    # -- §4 ODKE --------------------------------------------------------------------

    def odke(
        self,
        search: BM25SearchEngine,
        corroboration_model: CorroborationModel | None = None,
    ) -> ODKEPipeline:
        """An ODKE pipeline bound to this platform's store and annotator."""
        return ODKEPipeline(
            self.store,
            self.ontology,
            search,
            self.annotator(),
            corroboration_model=corroboration_model,
            config=self.config.odke,
            now=self.now,
        )

    def enrich_from_web(
        self,
        search: BM25SearchEngine,
        corroboration_model: CorroborationModel | None = None,
        query_log: list[QueryLogEntry] | None = None,
        max_targets: int = 50,
        targets: list[ExtractionTarget] | None = None,
    ) -> ODKEReport:
        """One full ODKE cycle: detect gaps → extract → corroborate → fuse."""
        if targets is None:
            detector = GapDetector(
                self.store, self.ontology, now=self.now, query_log=query_log
            )
            targets = detector.all_targets(max_targets=max_targets)
        pipeline = self.odke(search, corroboration_model)
        with self.metrics.timed("odke.cycle"):
            return pipeline.run(targets, fuse=True)
