"""TransE: translational-distance embedding model (Bordes et al., 2013).

Scores a triple by the negated L2 distance between the translated head and
the tail: ``score(h, r, t) = -|| e_h + w_r - e_t ||``.  The paper cites
translational models as the archetypal shallow family (§6, [3]).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.models.base import KGEmbeddingModel

_EPS = 1e-9


class TransE(KGEmbeddingModel):
    """L2 TransE with unit-ball entity projection after each epoch."""

    name = "transe"

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        delta = self.entity_emb[h] + self.relation_emb[r] - self.entity_emb[t]
        return -np.linalg.norm(delta, axis=1)

    def grads(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, dscore: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        delta = self.entity_emb[h] + self.relation_emb[r] - self.entity_emb[t]
        norms = np.linalg.norm(delta, axis=1, keepdims=True)
        unit = delta / (norms + _EPS)
        # d(-||delta||)/d(delta) = -unit; chain with upstream dscore.
        d_delta = -unit * dscore[:, None]
        return d_delta, d_delta, -d_delta

    def normalize_entities(self) -> None:
        norms = np.linalg.norm(self.entity_emb, axis=1, keepdims=True)
        np.divide(self.entity_emb, np.maximum(norms, 1.0), out=self.entity_emb)
