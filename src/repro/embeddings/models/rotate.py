"""RotatE: rotation-based embedding model (Sun et al., 2019).

Relations are rotations in the complex plane: ``t ≈ h ∘ e^{iθ_r}``, scored
as ``-|| h ∘ r − t ||`` with ``|r_j| = 1``.  Covers the rotation/quaternion
family the paper's related work cites alongside translation models [23].

Storage: entities use ``2·dim`` reals (real ∥ imaginary); relations store
``dim`` phase angles θ (padded to ``2·dim`` so the shared AdaGrad machinery
applies — the padding columns receive zero gradients).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.models.base import KGEmbeddingModel

_EPS = 1e-9


class RotatE(KGEmbeddingModel):
    """Complex rotations with phase-parameterised relations."""

    name = "rotate"

    @property
    def storage_dim(self) -> int:
        return 2 * self.config.dim

    def _entity(self, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        block = self.entity_emb[rows]
        d = self.config.dim
        return block[:, :d], block[:, d:]

    def _phase(self, rows: np.ndarray) -> np.ndarray:
        return self.relation_emb[rows][:, : self.config.dim]

    def _delta(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Rotation residual (real, imag) plus the intermediates grads need."""
        hr, hi = self._entity(h)
        tr, ti = self._entity(t)
        theta = self._phase(r)
        cos, sin = np.cos(theta), np.sin(theta)
        rot_r = hr * cos - hi * sin
        rot_i = hr * sin + hi * cos
        return rot_r - tr, rot_i - ti, cos, sin, hr, hi

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        delta_r, delta_i, *_ = self._delta(h, r, t)
        return -np.sqrt(np.sum(delta_r**2 + delta_i**2, axis=1))

    def grads(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, dscore: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        delta_r, delta_i, cos, sin, hr, hi = self._delta(h, r, t)
        norm = np.sqrt(np.sum(delta_r**2 + delta_i**2, axis=1, keepdims=True))
        scale = -dscore[:, None] / (norm + _EPS)  # d(-||δ||)/dδ chained
        g_delta_r = scale * delta_r
        g_delta_i = scale * delta_i
        # δ_r = hr·cos − hi·sin − tr ; δ_i = hr·sin + hi·cos − ti
        grad_hr = g_delta_r * cos + g_delta_i * sin
        grad_hi = -g_delta_r * sin + g_delta_i * cos
        grad_theta = g_delta_r * (-hr * sin - hi * cos) + g_delta_i * (
            hr * cos - hi * sin
        )
        grad_tr = -g_delta_r
        grad_ti = -g_delta_i
        zeros = np.zeros_like(grad_theta)
        return (
            np.concatenate([grad_hr, grad_hi], axis=1),
            np.concatenate([grad_theta, zeros], axis=1),
            np.concatenate([grad_tr, grad_ti], axis=1),
        )

    def normalize_entities(self) -> None:
        d = self.config.dim
        modulus = np.sqrt(self.entity_emb[:, :d] ** 2 + self.entity_emb[:, d:] ** 2)
        scale = np.maximum(modulus, 1.0)
        self.entity_emb[:, :d] /= scale
        self.entity_emb[:, d:] /= scale
