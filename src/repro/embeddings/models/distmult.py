"""DistMult: bilinear-diagonal semantic matching model (Yang et al., 2014).

``score(h, r, t) = <e_h, w_r, e_t> = Σ_d e_h[d] · w_r[d] · e_t[d]``.
The paper cites semantic-matching models via [22] (§6).
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.models.base import KGEmbeddingModel


class DistMult(KGEmbeddingModel):
    """Diagonal bilinear model; symmetric in head/tail by construction."""

    name = "distmult"

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        return np.sum(self.entity_emb[h] * self.relation_emb[r] * self.entity_emb[t], axis=1)

    def grads(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, dscore: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        eh = self.entity_emb[h]
        wr = self.relation_emb[r]
        et = self.entity_emb[t]
        scale = dscore[:, None]
        return wr * et * scale, eh * et * scale, eh * wr * scale
