"""Shallow KG embedding models (TransE, DistMult, ComplEx)."""

from repro.common.errors import EmbeddingError
from repro.embeddings.models.base import KGEmbeddingModel, ModelConfig
from repro.embeddings.models.complex import ComplEx
from repro.embeddings.models.distmult import DistMult
from repro.embeddings.models.rotate import RotatE
from repro.embeddings.models.transe import TransE

_MODELS: dict[str, type[KGEmbeddingModel]] = {
    TransE.name: TransE,
    RotatE.name: RotatE,
    DistMult.name: DistMult,
    ComplEx.name: ComplEx,
}


def create_model(
    name: str, num_entities: int, num_relations: int, config: ModelConfig | None = None
) -> KGEmbeddingModel:
    """Instantiate a model by name (``transe`` / ``distmult`` / ``complex``)."""
    try:
        cls = _MODELS[name]
    except KeyError:
        raise EmbeddingError(
            f"unknown model {name!r}; available: {sorted(_MODELS)}"
        ) from None
    return cls(num_entities, num_relations, config or ModelConfig())


def adopt_model(
    name: str,
    entity_emb,
    relation_emb,
    config: ModelConfig,
) -> KGEmbeddingModel:
    """Adopt persisted parameter matrices into a model by name.

    The zero-copy counterpart of :func:`create_model`: no rng init, the
    (typically memory-mapped) matrices are aliased as-is.
    """
    try:
        cls = _MODELS[name]
    except KeyError:
        raise EmbeddingError(
            f"unknown model {name!r}; available: {sorted(_MODELS)}"
        ) from None
    return cls.adopt(entity_emb, relation_emb, config)


def available_models() -> list[str]:
    """Names of all registered model classes."""
    return sorted(_MODELS)


__all__ = [
    "ComplEx",
    "RotatE",
    "DistMult",
    "KGEmbeddingModel",
    "ModelConfig",
    "TransE",
    "adopt_model",
    "available_models",
    "create_model",
]
