"""Shallow KG embedding models: the common interface.

§2 distinguishes *shallow* embedding models (entity/relation matrices
trained with a contrastive objective over existing and non-existing edges)
from reasoning-based models.  This package implements the shallow family —
TransE, DistMult and ComplEx — on NumPy with a uniform interface:

* ``score(h, r, t)``   — plausibility of index triples (vectorized),
* ``grads(h, r, t, dscore)`` — per-row gradients given upstream ∂loss/∂score,
* parameter access for the sparse AdaGrad optimiser in the trainer.

Index triples refer to rows of ``entity_emb`` / ``relation_emb``; the
mapping from KG identifiers to indices lives in the training dataset.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import EmbeddingError


@dataclass
class ModelConfig:
    """Hyper-parameters shared by all shallow models."""

    dim: int = 32
    init_scale: float = 0.1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise EmbeddingError(f"dim must be positive, got {self.dim}")


class KGEmbeddingModel:
    """Base class holding entity and relation parameter matrices.

    Subclasses define the scoring function and its gradients.  The storage
    dimension (``storage_dim``) may differ from the nominal embedding
    dimension (ComplEx stores real and imaginary halves side by side).
    """

    name = "base"

    def __init__(self, num_entities: int, num_relations: int, config: ModelConfig) -> None:
        if num_entities <= 0 or num_relations <= 0:
            raise EmbeddingError(
                f"need positive vocab sizes, got {num_entities} entities, "
                f"{num_relations} relations"
            )
        self.num_entities = num_entities
        self.num_relations = num_relations
        self.config = config
        rng = np.random.default_rng(config.seed)
        shape_e = (num_entities, self.storage_dim)
        shape_r = (num_relations, self.storage_dim)
        self.entity_emb = rng.uniform(-config.init_scale, config.init_scale, shape_e)
        self.relation_emb = rng.uniform(-config.init_scale, config.init_scale, shape_r)

    @property
    def storage_dim(self) -> int:
        """Width of the parameter matrices (== ``config.dim`` by default)."""
        return self.config.dim

    @classmethod
    def adopt(
        cls, entity_emb: np.ndarray, relation_emb: np.ndarray, config: ModelConfig
    ) -> "KGEmbeddingModel":
        """Wrap existing parameter matrices without the random init.

        The persisted-snapshot path: matrices are aliased (typically
        memory-mapped read-only), never copied, and the rng draw of
        ``__init__`` is skipped entirely — adopting is O(1) regardless of
        vocabulary size.  Scoring only reads the matrices, so an adopted
        model answers bit-for-bit like the one that trained them.
        """
        entity_emb = np.atleast_2d(entity_emb)
        relation_emb = np.atleast_2d(relation_emb)
        model = object.__new__(cls)
        model.num_entities = len(entity_emb)
        model.num_relations = len(relation_emb)
        model.config = config
        expected = model.storage_dim
        if entity_emb.shape[1] != expected or relation_emb.shape[1] != expected:
            raise EmbeddingError(
                f"adopted matrices are {entity_emb.shape[1]}/"
                f"{relation_emb.shape[1]} wide; {cls.name} at dim "
                f"{config.dim} stores {expected}"
            )
        model.entity_emb = entity_emb
        model.relation_emb = relation_emb
        return model

    # -- scoring -----------------------------------------------------------

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Plausibility scores of index triples (higher = more plausible)."""
        raise NotImplementedError

    def grads(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, dscore: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Gradients of ``dscore @ score`` w.r.t. the h/r/t embedding rows.

        Returns arrays of shape ``(batch, storage_dim)`` aligned with the
        input index arrays.
        """
        raise NotImplementedError

    # -- convenience -----------------------------------------------------------

    def score_triples(self, triples: np.ndarray) -> np.ndarray:
        """Scores for an ``(n, 3)`` array of (h, r, t) index triples."""
        triples = np.asarray(triples)
        return self.score(triples[:, 0], triples[:, 1], triples[:, 2])

    def entity_vectors(self, indices: np.ndarray | None = None) -> np.ndarray:
        """Entity embedding rows (a copy), all rows when ``indices`` is None."""
        if indices is None:
            return self.entity_emb.copy()
        return self.entity_emb[np.asarray(indices)].copy()

    def normalize_entities(self) -> None:
        """Project entity embeddings onto the unit ball (TransE-style).

        No-op by default; distance-based models override.
        """

    def parameter_count(self) -> int:
        """Total number of learned parameters."""
        return self.entity_emb.size + self.relation_emb.size
