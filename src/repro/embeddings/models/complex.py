"""ComplEx: complex-valued bilinear model (Trouillon et al., 2016).

``score(h, r, t) = Re(<e_h, w_r, conj(e_t)>)`` with complex embeddings.
Unlike DistMult it can represent antisymmetric relations (spouse vs.
member-of), which open-domain KGs are full of.  Parameters are stored as a
``2·dim`` real matrix: the first half is the real part, the second the
imaginary part.
"""

from __future__ import annotations

import numpy as np

from repro.embeddings.models.base import KGEmbeddingModel


class ComplEx(KGEmbeddingModel):
    """Complex bilinear model over split real/imaginary storage."""

    name = "complex"

    @property
    def storage_dim(self) -> int:
        return 2 * self.config.dim

    def _split(self, matrix: np.ndarray, rows: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        block = matrix[rows]
        d = self.config.dim
        return block[:, :d], block[:, d:]

    def score(self, h: np.ndarray, r: np.ndarray, t: np.ndarray) -> np.ndarray:
        hr, hi = self._split(self.entity_emb, h)
        rr, ri = self._split(self.relation_emb, r)
        tr, ti = self._split(self.entity_emb, t)
        return np.sum(
            hr * rr * tr + hi * rr * ti + hr * ri * ti - hi * ri * tr, axis=1
        )

    def grads(
        self, h: np.ndarray, r: np.ndarray, t: np.ndarray, dscore: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        hr, hi = self._split(self.entity_emb, h)
        rr, ri = self._split(self.relation_emb, r)
        tr, ti = self._split(self.entity_emb, t)
        scale = dscore[:, None]
        grad_hr = (rr * tr + ri * ti) * scale
        grad_hi = (rr * ti - ri * tr) * scale
        grad_rr = (hr * tr + hi * ti) * scale
        grad_ri = (hr * ti - hi * tr) * scale
        grad_tr = (hr * rr - hi * ri) * scale
        grad_ti = (hi * rr + hr * ri) * scale
        return (
            np.concatenate([grad_hr, grad_hi], axis=1),
            np.concatenate([grad_rr, grad_ri], axis=1),
            np.concatenate([grad_tr, grad_ti], axis=1),
        )
