"""Negative sampling: the "non-existing edges" of the contrastive objective.

§2: "Shallow embedding models often learn embedding matrices of entities
and predicates by optimizing a contrastive objective on both existing and
non-existing edges in the graph."  Negatives are produced by corrupting the
head or tail of a positive triple with a uniformly random entity; the
*filtered* variant rejects corruptions that happen to be true edges.
"""

from __future__ import annotations

import numpy as np

from repro.common.rng import substream


class NegativeSampler:
    """Uniform head/tail corruption with optional filtering.

    Filtering retries up to ``max_retries`` times per slot and then keeps
    whatever it has — with a sparse graph collisions are rare, so the bound
    exists only to guarantee termination.
    """

    def __init__(
        self,
        num_entities: int,
        negatives_per_positive: int = 4,
        filtered: bool = True,
        known: set[tuple[int, int, int]] | None = None,
        seed: int = 0,
        max_retries: int = 8,
    ) -> None:
        if num_entities <= 1:
            raise ValueError("need at least 2 entities to corrupt triples")
        if negatives_per_positive <= 0:
            raise ValueError("negatives_per_positive must be positive")
        self.num_entities = num_entities
        self.negatives_per_positive = negatives_per_positive
        self.filtered = filtered and known is not None
        self.known = known or set()
        self.max_retries = max_retries
        self._rng = substream(seed, "negative-sampler")

    def corrupt(self, positives: np.ndarray) -> np.ndarray:
        """Corrupted triples for a ``(b, 3)`` positive batch.

        Returns a ``(b * negatives_per_positive, 3)`` array; row ``i`` of
        the output corrupts positive ``i // k``.
        """
        k = self.negatives_per_positive
        repeated = np.repeat(positives, k, axis=0)
        n = len(repeated)
        corrupt_tail = self._rng.random(n) < 0.5
        replacements = self._rng.integers(0, self.num_entities, size=n)
        negatives = repeated.copy()
        negatives[corrupt_tail, 2] = replacements[corrupt_tail]
        negatives[~corrupt_tail, 0] = replacements[~corrupt_tail]

        if self.filtered:
            self._refilter(negatives, corrupt_tail)
        return negatives

    def _refilter(self, negatives: np.ndarray, corrupt_tail: np.ndarray) -> None:
        """Resample rows that collide with known true triples, in place."""
        for attempt in range(self.max_retries):
            collisions = [
                i
                for i in range(len(negatives))
                if (int(negatives[i, 0]), int(negatives[i, 1]), int(negatives[i, 2]))
                in self.known
            ]
            if not collisions:
                return
            fresh = self._rng.integers(0, self.num_entities, size=len(collisions))
            for j, row in enumerate(collisions):
                if corrupt_tail[row]:
                    negatives[row, 2] = fresh[j]
                else:
                    negatives[row, 0] = fresh[j]
