"""The embedding-family backend suite: one trained model, four services.

Figure 1's serving platform shares its embedding service across knowledge
services; this module is that sharing point.  One deterministic build
produces a :class:`FactRanker` (ranking), a calibrated
:class:`FactVerifier` (verification) and an :class:`EmbeddingService`
(similarity / k-NN, behind a trained :class:`IVFIndex`) over a single
trained model.

The build recipe lives in :class:`EmbeddingSuiteConfig` so replicas and
the persisted embedding layer (:mod:`repro.embeddings.persistence`) agree
on exactly what was trained: every field that affects the *trained state*
is part of the adopt-match recipe, while query-time knobs (``knn_nprobe``,
``knn_rerank_factor``) ride along without invalidating a persisted layer.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from repro.embeddings.dataset import build_dataset
from repro.embeddings.inference import BatchInference
from repro.embeddings.trainer import TrainConfig, TrainedEmbeddings, train_embeddings
from repro.kg.store import TripleStore
from repro.services.fact_ranking import FactRanker
from repro.services.fact_verification import FactVerifier
from repro.vector.index import IVFIndex
from repro.vector.service import EmbeddingService

TRAINED = "trained"
ADOPTED = "adopted"

# Build-recipe fields: a persisted layer adopts only when all of these
# match the worker's config.  nprobe/rerank_factor are deliberately
# excluded — they select which candidates are probed at query time, not
# what was trained, so retuning them must not force a retrain.
RECIPE_FIELDS = (
    "model",
    "dim",
    "epochs",
    "seed",
    "calibration_fraction",
    "knn_nlist",
    "knn_kmeans_iterations",
    "knn_seed",
    "knn_quantization",
)


@dataclass(frozen=True)
class EmbeddingSuiteConfig:
    """Deterministic build recipe of the embedding-family backends."""

    model: str = "distmult"
    dim: int = 32
    epochs: int = 15
    seed: int = 0
    calibration_fraction: float = 0.1
    knn_nlist: int = 16
    knn_nprobe: int = 4
    knn_kmeans_iterations: int = 8
    knn_seed: int = 0
    knn_quantization: str | None = None
    knn_rerank_factor: int = 4

    def recipe(self) -> dict[str, Any]:
        """The adopt-match subset of this config (JSON-safe values only)."""
        return {name: getattr(self, name) for name in RECIPE_FIELDS}


@dataclass
class EmbeddingSuite:
    """One trained model shared by the embedding-family request backends."""

    trained: TrainedEmbeddings
    ranker: FactRanker
    verifier: FactVerifier  # calibrated
    embedding_service: EmbeddingService
    source: str = TRAINED  # "trained" (built in-process) | "adopted" (mmapped)


def build_knn_index(trained: TrainedEmbeddings, config: EmbeddingSuiteConfig) -> IVFIndex:
    """A ready-trained IVF index over every entity vector of ``trained``.

    Built eagerly (not lazily on first search) so the index a replica
    trains is the index ``save_snapshot`` persists — seeded k-means makes
    the two bit-identical.
    """
    index = IVFIndex(
        nlist=config.knn_nlist,
        nprobe=config.knn_nprobe,
        kmeans_iterations=config.knn_kmeans_iterations,
        seed=config.knn_seed,
        quantization=config.knn_quantization,
        rerank_factor=config.knn_rerank_factor,
    )
    keys, matrix = trained.all_entity_vectors()
    index.add(keys, matrix)
    index.train()
    return index


def build_embedding_suite(
    store: TripleStore, config: EmbeddingSuiteConfig | None = None
) -> EmbeddingSuite:
    """Train + calibrate + index the embedding-family backends from ``store``.

    Deterministic in ``config``: ``build_dataset`` sorts its vocabulary,
    the trainer, the split and the k-means quantizer are seeded, and
    calibration corruptions derive from the same seed — replicas agree
    bit-for-bit, and a suite adopted from a persisted layer is
    indistinguishable from one built here.  The verifier calibrates on a
    held-out slice (``calibration_fraction``), falling back to the full
    triple set when the store is too small to spare one.
    """
    config = config or EmbeddingSuiteConfig()
    dataset = build_dataset(store)
    train_ds, valid, _test = dataset.split(
        valid_fraction=config.calibration_fraction,
        test_fraction=0.0,
        seed=config.seed,
    )
    trained = train_embeddings(
        train_ds,
        TrainConfig(
            model=config.model,
            dim=config.dim,
            epochs=config.epochs,
            seed=config.seed,
        ),
    )
    verifier = FactVerifier(trained)
    calibration = valid if len(valid) else dataset.triples
    verifier.calibrate(calibration, seed=config.seed)
    return EmbeddingSuite(
        trained=trained,
        ranker=FactRanker(store, BatchInference(trained)),
        verifier=verifier,
        embedding_service=EmbeddingService(
            trained, index=build_knn_index(trained, config)
        ),
        source=TRAINED,
    )
