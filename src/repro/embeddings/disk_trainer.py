"""Out-of-core embedding training with a bounded in-memory buffer.

§2: "for general KG embeddings we use disk-based training" — the approach
of Marius [16] and PyTorch-BigGraph [15].  This trainer keeps entity
embeddings (and their AdaGrad state) in per-bucket ``.npy`` files on disk
and trains one bucket *pair* at a time; an LRU :class:`BucketBuffer` bounds
how many buckets are simultaneously resident.

Faithfulness notes:

* the gradient step is byte-identical to the in-memory trainer's —
  both call :func:`repro.embeddings.trainer.contrastive_step`;
* negatives are corrupted *within the resident buckets*, matching how
  PBG-style systems avoid touching non-resident embeddings;
* every load/store is counted, so benchmarks can report the I/O versus
  buffer-size trade-off the paper's scalability argument rests on.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path

import numpy as np

from repro.common.errors import EmbeddingError
from repro.common.rng import substream
from repro.embeddings.dataset import TripleDataset
from repro.embeddings.models import ModelConfig, create_model
from repro.embeddings.negative_sampling import NegativeSampler
from repro.embeddings.partition import Partitioning, partition_dataset, schedule_pairs
from repro.embeddings.trainer import (
    AdaGrad,
    EpochStats,
    TrainConfig,
    TrainedEmbeddings,
    contrastive_step,
)


@dataclass
class DiskTrainStats:
    """I/O and residency accounting of one out-of-core training run."""

    bucket_loads: int = 0
    bucket_stores: int = 0
    bytes_loaded: int = 0
    bytes_stored: int = 0
    peak_resident_buckets: int = 0
    peak_resident_bytes: int = 0
    epochs: list[EpochStats] = field(default_factory=list)


class BucketBuffer:
    """LRU buffer of entity-embedding buckets backed by ``.npy`` files.

    Each bucket stores two arrays: the embedding block and its AdaGrad
    accumulator.  ``pin`` loads the requested buckets (evicting least
    recently used ones back to disk) and protects them from eviction until
    the next ``pin``.
    """

    def __init__(self, workdir: Path, capacity: int, stats: DiskTrainStats) -> None:
        if capacity < 2:
            raise EmbeddingError("buffer capacity must be >= 2 buckets")
        self.workdir = workdir
        self.capacity = capacity
        self.stats = stats
        self._resident: dict[int, tuple[np.ndarray, np.ndarray]] = {}
        self._lru: list[int] = []  # least recently used first
        self._pinned: set[int] = set()

    def _path(self, bucket: int, kind: str) -> Path:
        return self.workdir / f"bucket-{bucket:04d}.{kind}.npy"

    def initialize(self, bucket: int, embeddings: np.ndarray) -> None:
        """Write a bucket's initial embeddings + zero accumulator to disk."""
        np.save(self._path(bucket, "emb"), embeddings)
        np.save(self._path(bucket, "acc"), np.zeros_like(embeddings))

    def pin(self, buckets: list[int]) -> dict[int, tuple[np.ndarray, np.ndarray]]:
        """Make ``buckets`` resident and pinned; returns their arrays."""
        unique = list(dict.fromkeys(buckets))
        if len(unique) > self.capacity:
            raise EmbeddingError(
                f"cannot pin {len(unique)} buckets into a {self.capacity}-bucket buffer"
            )
        self._pinned = set(unique)
        for bucket in unique:
            if bucket in self._resident:
                self._lru.remove(bucket)
                self._lru.append(bucket)
                continue
            self._evict_to(self.capacity - 1)
            embeddings = np.load(self._path(bucket, "emb"))
            accumulator = np.load(self._path(bucket, "acc"))
            self.stats.bucket_loads += 1
            self.stats.bytes_loaded += embeddings.nbytes + accumulator.nbytes
            self._resident[bucket] = (embeddings, accumulator)
            self._lru.append(bucket)
        self._track_peaks()
        return {bucket: self._resident[bucket] for bucket in unique}

    def _evict_to(self, max_resident: int) -> None:
        while len(self._resident) > max_resident:
            victim = next(
                (b for b in self._lru if b not in self._pinned), None
            )
            if victim is None:
                raise EmbeddingError("all resident buckets are pinned; cannot evict")
            self._store(victim)

    def _store(self, bucket: int) -> None:
        embeddings, accumulator = self._resident.pop(bucket)
        self._lru.remove(bucket)
        np.save(self._path(bucket, "emb"), embeddings)
        np.save(self._path(bucket, "acc"), accumulator)
        self.stats.bucket_stores += 1
        self.stats.bytes_stored += embeddings.nbytes + accumulator.nbytes

    def flush(self) -> None:
        """Write every resident bucket back to disk (end of training)."""
        self._pinned = set()
        for bucket in list(self._lru):
            self._store(bucket)

    def _track_peaks(self) -> None:
        resident_bytes = sum(
            emb.nbytes + acc.nbytes for emb, acc in self._resident.values()
        )
        self.stats.peak_resident_buckets = max(
            self.stats.peak_resident_buckets, len(self._resident)
        )
        self.stats.peak_resident_bytes = max(
            self.stats.peak_resident_bytes, resident_bytes
        )


class DiskTrainer:
    """Partitioned out-of-core trainer (Figure 3's disk-based path)."""

    def __init__(
        self,
        dataset: TripleDataset,
        workdir: str | Path,
        config: TrainConfig | None = None,
        num_partitions: int = 4,
        buffer_capacity: int = 2,
    ) -> None:
        self.dataset = dataset
        self.config = config or TrainConfig()
        self.workdir = Path(workdir)
        self.workdir.mkdir(parents=True, exist_ok=True)
        self.stats = DiskTrainStats()
        self.partitioning: Partitioning = partition_dataset(
            dataset, num_partitions, seed=self.config.seed
        )
        # Relations are tiny; they stay in memory like in PBG/Marius.
        self._reference_model = create_model(
            self.config.model,
            dataset.num_entities,
            dataset.num_relations,
            ModelConfig(dim=self.config.dim, seed=self.config.seed),
        )
        self._relation_emb = self._reference_model.relation_emb
        self._relation_opt = AdaGrad(
            self._relation_emb.shape, self.config.learning_rate
        )
        self.buffer = BucketBuffer(self.workdir, buffer_capacity, self.stats)
        # Local row index of each global entity within its bucket block.
        self._local_of_global = np.empty(dataset.num_entities, dtype=np.int64)
        self._bucket_entities: dict[int, np.ndarray] = {}
        for bucket in range(self.partitioning.num_partitions):
            members = self.partitioning.entities_in(bucket)
            self._bucket_entities[bucket] = members
            self._local_of_global[members] = np.arange(len(members))
            self.buffer.initialize(
                bucket, self._reference_model.entity_emb[members].copy()
            )
        self._rng = substream(self.config.seed, "disk-trainer")

    def train(self) -> tuple[TrainedEmbeddings, DiskTrainStats]:
        """Run all epochs over the locality-scheduled bucket pairs."""
        pairs = sorted(self.partitioning.groups)
        schedule = schedule_pairs(pairs, self.buffer.capacity)
        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            losses: list[float] = []
            trained = 0
            for pair in schedule:
                losses.extend(self._train_group(pair))
                trained += len(self.partitioning.groups[pair])
            elapsed = max(time.perf_counter() - start, 1e-9)
            self.stats.epochs.append(
                EpochStats(
                    epoch=epoch,
                    mean_loss=float(np.mean(losses)) if losses else 0.0,
                    triples_per_second=trained / elapsed,
                )
            )
        return self._assemble(), self.stats

    def _train_group(self, pair: tuple[int, int]) -> list[float]:
        """Minibatch steps over one bucket pair's edge group."""
        head_bucket, tail_bucket = pair
        resident = self.buffer.pin([head_bucket, tail_bucket])
        triples = self.partitioning.groups[pair]

        local_entities = [self._bucket_entities[b] for b in dict.fromkeys(pair)]
        global_ids = np.concatenate(local_entities)
        local_index = {int(g): i for i, g in enumerate(global_ids)}

        blocks = [resident[b][0] for b in dict.fromkeys(pair)]
        acc_blocks = [resident[b][1] for b in dict.fromkeys(pair)]
        local_matrix = np.concatenate(blocks, axis=0)
        local_acc = np.concatenate(acc_blocks, axis=0)

        local_model = create_model(
            self.config.model,
            len(global_ids),
            self.dataset.num_relations,
            ModelConfig(dim=self.config.dim, seed=self.config.seed),
        )
        local_model.entity_emb = local_matrix
        local_model.relation_emb = self._relation_emb

        remap = np.vectorize(local_index.__getitem__, otypes=[np.int64])
        local_triples = triples.copy()
        local_triples[:, 0] = remap(triples[:, 0])
        local_triples[:, 2] = remap(triples[:, 2])

        sampler = NegativeSampler(
            num_entities=len(global_ids),
            negatives_per_positive=self.config.negatives_per_positive,
            filtered=False,  # PBG-style: unfiltered within-partition negatives
            seed=int(self._rng.integers(2**31)),
        )
        entity_opt = AdaGrad(
            local_matrix.shape, self.config.learning_rate, accumulator=local_acc
        )
        losses: list[float] = []
        order = self._rng.permutation(len(local_triples))
        for begin in range(0, len(order), self.config.batch_size):
            batch = local_triples[order[begin : begin + self.config.batch_size]]
            losses.append(
                contrastive_step(
                    local_model,
                    sampler,
                    entity_opt,
                    self._relation_opt,
                    batch,
                    self.config.l2_penalty,
                )
            )
        # Write updated rows back into the resident bucket arrays.
        offset = 0
        for bucket in dict.fromkeys(pair):
            size = len(self._bucket_entities[bucket])
            resident[bucket][0][:] = local_matrix[offset : offset + size]
            resident[bucket][1][:] = local_acc[offset : offset + size]
            offset += size
        return losses

    def _assemble(self) -> TrainedEmbeddings:
        """Flush the buffer and stitch bucket blocks into a full model."""
        self.buffer.flush()
        full = np.empty(
            (self.dataset.num_entities, self._reference_model.storage_dim)
        )
        for bucket, members in self._bucket_entities.items():
            block = np.load(self.workdir / f"bucket-{bucket:04d}.emb.npy")
            full[members] = block
        model = create_model(
            self.config.model,
            self.dataset.num_entities,
            self.dataset.num_relations,
            ModelConfig(dim=self.config.dim, seed=self.config.seed),
        )
        model.entity_emb = full
        model.relation_emb = self._relation_emb
        return TrainedEmbeddings(
            model=model, dataset=self.dataset, history=self.stats.epochs
        )
