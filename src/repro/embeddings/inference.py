"""Batch inference over trained embeddings (Figure 3, right side).

At inference time the graph engine materialises *candidates* — triples to
verify/rank or entity pairs to relate — and this module scores them in
batches against a trained model, mirroring the paper's "batch multi-GPU
inference" stage on CPU.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.common.errors import EmbeddingError
from repro.embeddings.trainer import TrainedEmbeddings


@dataclass
class ScoredTriple:
    """A candidate triple with its plausibility score."""

    subject: str
    predicate: str
    obj: str
    score: float


class BatchInference:
    """Vectorised scoring of symbolic candidates against a trained model."""

    def __init__(self, trained: TrainedEmbeddings, batch_size: int = 4096) -> None:
        if batch_size <= 0:
            raise EmbeddingError(f"batch_size must be positive, got {batch_size}")
        self.trained = trained
        self.batch_size = batch_size

    def score_triples(
        self, candidates: list[tuple[str, str, str]], skip_unknown: bool = True
    ) -> list[ScoredTriple]:
        """Score symbolic (s, p, o) candidates; unknown symbols are skipped
        (or raise when ``skip_unknown`` is False)."""
        dataset = self.trained.dataset
        encoded: list[tuple[int, int, int]] = []
        kept: list[tuple[str, str, str]] = []
        for subject, predicate, obj in candidates:
            try:
                encoded.append(dataset.encode(subject, predicate, obj))
                kept.append((subject, predicate, obj))
            except EmbeddingError:
                if not skip_unknown:
                    raise
        if not encoded:
            return []
        triples = np.asarray(encoded, dtype=np.int64)
        scores = np.empty(len(triples), dtype=np.float64)
        for begin in range(0, len(triples), self.batch_size):
            chunk = triples[begin : begin + self.batch_size]
            scores[begin : begin + len(chunk)] = self.trained.model.score_triples(chunk)
        return [
            ScoredTriple(subject=s, predicate=p, obj=o, score=float(score))
            for (s, p, o), score in zip(kept, scores)
        ]

    def rank_objects(
        self, subject: str, predicate: str, candidate_objects: list[str]
    ) -> list[ScoredTriple]:
        """Score (subject, predicate, candidate) triples, best first."""
        scored = self.score_triples(
            [(subject, predicate, obj) for obj in candidate_objects]
        )
        scored.sort(key=lambda item: (-item.score, item.obj))
        return scored

    def relatedness(self, left: str, right: str) -> float:
        """Cosine similarity of two entity embeddings (0.0 for unknowns)."""
        trained = self.trained
        if not (trained.has_entity(left) and trained.has_entity(right)):
            return 0.0
        a = trained.entity_vector(left)
        b = trained.entity_vector(right)
        denom = np.linalg.norm(a) * np.linalg.norm(b)
        if denom == 0:
            return 0.0
        return float(np.dot(a, b) / denom)

    def embed_entities(self, entities: list[str]) -> tuple[list[str], np.ndarray]:
        """Embeddings of known entities; returns (kept ids, matrix)."""
        kept = [e for e in entities if self.trained.has_entity(e)]
        if not kept:
            return [], np.zeros((0, self.trained.model.storage_dim))
        rows = [self.trained.dataset.entity_index[e] for e in kept]
        return kept, self.trained.model.entity_emb[rows].copy()
