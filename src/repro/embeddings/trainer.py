"""In-memory contrastive training of shallow embedding models.

Implements the single-node path of Figure 3: minibatch SGD with per-row
AdaGrad over a logistic (softplus) contrastive loss

    L = softplus(-s(pos)) + Σ_neg softplus(s(neg))

with uniform head/tail corruption negatives.  The out-of-core variant that
keeps only an embedding buffer in memory lives in
:mod:`repro.embeddings.disk_trainer`; both share this module's loss and
update rules so their learning behaviour is identical modulo partition
scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import EmbeddingError
from repro.common.rng import substream
from repro.embeddings.dataset import TripleDataset
from repro.embeddings.models import KGEmbeddingModel, ModelConfig, create_model
from repro.embeddings.negative_sampling import NegativeSampler


@dataclass
class TrainConfig:
    """Hyper-parameters of the contrastive training loop."""

    model: str = "distmult"
    dim: int = 32
    epochs: int = 20
    batch_size: int = 512
    learning_rate: float = 0.1
    negatives_per_positive: int = 4
    l2_penalty: float = 1e-6
    filtered_negatives: bool = True
    seed: int = 0

    def __post_init__(self) -> None:
        if self.epochs <= 0 or self.batch_size <= 0:
            raise EmbeddingError("epochs and batch_size must be positive")
        if self.learning_rate <= 0:
            raise EmbeddingError("learning_rate must be positive")


@dataclass
class EpochStats:
    """Loss and throughput of one training epoch."""

    epoch: int
    mean_loss: float
    triples_per_second: float


@dataclass
class TrainedEmbeddings:
    """A trained model bound to its vocabulary."""

    model: KGEmbeddingModel
    dataset: TripleDataset
    history: list[EpochStats] = field(default_factory=list)

    def entity_vector(self, entity: str) -> np.ndarray:
        """Embedding of one entity id (raises for out-of-vocabulary ids)."""
        try:
            index = self.dataset.entity_index[entity]
        except KeyError:
            raise EmbeddingError(f"entity not in embedding vocabulary: {entity}") from None
        return self.model.entity_emb[index].copy()

    def has_entity(self, entity: str) -> bool:
        """True when ``entity`` is embeddable."""
        return entity in self.dataset.entity_index

    def score_fact(self, subject: str, predicate: str, obj: str) -> float:
        """Model score of a symbolic triple."""
        h, r, t = self.dataset.encode(subject, predicate, obj)
        return float(
            self.model.score(np.array([h]), np.array([r]), np.array([t]))[0]
        )

    def all_entity_vectors(self) -> tuple[list[str], np.ndarray]:
        """(entity ids, matrix) aligned row-by-row, for vector indexing."""
        return self.dataset.entities, self.model.entity_emb.copy()


def _sigmoid(x: np.ndarray) -> np.ndarray:
    """Numerically stable logistic function."""
    out = np.empty_like(x, dtype=np.float64)
    positive = x >= 0
    out[positive] = 1.0 / (1.0 + np.exp(-x[positive]))
    exp_x = np.exp(x[~positive])
    out[~positive] = exp_x / (1.0 + exp_x)
    return out


def _softplus(x: np.ndarray) -> np.ndarray:
    """Numerically stable log(1 + exp(x))."""
    return np.where(x > 30, x, np.log1p(np.exp(np.minimum(x, 30))))


class AdaGrad:
    """Sparse per-row AdaGrad over one parameter matrix.

    ``accumulator`` may be supplied externally — the out-of-core trainer
    persists per-bucket accumulators to disk alongside the embeddings so
    optimiser state survives buffer eviction.
    """

    def __init__(
        self,
        shape: tuple[int, int],
        learning_rate: float,
        eps: float = 1e-8,
        accumulator: np.ndarray | None = None,
    ) -> None:
        self.accumulator = (
            np.zeros(shape, dtype=np.float64) if accumulator is None else accumulator
        )
        self.learning_rate = learning_rate
        self.eps = eps

    def apply(self, params: np.ndarray, rows: np.ndarray, grads: np.ndarray) -> None:
        """Scatter-add ``grads`` into ``params`` rows with AdaGrad scaling.

        Duplicate rows within a batch are accumulated before the update, so
        the step is equivalent to a dense gradient step on the touched rows.
        """
        unique_rows, inverse = np.unique(rows, return_inverse=True)
        dense = np.zeros((len(unique_rows), params.shape[1]), dtype=np.float64)
        np.add.at(dense, inverse, grads)
        self.accumulator[unique_rows] += dense**2
        scale = self.learning_rate / (np.sqrt(self.accumulator[unique_rows]) + self.eps)
        params[unique_rows] -= scale * dense


class Trainer:
    """Minibatch contrastive trainer for one :class:`TripleDataset`."""

    def __init__(self, dataset: TripleDataset, config: TrainConfig | None = None) -> None:
        self.dataset = dataset
        self.config = config or TrainConfig()
        self.model = create_model(
            self.config.model,
            dataset.num_entities,
            dataset.num_relations,
            ModelConfig(dim=self.config.dim, seed=self.config.seed),
        )
        self.sampler = NegativeSampler(
            num_entities=dataset.num_entities,
            negatives_per_positive=self.config.negatives_per_positive,
            filtered=self.config.filtered_negatives,
            known=dataset.known_set() if self.config.filtered_negatives else None,
            seed=self.config.seed,
        )
        self._entity_opt = AdaGrad(self.model.entity_emb.shape, self.config.learning_rate)
        self._relation_opt = AdaGrad(self.model.relation_emb.shape, self.config.learning_rate)
        self._rng = substream(self.config.seed, "trainer")

    def train(self) -> TrainedEmbeddings:
        """Run the full schedule and return the trained embeddings."""
        import time

        history: list[EpochStats] = []
        triples = self.dataset.triples
        for epoch in range(self.config.epochs):
            start = time.perf_counter()
            order = self._rng.permutation(len(triples))
            losses: list[float] = []
            for begin in range(0, len(order), self.config.batch_size):
                batch = triples[order[begin : begin + self.config.batch_size]]
                losses.append(self.train_batch(batch))
            self.model.normalize_entities()
            elapsed = max(time.perf_counter() - start, 1e-9)
            history.append(
                EpochStats(
                    epoch=epoch,
                    mean_loss=float(np.mean(losses)) if losses else 0.0,
                    triples_per_second=len(triples) / elapsed,
                )
            )
        return TrainedEmbeddings(model=self.model, dataset=self.dataset, history=history)

    def train_batch(self, positives: np.ndarray) -> float:
        """One gradient step on a positive batch; returns the mean loss."""
        return contrastive_step(
            self.model,
            self.sampler,
            self._entity_opt,
            self._relation_opt,
            positives,
            self.config.l2_penalty,
        )


def contrastive_step(
    model: KGEmbeddingModel,
    sampler: NegativeSampler,
    entity_opt: AdaGrad,
    relation_opt: AdaGrad,
    positives: np.ndarray,
    l2_penalty: float,
) -> float:
    """One softplus-contrastive gradient step shared by both trainers.

    The in-memory :class:`Trainer` and the out-of-core
    :class:`~repro.embeddings.disk_trainer.DiskTrainer` call this with
    global and partition-local index spaces respectively, so the learning
    rule is provably identical across the two execution strategies.
    """
    if len(positives) == 0:
        return 0.0
    negatives = sampler.corrupt(positives)

    pos_scores = model.score(positives[:, 0], positives[:, 1], positives[:, 2])
    neg_scores = model.score(negatives[:, 0], negatives[:, 1], negatives[:, 2])

    # dL/ds for softplus losses; negatives averaged per positive.
    d_pos = -_sigmoid(-pos_scores)
    d_neg = _sigmoid(neg_scores) / sampler.negatives_per_positive

    gh_p, gr_p, gt_p = model.grads(positives[:, 0], positives[:, 1], positives[:, 2], d_pos)
    gh_n, gr_n, gt_n = model.grads(negatives[:, 0], negatives[:, 1], negatives[:, 2], d_neg)

    entity_rows = np.concatenate(
        [positives[:, 0], positives[:, 2], negatives[:, 0], negatives[:, 2]]
    )
    entity_grads = np.concatenate([gh_p, gt_p, gh_n, gt_n])
    relation_rows = np.concatenate([positives[:, 1], negatives[:, 1]])
    relation_grads = np.concatenate([gr_p, gr_n])

    if l2_penalty:
        entity_grads = entity_grads + l2_penalty * model.entity_emb[entity_rows]
        relation_grads = relation_grads + l2_penalty * model.relation_emb[relation_rows]

    entity_opt.apply(model.entity_emb, entity_rows, entity_grads)
    relation_opt.apply(model.relation_emb, relation_rows, relation_grads)

    loss = _softplus(-pos_scores).mean() + _softplus(neg_scores).mean()
    return float(loss)


def train_embeddings(
    dataset: TripleDataset, config: TrainConfig | None = None
) -> TrainedEmbeddings:
    """Convenience wrapper: build a :class:`Trainer` and run it."""
    return Trainer(dataset, config).train()
