"""§2 — Knowledge-graph embedding pipeline (training + inference)."""

from repro.embeddings.dataset import TripleDataset, build_dataset
from repro.embeddings.disk_trainer import DiskTrainer, DiskTrainStats
from repro.embeddings.evaluation import (
    ClassificationReport,
    LinkPredictionReport,
    corrupt_uniform,
    link_prediction,
    triple_classification,
)
from repro.embeddings.inference import BatchInference, ScoredTriple
from repro.embeddings.models import (
    ComplEx,
    DistMult,
    KGEmbeddingModel,
    ModelConfig,
    TransE,
    available_models,
    create_model,
)
from repro.embeddings.negative_sampling import NegativeSampler
from repro.embeddings.partition import (
    Partitioning,
    count_swaps,
    partition_dataset,
    schedule_pairs,
)
from repro.embeddings.pipeline import (
    EmbeddingPipelineConfig,
    EmbeddingPipelineResult,
    run_embedding_pipeline,
)
from repro.embeddings.registry import ModelRecord, ModelRegistry
from repro.embeddings.trainer import (
    TrainConfig,
    TrainedEmbeddings,
    Trainer,
    train_embeddings,
)

__all__ = [
    "BatchInference",
    "ClassificationReport",
    "ComplEx",
    "DiskTrainStats",
    "DiskTrainer",
    "DistMult",
    "EmbeddingPipelineConfig",
    "EmbeddingPipelineResult",
    "KGEmbeddingModel",
    "LinkPredictionReport",
    "ModelConfig",
    "ModelRecord",
    "ModelRegistry",
    "NegativeSampler",
    "Partitioning",
    "ScoredTriple",
    "TrainConfig",
    "TrainedEmbeddings",
    "Trainer",
    "TransE",
    "TripleDataset",
    "available_models",
    "build_dataset",
    "corrupt_uniform",
    "count_swaps",
    "create_model",
    "link_prediction",
    "partition_dataset",
    "run_embedding_pipeline",
    "schedule_pairs",
    "train_embeddings",
    "triple_classification",
]
