"""End-to-end embedding pipeline (Figure 3, training side).

Chains the stages the paper describes: graph engine produces a filtered
*view* of the KG → dataset encoding → (in-memory or disk-based) contrastive
training → intrinsic evaluation → registration in the model registry.

The pipeline is the unit the platform facade and the benchmarks drive; its
:class:`EmbeddingPipelineResult` carries everything downstream services
need (trained model, eval report, view statistics).
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path

import numpy as np

from repro.embeddings.dataset import TripleDataset, build_dataset
from repro.embeddings.disk_trainer import DiskTrainer, DiskTrainStats
from repro.embeddings.evaluation import LinkPredictionReport, link_prediction
from repro.embeddings.registry import ModelRegistry
from repro.embeddings.trainer import TrainConfig, TrainedEmbeddings, train_embeddings
from repro.kg.store import TripleStore
from repro.kg.views import MaterializedView, ViewDefinition, materialize


@dataclass
class EmbeddingPipelineConfig:
    """Configuration of one pipeline run."""

    train: TrainConfig
    view: ViewDefinition | None = None
    use_disk_trainer: bool = False
    num_partitions: int = 4
    buffer_capacity: int = 2
    valid_fraction: float = 0.05
    test_fraction: float = 0.05
    eval_max_queries: int | None = 200
    registry_name: str = "kg-embeddings"


@dataclass
class EmbeddingPipelineResult:
    """Everything a pipeline run produced."""

    trained: TrainedEmbeddings
    evaluation: LinkPredictionReport
    view: MaterializedView | None
    dataset: TripleDataset
    test_triples: np.ndarray
    disk_stats: DiskTrainStats | None = None
    registered_version: int | None = None


def run_embedding_pipeline(
    store: TripleStore,
    config: EmbeddingPipelineConfig,
    registry: ModelRegistry | None = None,
    workdir: str | Path | None = None,
) -> EmbeddingPipelineResult:
    """Run filter → encode → train → evaluate → register.

    ``workdir`` is required when ``use_disk_trainer`` is set; it receives
    the on-disk partition files.
    """
    view: MaterializedView | None = None
    training_store = store
    if config.view is not None:
        view = materialize(config.view, store)
        training_store = view.store

    dataset = build_dataset(training_store)
    train_ds, _valid, test = dataset.split(
        valid_fraction=config.valid_fraction,
        test_fraction=config.test_fraction,
        seed=config.train.seed,
    )

    disk_stats: DiskTrainStats | None = None
    if config.use_disk_trainer:
        if workdir is None:
            raise ValueError("disk trainer requires a workdir")
        trainer = DiskTrainer(
            train_ds,
            workdir=workdir,
            config=config.train,
            num_partitions=config.num_partitions,
            buffer_capacity=config.buffer_capacity,
        )
        trained, disk_stats = trainer.train()
    else:
        trained = train_embeddings(train_ds, config.train)

    known = dataset.known_set()
    evaluation = link_prediction(
        trained, test, known=known, max_queries=config.eval_max_queries
    )

    registered_version: int | None = None
    if registry is not None:
        record = registry.register(
            config.registry_name,
            trained,
            metrics={
                "mrr": evaluation.mrr,
                "hits_at_10": evaluation.hits_at_10,
            },
            tags={
                "model": config.train.model,
                "dim": config.train.dim,
                "view": config.view.name if config.view else None,
                "disk": config.use_disk_trainer,
            },
        )
        registered_version = record.version

    return EmbeddingPipelineResult(
        trained=trained,
        evaluation=evaluation,
        view=view,
        dataset=dataset,
        test_triples=test,
        disk_stats=disk_stats,
        registered_version=registered_version,
    )
