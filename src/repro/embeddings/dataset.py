"""Training datasets: KG facts mapped to contiguous index triples.

The bridge between the symbolic store/view layer and the numeric models: a
:class:`TripleDataset` holds entity/relation vocabularies and an ``(n, 3)``
int array of (head, relation, tail) indices.  Only entity-valued facts are
embeddable; literal facts never reach this layer (the §2 views usually drop
them first, but the dataset builder guards regardless).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.common.errors import EmbeddingError
from repro.common.rng import substream
from repro.kg.store import TripleStore
from repro.kg.triple import ObjectKind


@dataclass
class TripleDataset:
    """Index-encoded entity-to-entity facts of one store/view."""

    entities: list[str]
    relations: list[str]
    triples: np.ndarray  # (n, 3) int64: head, relation, tail
    entity_index: dict[str, int] = field(default_factory=dict)
    relation_index: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.entity_index:
            self.entity_index = {e: i for i, e in enumerate(self.entities)}
        if not self.relation_index:
            self.relation_index = {r: i for i, r in enumerate(self.relations)}

    @property
    def num_entities(self) -> int:
        return len(self.entities)

    @property
    def num_relations(self) -> int:
        return len(self.relations)

    def __len__(self) -> int:
        return len(self.triples)

    def known_set(self) -> set[tuple[int, int, int]]:
        """Set of all (h, r, t) index triples, for filtered sampling/eval."""
        return {tuple(int(x) for x in row) for row in self.triples}

    def encode(self, subject: str, predicate: str, obj: str) -> tuple[int, int, int]:
        """Map a symbolic triple to indices (raises for unknown symbols)."""
        try:
            return (
                self.entity_index[subject],
                self.relation_index[predicate],
                self.entity_index[obj],
            )
        except KeyError as exc:
            raise EmbeddingError(f"symbol not in dataset vocabulary: {exc}") from None

    def decode(self, h: int, r: int, t: int) -> tuple[str, str, str]:
        """Map index triple back to symbols."""
        return (self.entities[h], self.relations[r], self.entities[t])

    def split(
        self, valid_fraction: float = 0.05, test_fraction: float = 0.05, seed: int = 0
    ) -> tuple["TripleDataset", np.ndarray, np.ndarray]:
        """Shuffle-split into (train dataset, valid triples, test triples).

        The returned train dataset keeps the full vocabulary so held-out
        triples stay encodable.
        """
        if valid_fraction + test_fraction >= 1.0:
            raise EmbeddingError("validation + test fractions must sum below 1")
        rng = substream(seed, "dataset-split")
        order = rng.permutation(len(self.triples))
        shuffled = self.triples[order]
        n_valid = int(len(shuffled) * valid_fraction)
        n_test = int(len(shuffled) * test_fraction)
        valid = shuffled[:n_valid]
        test = shuffled[n_valid : n_valid + n_test]
        train = shuffled[n_valid + n_test :]
        train_ds = TripleDataset(
            entities=self.entities,
            relations=self.relations,
            triples=train,
            entity_index=self.entity_index,
            relation_index=self.relation_index,
        )
        return train_ds, valid, test


def build_dataset(store: TripleStore) -> TripleDataset:
    """Encode every entity-valued fact of ``store`` into a dataset.

    Vocabulary order is deterministic (sorted), so the same store yields
    the same index assignment across runs.
    """
    entity_set: set[str] = set()
    relation_set: set[str] = set()
    rows: list[tuple[str, str, str]] = []
    for fact in store.scan():
        if fact.obj_kind is not ObjectKind.ENTITY:
            continue
        entity_set.add(fact.subject)
        entity_set.add(fact.obj)
        relation_set.add(fact.predicate)
        rows.append(fact.key)
    if not rows:
        raise EmbeddingError("store has no entity-valued facts to embed")
    entities = sorted(entity_set)
    relations = sorted(relation_set)
    entity_index = {e: i for i, e in enumerate(entities)}
    relation_index = {r: i for i, r in enumerate(relations)}
    triples = np.array(
        [
            (entity_index[s], relation_index[p], entity_index[o])
            for s, p, o in sorted(rows)
        ],
        dtype=np.int64,
    )
    return TripleDataset(
        entities=entities,
        relations=relations,
        triples=triples,
        entity_index=entity_index,
        relation_index=relation_index,
    )
