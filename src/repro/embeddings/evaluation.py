"""Embedding quality evaluation: link prediction and triple classification.

Link prediction is the standard intrinsic metric for KG embeddings: for
each held-out (h, r, t), rank the true tail among all entities (and the
true head symmetrically) under the *filtered* protocol — other known-true
completions are excluded from the ranking.  Reported as MRR and Hits@k.

Triple classification (true vs. corrupted facts) is the intrinsic analogue
of the paper's fact-verification application and feeds its benchmark.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.embeddings.models import KGEmbeddingModel
from repro.embeddings.trainer import TrainedEmbeddings


@dataclass
class LinkPredictionReport:
    """Aggregated filtered-ranking metrics."""

    mrr: float
    hits_at_1: float
    hits_at_3: float
    hits_at_10: float
    num_queries: int


def link_prediction(
    trained: TrainedEmbeddings,
    test_triples: np.ndarray,
    known: set[tuple[int, int, int]] | None = None,
    max_queries: int | None = None,
) -> LinkPredictionReport:
    """Filtered link-prediction evaluation over ``test_triples``.

    Both tail and head queries are scored.  ``known`` defaults to the
    training set plus the test triples themselves.
    """
    model = trained.model
    if known is None:
        known = trained.dataset.known_set()
        known |= {tuple(int(x) for x in row) for row in test_triples}
    if max_queries is not None and len(test_triples) > max_queries:
        test_triples = test_triples[:max_queries]

    ranks: list[int] = []
    num_entities = model.num_entities
    all_entities = np.arange(num_entities)
    for h, r, t in test_triples:
        h, r, t = int(h), int(r), int(t)
        # Tail query: (h, r, ?)
        scores = model.score(
            np.full(num_entities, h), np.full(num_entities, r), all_entities
        )
        ranks.append(_filtered_rank(scores, t, known, (h, r, None)))
        # Head query: (?, r, t)
        scores = model.score(
            all_entities, np.full(num_entities, r), np.full(num_entities, t)
        )
        ranks.append(_filtered_rank(scores, h, known, (None, r, t)))

    rank_array = np.asarray(ranks, dtype=np.float64)
    return LinkPredictionReport(
        mrr=float(np.mean(1.0 / rank_array)),
        hits_at_1=float(np.mean(rank_array <= 1)),
        hits_at_3=float(np.mean(rank_array <= 3)),
        hits_at_10=float(np.mean(rank_array <= 10)),
        num_queries=len(rank_array),
    )


def _filtered_rank(
    scores: np.ndarray,
    true_index: int,
    known: set[tuple[int, int, int]],
    pattern: tuple[int | None, int | None, int | None],
) -> int:
    """Rank of ``true_index`` with other known-true completions masked out."""
    masked = scores.copy()
    h, r, t = pattern
    for candidate in range(len(scores)):
        if candidate == true_index:
            continue
        triple = (h if h is not None else candidate, r, t if t is not None else candidate)
        if triple in known:
            masked[candidate] = -np.inf
    true_score = masked[true_index]
    # Rank = 1 + number of strictly better candidates (optimistic ties).
    return int(np.sum(masked > true_score)) + 1


@dataclass
class ClassificationReport:
    """Triple-classification quality at the calibrated threshold."""

    auc: float
    accuracy: float
    threshold: float
    num_positive: int
    num_negative: int


def triple_classification(
    model: KGEmbeddingModel,
    positives: np.ndarray,
    negatives: np.ndarray,
) -> ClassificationReport:
    """Score positives/negatives; calibrate the accuracy-optimal threshold.

    AUC is computed exactly from the rank-sum statistic.  The returned
    threshold is what the fact-verification service deploys.
    """
    pos_scores = model.score_triples(positives)
    neg_scores = model.score_triples(negatives)
    auc = _auc(pos_scores, neg_scores)

    # Sweep candidate thresholds at score midpoints for best accuracy.
    all_scores = np.concatenate([pos_scores, neg_scores])
    labels = np.concatenate(
        [np.ones(len(pos_scores), bool), np.zeros(len(neg_scores), bool)]
    )
    order = np.argsort(all_scores)
    sorted_scores = all_scores[order]
    sorted_labels = labels[order]
    best_threshold = float(sorted_scores[0]) - 1.0
    # accuracy if everything classified positive:
    best_correct = int(sorted_labels.sum())
    correct = best_correct
    for i in range(len(sorted_scores)):
        # moving threshold just above sorted_scores[i] flips that sample to negative
        correct += 1 if not sorted_labels[i] else -1
        if correct > best_correct:
            best_correct = correct
            upper = (
                sorted_scores[i + 1] if i + 1 < len(sorted_scores) else sorted_scores[i] + 1.0
            )
            best_threshold = float((sorted_scores[i] + upper) / 2.0)
    accuracy = best_correct / len(all_scores)
    return ClassificationReport(
        auc=auc,
        accuracy=float(accuracy),
        threshold=best_threshold,
        num_positive=len(pos_scores),
        num_negative=len(neg_scores),
    )


def _auc(pos_scores: np.ndarray, neg_scores: np.ndarray) -> float:
    """Exact AUC via the Mann–Whitney U statistic (ties count half)."""
    if len(pos_scores) == 0 or len(neg_scores) == 0:
        return 0.5
    all_scores = np.concatenate([pos_scores, neg_scores])
    ranks = _rankdata(all_scores)
    pos_rank_sum = ranks[: len(pos_scores)].sum()
    n_pos, n_neg = len(pos_scores), len(neg_scores)
    u_statistic = pos_rank_sum - n_pos * (n_pos + 1) / 2.0
    return float(u_statistic / (n_pos * n_neg))


def _rankdata(values: np.ndarray) -> np.ndarray:
    """Average ranks (1-based) with tie handling, like scipy.stats.rankdata."""
    order = np.argsort(values, kind="mergesort")
    ranks = np.empty(len(values), dtype=np.float64)
    ranks[order] = np.arange(1, len(values) + 1)
    # Average ranks within tie groups.
    sorted_values = values[order]
    i = 0
    while i < len(sorted_values):
        j = i
        while j + 1 < len(sorted_values) and sorted_values[j + 1] == sorted_values[i]:
            j += 1
        if j > i:
            ranks[order[i : j + 1]] = (i + j + 2) / 2.0
        i = j + 1
    return ranks


def corrupt_uniform(
    triples: np.ndarray,
    num_entities: int,
    known: set[tuple[int, int, int]],
    seed: int = 0,
) -> np.ndarray:
    """One filtered uniform corruption per triple (for classification eval)."""
    rng = np.random.default_rng(seed)
    negatives = triples.copy()
    for i in range(len(negatives)):
        for _ in range(16):
            slot = 2 if rng.random() < 0.5 else 0
            candidate = negatives[i].copy()
            candidate[slot] = rng.integers(0, num_entities)
            key = (int(candidate[0]), int(candidate[1]), int(candidate[2]))
            if key not in known:
                negatives[i] = candidate
                break
    return negatives
