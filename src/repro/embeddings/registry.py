"""Model registry: versioned storage of trained embedding models.

Figure 3 routes every trained model through a *Model Registry* before
inference.  The registry tracks (name, version) → artifacts + metrics and
serves the latest (or a pinned) version to downstream services, enabling
the annotation service's "dynamic" freshness requirement: republish the
embeddings, and consumers pick up the new version on next resolve.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any

from repro.common.errors import ModelRegistryError
from repro.embeddings.trainer import TrainedEmbeddings


@dataclass
class ModelRecord:
    """One registered model version."""

    name: str
    version: int
    trained: TrainedEmbeddings
    metrics: dict[str, float] = field(default_factory=dict)
    tags: dict[str, Any] = field(default_factory=dict)
    registered_at: float = field(default_factory=time.time)


class ModelRegistry:
    """In-memory registry keyed by model name with integer versions."""

    def __init__(self) -> None:
        self._records: dict[str, list[ModelRecord]] = {}

    def register(
        self,
        name: str,
        trained: TrainedEmbeddings,
        metrics: dict[str, float] | None = None,
        tags: dict[str, Any] | None = None,
    ) -> ModelRecord:
        """Register a new version of ``name``; versions start at 1."""
        versions = self._records.setdefault(name, [])
        record = ModelRecord(
            name=name,
            version=len(versions) + 1,
            trained=trained,
            metrics=metrics or {},
            tags=tags or {},
        )
        versions.append(record)
        return record

    def latest(self, name: str) -> ModelRecord:
        """The newest version of ``name``."""
        versions = self._records.get(name)
        if not versions:
            raise ModelRegistryError(f"no model registered under {name!r}")
        return versions[-1]

    def get(self, name: str, version: int) -> ModelRecord:
        """A specific version of ``name``."""
        versions = self._records.get(name, [])
        for record in versions:
            if record.version == version:
                return record
        raise ModelRegistryError(f"model {name!r} has no version {version}")

    def names(self) -> list[str]:
        """All registered model names."""
        return sorted(self._records)

    def versions(self, name: str) -> list[int]:
        """All versions of ``name`` (empty when unknown)."""
        return [record.version for record in self._records.get(name, [])]
