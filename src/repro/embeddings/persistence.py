"""Persisted embedding bundle layer: train once, mmap everywhere.

The embedding-family backends (fact ranking / verification / similarity /
k-NN) are pure functions of flat arrays: the model's entity/relation
matrices, the dataset vocabulary, the calibrated verification threshold
and the trained IVF quantizer.  This module persists exactly that state
as an ``embeddings/`` snapshot layer (same versioned ``.npy`` + manifest
scheme as ``adjacency/``) and rebuilds a ready-to-serve
:class:`~repro.embeddings.suite.EmbeddingSuite` zero-copy over the
memory-mapped files — cold start maps pages instead of re-running SGD,
and N worker processes share one page-cache copy.

Layer contents:

* ``entity_emb`` / ``relation_emb`` — float64 model matrices (the exact
  trained parameters, so adopted scores are byte-identical);
* ``entity_blob``/``entity_offsets``, ``relation_blob``/``relation_offsets``
  — the vocabularies (:func:`pack_strings`);
* ``train_triples`` — the training split's index triples (``known_set``
  parity for filtered evaluation);
* ``knn_rows`` (float32 unit rows), ``knn_centroids``, CSR-style
  ``knn_postings_indices``/``knn_postings_offsets`` and — under int8
  quantization — ``knn_codes``/``knn_scales``: the
  :meth:`IVFIndex.state_arrays` export;
* manifest ``extra``: the build recipe (adopt-match fields of
  :class:`EmbeddingSuiteConfig`) and the calibration report, threshold
  included, so no replica recalibrates.

Adopt-or-rebuild contract (same as every other layer): a stale
``store_version`` or a recipe mismatch silently retrains; corruption
raises :class:`StoreError`.
"""

from __future__ import annotations

from dataclasses import dataclass
from pathlib import Path
from typing import Any

import numpy as np

from repro.common.errors import StoreError
from repro.common.snapshot_io import (
    load_arrays,
    pack_strings,
    unpack_strings,
    write_arrays,
)
from repro.embeddings.dataset import TripleDataset
from repro.embeddings.evaluation import ClassificationReport
from repro.embeddings.inference import BatchInference
from repro.embeddings.models import ModelConfig, adopt_model
from repro.embeddings.suite import ADOPTED, EmbeddingSuite, EmbeddingSuiteConfig
from repro.embeddings.trainer import TrainedEmbeddings
from repro.kg.store import TripleStore
from repro.services.fact_ranking import FactRanker
from repro.services.fact_verification import FactVerifier
from repro.vector.index import IVFIndex
from repro.vector.service import EmbeddingService

EMBEDDINGS_KIND = "embeddings"


@dataclass
class EmbeddingLayer:
    """A loaded (typically memory-mapped) ``embeddings/`` layer."""

    manifest: dict[str, Any]
    arrays: dict[str, np.ndarray]


def save_embeddings(
    suite: EmbeddingSuite,
    config: EmbeddingSuiteConfig,
    directory: str | Path,
    *,
    store_version: int,
) -> dict[str, Any]:
    """Write ``suite``'s trained state as an embeddings layer; returns the
    manifest.  ``suite`` must have been built with ``config`` (the recipe
    is stamped into the manifest for adopt-time matching)."""
    trained = suite.trained
    dataset = trained.dataset
    index = suite.embedding_service.index
    if not isinstance(index, IVFIndex):
        raise StoreError(
            "embedding layer requires an IVFIndex-backed suite "
            f"(got {type(index).__name__})"
        )
    entity_blob, entity_offsets = pack_strings(dataset.entities)
    relation_blob, relation_offsets = pack_strings(dataset.relations)
    arrays: dict[str, np.ndarray] = {
        "entity_emb": np.asarray(trained.model.entity_emb, dtype=np.float64),
        "relation_emb": np.asarray(trained.model.relation_emb, dtype=np.float64),
        "entity_blob": entity_blob,
        "entity_offsets": entity_offsets,
        "relation_blob": relation_blob,
        "relation_offsets": relation_offsets,
        "train_triples": np.asarray(dataset.triples, dtype=np.int64),
    }
    arrays.update(index.state_arrays())
    calibration = suite.verifier.calibration
    extra = {
        "recipe": config.recipe(),
        "calibration": {
            "auc": float(calibration.auc),
            "accuracy": float(calibration.accuracy),
            "threshold": float(calibration.threshold),
            "num_positive": int(calibration.num_positive),
            "num_negative": int(calibration.num_negative),
        },
    }
    return write_arrays(
        directory,
        arrays,
        kind=EMBEDDINGS_KIND,
        store_version=store_version,
        extra=extra,
    )


def load_embedding_layer(
    directory: str | Path,
    *,
    expected_store_version: int | None = None,
    mmap: bool = True,
    verify: bool = True,
) -> EmbeddingLayer:
    """Load an embeddings layer written by :func:`save_embeddings`.

    Raises :class:`SnapshotStaleError` on a store-version mismatch
    (callers rebuild) and :class:`StoreError` on corruption.
    """
    manifest, arrays = load_arrays(
        directory,
        kind=EMBEDDINGS_KIND,
        expected_store_version=expected_store_version,
        mmap=mmap,
        verify=verify,
    )
    return EmbeddingLayer(manifest=manifest, arrays=arrays)


def adopt_embedding_suite(
    store: TripleStore, layer: EmbeddingLayer, config: EmbeddingSuiteConfig
) -> EmbeddingSuite | None:
    """Reconstruct a ready-to-serve suite from a loaded layer, zero-copy.

    Returns ``None`` when the layer was built under a different recipe
    than ``config`` asks for (the caller retrains — same silent fallback
    as a stale layer).  Nothing here touches the store's fact log and no
    array is copied: the model matrices, the dataset triples and the IVF
    state all alias the layer's (memory-mapped) arrays.
    """
    recipe = layer.manifest.get("extra", {}).get("recipe")
    if recipe != config.recipe():
        return None
    arrays = layer.arrays
    entities = unpack_strings(arrays["entity_blob"], arrays["entity_offsets"])
    relations = unpack_strings(arrays["relation_blob"], arrays["relation_offsets"])
    model = adopt_model(
        config.model,
        arrays["entity_emb"],
        arrays["relation_emb"],
        ModelConfig(dim=config.dim, seed=config.seed),
    )
    dataset = TripleDataset(
        entities=entities,
        relations=relations,
        triples=np.asarray(arrays["train_triples"]),
    )
    trained = TrainedEmbeddings(model=model, dataset=dataset)
    verifier = FactVerifier(trained)
    saved = layer.manifest["extra"]["calibration"]
    verifier.adopt_calibration(
        ClassificationReport(
            auc=float(saved["auc"]),
            accuracy=float(saved["accuracy"]),
            threshold=float(saved["threshold"]),
            num_positive=int(saved["num_positive"]),
            num_negative=int(saved["num_negative"]),
        )
    )
    index = IVFIndex.adopt(
        dataset.entities,
        arrays,
        nlist=config.knn_nlist,
        nprobe=config.knn_nprobe,
        kmeans_iterations=config.knn_kmeans_iterations,
        seed=config.knn_seed,
        quantization=config.knn_quantization,
        rerank_factor=config.knn_rerank_factor,
        by_key=dataset.entity_index,
    )
    return EmbeddingSuite(
        trained=trained,
        ranker=FactRanker(store, BatchInference(trained)),
        verifier=verifier,
        embedding_service=EmbeddingService(trained, index=index),
        source=ADOPTED,
    )
